"""Table 3 — characteristics of the histogram test on the REAL stack.

Paper: 150 requests over 50 MB (1/3 file per analysis), 1.2 MB output
(150 GIFs), 450 queries, 300 edits — i.e. the same 3-queries/2-edits
per-analysis invariant as imaging, with much smaller output.
"""

import pytest

from repro.pl import AnalysisRequest, Phase

N_REQUESTS = 18  # volume-scaled from the paper's 150


def _run_histograms(hedc, user, n_requests):
    events = hedc.events()
    frontend = hedc.frontend
    start_queries = frontend.context.queries
    start_edits = frontend.context.edits
    committed = []
    for index in range(n_requests):
        event = events[index % len(events)]
        # force: the workload characterization must run the full pipeline
        # on every request; the product cache would serve the repeats.
        request = AnalysisRequest(
            user, event["hle_id"], "histogram",
            {"attribute": "energy", "n_bins": 64, "force": True},
        )
        frontend.run(request)
        assert request.phase is Phase.COMMITTED, request.error
        committed.append(request)
    return committed, frontend.context.queries - start_queries, \
        frontend.context.edits - start_edits


def test_table3_histogram_characteristics(benchmark, bench_hedc, bench_user):
    committed, queries, edits = benchmark.pedantic(
        _run_histograms, args=(bench_hedc, bench_user, N_REQUESTS),
        rounds=1, iterations=1,
    )
    n = len(committed)

    assert queries / n == pytest.approx(3.0), "paper: 450 queries / 150 requests"
    assert edits / n == pytest.approx(2.0), "paper: 300 edits / 150 requests"

    histogram_output = 0
    for request in committed:
        stored = bench_hedc.dm.semantic.get_analysis(bench_user, request.ana_id)
        assert stored["n_images"] == 1
        assert stored["n_bins"] == 64
        histogram_output += stored["output_bytes"]

    # Histogram products are compact (paper: 1.2 MB for 150 requests,
    # i.e. ~8 KB per product).
    assert 0 < histogram_output / n < 16_000

    print()
    print("Table 3 (histogram characteristics, volume-scaled)")
    print(f"{'':24}{'paper':>12}{'measured':>12}")
    print(f"{'Requests':24}{150:>12}{n:>12}")
    print(f"{'Queries':24}{450:>12}{queries:>12}")
    print(f"{'Edits':24}{300:>12}{edits:>12}")
    print(f"{'Queries/request':24}{3.0:>12.1f}{queries / n:>12.1f}")
    print(f"{'Edits/request':24}{2.0:>12.1f}{edits / n:>12.1f}")
    print(f"{'Output bytes':24}{'1.2 MB':>12}{histogram_output:>12,}")

    benchmark.extra_info.update({
        "requests": n,
        "queries_per_request": queries / n,
        "edits_per_request": edits / n,
        "output_bytes": histogram_output,
        "paper_values": "3 queries + 2 edits per analysis; output << imaging",
    })
