"""§7.2 in-text workload characteristics, measured on the REAL web tier.

Paper: "On average, a request generates seven DM queries and requires
parsing of 80 tuples.  Two of these queries warrant a full index scan and
two are count queries.  The average response size is 12 KB for the
response HTML page and 35 KB for the embedded dynamic images."  Every
client "must authenticate itself only once" (one DBMS query + one
update).
"""


from repro.web import ThinClient


def test_sec72_page_characteristics(benchmark, bench_hedc, bench_user):
    hedc = bench_hedc
    events = hedc.events()

    client = ThinClient(hedc.web)
    assert client.login("bench", "bench-pw")

    def browse_pages():
        io_stats = hedc.dm.io.stats
        start_queries = io_stats.queries
        page_bytes = []
        image_bytes = []
        queries_per_page = []
        for event in events:
            before = io_stats.queries
            result = client.browse_hle(event["hle_id"])
            page_bytes.append(result.page_bytes)
            image_bytes.append(result.image_bytes)
            queries_per_page.append(io_stats.queries - before)
        return page_bytes, image_bytes, queries_per_page, io_stats.queries - start_queries

    page_bytes, image_bytes, queries_per_page, _total = benchmark(browse_pages)

    n_pages = len(page_bytes)
    avg_page = sum(page_bytes) / n_pages
    avg_queries = sum(queries_per_page) / n_pages

    # The HLE page proper issues 7 DM queries; each embedded image adds
    # its own name resolution, so pages with products run slightly higher
    # — "on average seven" for plain event pages.
    assert avg_queries >= 7.0
    plain_pages = [count for count in queries_per_page if count == 7]
    assert plain_pages, "at least one analysis-free page must hit exactly 7"

    # Authentication: exactly one DBMS query + one update (§7.2).
    db_stats = hedc.dm.io.default_database.stats
    before_selects = db_stats.selects
    before_updates = db_stats.updates
    fresh = ThinClient(hedc.web)
    assert fresh.login("bench", "bench-pw")
    assert db_stats.selects - before_selects == 1
    assert db_stats.updates - before_updates == 1

    print()
    print("Section 7.2 page characteristics")
    print(f"{'':28}{'paper':>12}{'measured':>12}")
    print(f"{'DM queries/page':28}{'~7':>12}{avg_queries:>12.1f}")
    print(f"{'HTML bytes/page':28}{'12 KB':>12}{avg_page:>12,.0f}")
    print(f"{'image bytes/page':28}{'35 KB':>12}{sum(image_bytes) / n_pages:>12,.0f}")
    print(f"{'auth queries':28}{'1 + 1 upd':>12}{'1 + 1 upd':>12}")

    benchmark.extra_info.update({
        "pages": n_pages,
        "avg_queries_per_page": round(avg_queries, 2),
        "avg_html_bytes": round(avg_page),
        "paper_values": "~7 DM queries/page, 12 KB HTML, 35 KB images",
    })
