"""Overhead guard: declaring a table columnar must not tax OLTP work.

The columnar copy is rebuilt lazily on the first *columnar scan* after a
mutation — point lookups and small writes never touch it.  The budget is
<5% on both, but a direct wall-clock A/B of two identical tables is too
noisy on shared runners (the min-of-repeats estimator's own variance on
*identical* workloads exceeds the budget), so — like the resilience
guard — this one measures the added work directly, the stable way:

* read side: the planner's columnar consideration is one extra
  ``_columnar_plan`` call per SELECT, which bails on integer checks for
  any selective probe.  Its per-call cost is timed in a tight loop and
  bounded against the measured point-lookup cost.
* write side: the storage tax is the per-mutation epoch bump (one
  integer increment); everything else is deferred to the next columnar
  scan.  The guard times the bump against the measured insert cost and
  asserts — functionally, not by clock — that writes never trigger a
  rebuild.
"""

from __future__ import annotations

import time

from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Insert,
    Select,
    TableSchema,
)
from repro.metadb.query import _columnar_plan, plan_select

N_ROWS = 2_000
LOOKUP_CALLS = 2_000
REPEATS = 9
MAX_OVERHEAD = 0.05


def _loaded() -> Database:
    db = Database(name="ovh")
    db.create_table(TableSchema(
        "ev",
        [Column("ev_id", ColumnType.INTEGER, nullable=False),
         Column("kind", ColumnType.TEXT),
         Column("rate", ColumnType.REAL)],
        primary_key="ev_id",
        columnar=True,
    ))
    for index in range(N_ROWS):
        db.execute(Insert("ev", {
            "ev_id": index, "kind": "flare", "rate": float(index % 97),
        }))
    return db


def _min_per_call(fn, calls: int) -> float:
    fn()  # warm (bytecode, plan caches, counters)
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _call in range(calls):
            fn()
        best = min(best, time.perf_counter() - started)
    return best / calls


def test_point_lookup_overhead_within_budget():
    db = _loaded()
    select = Select("ev", where=Comparison("ev_id", "=", N_ROWS // 2))
    table = db.table("ev")
    # Columnar is never considered for a selective pk equality...
    assert db.explain_plan(select)["access"] == "pk_probe"
    lookup_s = _min_per_call(lambda: db.execute(select), LOOKUP_CALLS)
    # ...and the consideration itself — the only read-path work the
    # columnar option adds — must be a rounding error next to the probe.
    n_rows = len(table)
    consider_s = _min_per_call(
        lambda: _columnar_plan(table, select, n_rows, 1), LOOKUP_CALLS * 5
    )
    assert _columnar_plan(table, select, n_rows, 1) is None
    assert consider_s < lookup_s * MAX_OVERHEAD, (
        f"columnar plan consideration {consider_s / lookup_s:.2%} of a "
        f"point lookup (budget {MAX_OVERHEAD:.0%})"
    )


def test_plan_choice_unchanged_for_oltp_shapes():
    db = _loaded()
    table = db.table("ev")
    probe = Select("ev", where=Comparison("ev_id", "=", 7))
    assert plan_select(table, probe).access == "pk_probe"
    update_shape = Select("ev", where=Comparison("ev_id", "=", 7), limit=1)
    assert plan_select(table, update_shape).access == "pk_probe"


def test_small_write_overhead_within_budget():
    db = _loaded()
    table = db.table("ev")
    # Warm the columnar copy, then prove writes leave it alone: the
    # rebuild happens on the next scan, never on the write path.
    db.execute(Select("ev", where=Comparison("rate", ">=", 0.0)))
    store = table._columnar_store
    assert store is not None
    rebuilds = store.rebuilds
    next_id = [N_ROWS]

    def one_insert():
        db.execute(Insert("ev", {
            "ev_id": next_id[0], "kind": "quiet", "rate": 1.0,
        }))
        next_id[0] += 1

    insert_s = _min_per_call(one_insert, 500)
    assert store.rebuilds == rebuilds, "a write triggered a columnar rebuild"

    # The entire per-write storage tax is the mutation-epoch bump.
    counter = [0]

    def epoch_bump():
        counter[0] += 1

    bump_s = _min_per_call(epoch_bump, 50_000)
    assert bump_s < insert_s * MAX_OVERHEAD, (
        f"epoch bump {bump_s / insert_s:.2%} of an insert "
        f"(budget {MAX_OVERHEAD:.0%})"
    )
