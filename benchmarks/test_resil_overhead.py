"""Overhead guard: the resilience layer must stay out of the hot path.

The wiring budget is <5% on the hot ``metadb`` execute path with
injection disabled and no policies armed.  A direct wall-clock A/B of the
two loops is too noisy on shared runners (block-to-block variance alone
exceeds the budget), so the guard measures the two quantities that make
up the ratio separately, each the stable way:

* the per-call cost of one hot-path ``execute`` (min-of-repeats over a
  few-hundred-row scan — min converges to the quiet-window time);
* the per-call cost of the full ``resilient()`` stack, which is
  independent of the wrapped callable, measured as the delta between a
  wrapped and a bare trivial callable in tight loops.

The assertion is ``wrapper_cost / scan_cost < 5%``.
"""

from __future__ import annotations

import time

import pytest

from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Insert,
    Select,
    TableSchema,
)
from repro.resil import CircuitBreaker, RetryPolicy, resilient

N_ROWS = 300
SCAN_CALLS = 100
WRAPPER_CALLS = 50_000
REPEATS = 9
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def scan_db():
    database = Database()
    database.create_table(TableSchema(
        "t",
        [Column("a", ColumnType.INTEGER, nullable=False),
         Column("b", ColumnType.REAL, nullable=False)],
        primary_key="a",
    ))
    for index in range(N_ROWS):
        database.execute(Insert("t", {"a": index, "b": float(index)}))
    return database


def _bench_policies():
    return dict(
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
        breaker=CircuitBreaker("bench", window=50, min_calls=10),
    )


def _min_per_call(fn, arg, calls: int) -> float:
    """Min-of-repeats per-call seconds for ``fn(arg)`` in a tight loop."""
    fn(arg)  # warm (bytecode, metric handles)
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _call in range(calls):
            fn(arg)
        best = min(best, time.perf_counter() - started)
    return best / calls


def test_resilient_wrapper_overhead_under_five_percent(scan_db):
    select = Select("t", where=Comparison("b", ">=", 0.0))
    scan_s = _min_per_call(scan_db.execute, select, SCAN_CALLS)

    def trivial(x):
        return x

    guarded = resilient(trivial, name="bench.trivial", **_bench_policies())
    bare_s = _min_per_call(trivial, 1, WRAPPER_CALLS)
    guarded_s = _min_per_call(guarded, 1, WRAPPER_CALLS)
    wrapper_s = guarded_s - bare_s

    overhead = wrapper_s / scan_s
    print(f"\nscan {scan_s * 1e6:.1f}us/call  wrapper {wrapper_s * 1e6:.2f}us/call  "
          f"overhead {overhead * 100:+.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD


def test_resilient_wrapper_returns_hot_path_results(scan_db):
    """The wrapped execute is the same call, not a cached or degraded one."""
    select = Select("t", where=Comparison("b", ">=", 0.0))
    wrapped = resilient(scan_db.execute, name="bench.execute", **_bench_policies())
    raw_rows = scan_db.execute(select)
    wrapped_rows = wrapped(select)
    assert len(wrapped_rows) == N_ROWS
    assert wrapped_rows == raw_rows


def test_log_shipping_hook_overhead_under_five_percent(tmp_path):
    """The replication commit hook (append to the in-memory log, update
    the head-LSN gauge) must cost <5% of the hot write it piggybacks on.
    The baseline write is journaled: log shipping replicates the durable
    WAL, so the write it rides always pays for journaling.  Shipping
    itself is excluded: applying the write on a follower is the work
    replication exists to do, not wiring overhead."""
    from repro.repl import ReplicaGroup

    writer = Database(path=tmp_path / "writer", name="bench-writer")
    writer.create_table(TableSchema(
        "t",
        [Column("a", ColumnType.INTEGER, nullable=False),
         Column("b", ColumnType.REAL, nullable=False)],
        primary_key="a",
    ))
    next_key = iter(range(10_000_000)).__next__

    def hot_write(_arg):
        key = next_key()
        writer.execute(Insert("t", {"a": key, "b": float(key)}))

    write_s = _min_per_call(hot_write, 1, 2_000)

    group = ReplicaGroup(name="bench-hook", auto_ship=False)
    redo = [{"op": "insert", "table": "t", "rowid": 1,
             "row": {"a": 1, "b": 1.0}}]
    group._on_primary_commit(1, redo)  # warm (gauge handle, bytecode)
    hook_calls = 2_000  # below the log's retention cap per block
    best = float("inf")
    for _repeat in range(REPEATS):
        group.log.truncate_to(group.log.head_lsn)  # no eviction in-loop
        started = time.perf_counter()
        for _call in range(hook_calls):
            group._on_primary_commit(1, redo)
        best = min(best, time.perf_counter() - started)
    hook_s = best / hook_calls

    overhead = hook_s / write_s
    print(f"\nwrite {write_s * 1e6:.1f}us/call  hook {hook_s * 1e6:.2f}us/call  "
          f"overhead {overhead * 100:+.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD


def test_fire_is_noop_with_no_points_armed():
    """The module-level fire() helper must cost ~nothing when no chaos
    scenario is active — it guards every metadb statement."""
    from repro.resil.faults import fire

    def bare(_x):
        return None

    def firing(_x):
        fire("metadb.statement")

    bare_s = _min_per_call(bare, 1, 100_000)
    firing_s = _min_per_call(firing, 1, 100_000)
    # Sub-microsecond per call: just bounds it from becoming accidentally
    # expensive (an RNG draw, a lock) rather than asserting exact cost.
    per_call_us = (firing_s - bare_s) * 1e6
    print(f"\nfire() disabled cost: {per_call_us:.3f}us/call")
    assert per_call_us < 1.0
