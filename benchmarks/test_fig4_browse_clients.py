"""Figure 4 — browse throughput versus number of clients (one middle-tier
server).

Paper shape: peak ~16-17 req/s at 16 clients (the DBMS ceiling of ~120
queries/s), then *degradation* — not a plateau — down to ~3 req/s at 96
clients, caused by the application logic, not the database.
"""

import pytest

from repro.evalmodel import figure4_series, print_figure4

CLIENT_COUNTS = (16, 32, 48, 64, 80, 96)


@pytest.fixture(scope="module")
def series():
    return figure4_series(CLIENT_COUNTS)


def test_fig4_regenerate(benchmark, series):
    """Regenerate the Figure 4 series and verify its published shape."""

    def run():
        return figure4_series((16, 96), duration_s=150.0)

    anchors = benchmark(run)
    print()
    print(print_figure4(series))

    by_clients = {result.n_clients: result for result in series}
    # Peak at 16 clients, DB-bound at ~120 queries/s.
    assert 14.0 <= by_clients[16].throughput_rps <= 18.0
    assert by_clients[16].db_queries_per_s == pytest.approx(120.0, rel=0.1)
    # Monotonic degradation down to ~3 req/s at 96 clients.
    throughputs = [by_clients[n].throughput_rps for n in CLIENT_COUNTS]
    assert throughputs == sorted(throughputs, reverse=True)
    assert 2.4 <= by_clients[96].throughput_rps <= 3.6
    # §7.3: the slowdown is the app logic, not the DB.
    assert by_clients[96].db_utilization < 0.5
    assert by_clients[96].middle_tier_utilization > 0.9

    benchmark.extra_info["throughput_16_clients_rps"] = round(
        by_clients[16].throughput_rps, 2
    )
    benchmark.extra_info["throughput_96_clients_rps"] = round(
        by_clients[96].throughput_rps, 2
    )
    benchmark.extra_info["paper_values"] = "16 clients: ~16.5 req/s; 96 clients: ~3 req/s"
    assert anchors[0].throughput_rps > anchors[1].throughput_rps
