"""Capture a live operator dashboard from a small loaded deployment.

CI runs this in the bench job and uploads the output as an artifact, so
every build carries a browsable example of what the PR-10 observability
stack produces against real traffic:

* ``DASHBOARD_capture.json`` — the ``/hedc/dashboard?format=json`` body
  (health rollup with attributed causes, per-SLO burn rates and error
  budgets, any active alerts, collector state, process runtime gauges,
  sparkline timelines), plus the text rendering inline for humans.

The run drives a short closed-loop warm-up, then a 2x-capacity open-loop
overload blip with a pinch of seeded statement chaos — enough traffic
that the burn-rate math, the canary and the health rollup all have
something real to say.

Usage: ``PYTHONPATH=src python benchmarks/capture_dashboard.py``
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.obs import Observability
from repro.resil import FaultInjector, use_injector
from repro.web.loadgen import (
    browse_mix,
    build_serving_stack,
    run_closed_loop,
    run_open_loop,
)


def main() -> int:
    obs = Observability(name="dashboard-capture")
    workdir = Path(tempfile.mkdtemp(prefix="hedc-dashboard-"))
    stack = build_serving_stack(
        workdir, n_hles=24, rtt_s=0.004, obs=obs,
        scheduler="pool", n_workers=4, max_queue_depth=64,
    )
    collector = obs.collector
    try:
        stack.web.enable_canary(interval_s=1.0)
        # The real periodic collector: calibration-seeded SLOs installed,
        # registry sampled into the ring-buffer tiers 10x/s.
        collector.start(interval_s=0.1)

        # Warm-up at natural speed, then a 2x-capacity overload blip with
        # a short seeded burst of statement faults riding along.
        capacity = run_closed_loop(stack, browse_mix(stack),
                                   n_clients=8, duration_s=1.0).throughput_rps
        injector = FaultInjector(seed=17, obs=obs)
        injector.inject("metadb.statement", rate=0.02, times=5)
        with use_injector(injector):
            overload = run_open_loop(stack, browse_mix(stack),
                                     rate_rps=2.0 * capacity, duration_s=1.5)

        response = stack.web.handle(
            stack.request("/hedc/dashboard?format=json"))
        assert response.status == 200, response.text
        body = json.loads(response.text)
        text = stack.web.handle(stack.request("/hedc/dashboard"))
        assert text.status == 200
        body["text_rendering"] = text.text.splitlines()
        body["load"] = {
            "capacity_rps": round(capacity, 1),
            "overload": {cls: vars_to_plain(stats) for cls, stats in
                         overload.summary()["classes"].items()},
        }
    finally:
        collector.stop()
        stack.shutdown()

    root = Path(__file__).resolve().parent.parent
    out_path = root / "DASHBOARD_capture.json"
    out_path.write_text(json.dumps(body, indent=2), encoding="utf-8")

    n_series = body["collector"]["series"]
    n_alerts = len(body["active_alerts"])
    print(f"wrote {out_path} (status {body['status']}, "
          f"{len(body['slos'])} SLOs, {n_alerts} active alerts, "
          f"{n_series} retained series, "
          f"capacity {body['load']['capacity_rps']} rps)")
    return 0


def vars_to_plain(stats: dict) -> dict:
    """Per-class load summary already comes as plain dicts; keep the
    hook in one place in case ClassStats objects ever leak through."""
    return dict(stats)


if __name__ == "__main__":
    sys.exit(main())
