"""Table 1 (left) — the imaging processing test across configurations.

Paper columns: S(1) 6027s/0.8GBd/109s - S(2) 3117/1.5/56 - C(1)
2059/2.3/37 - S+C(2+1) 1380/3.5/24, with ~50% usr CPU for S(1) and a
saturated client for C(1).
"""

import pytest

from repro.evalmodel import IMAGING, IMAGING_CONFIGS, print_table1, simulate_processing, table1_imaging

PAPER = {"S/1": 6027.0, "S/2": 3117.0, "C/1": 2059.0, "S+C/2+1": 1380.0}


@pytest.fixture(scope="module")
def rows():
    return table1_imaging()


def test_table1_imaging_regenerate(benchmark, rows):
    def run_one():
        return simulate_processing(IMAGING, IMAGING_CONFIGS[0])

    benchmark(run_one)
    print()
    print(print_table1(rows))
    print("paper:    S/1 6027s  S/2 3117s  C/1 2059s  S+C 1380s")

    by_key = {f"{row.label}/{row.concurrency}": row for row in rows}
    for key, paper_duration in PAPER.items():
        measured = by_key[key].overall_duration_s
        assert measured == pytest.approx(paper_duration, rel=0.15), (
            f"{key}: measured {measured:.0f}s vs paper {paper_duration:.0f}s"
        )
        benchmark.extra_info[f"duration_{key}"] = round(measured)
    # Orderings and CPU split shape.
    assert (
        by_key["S/1"].overall_duration_s
        > by_key["S/2"].overall_duration_s
        > by_key["C/1"].overall_duration_s
        > by_key["S+C/2+1"].overall_duration_s
    )
    assert by_key["S/1"].usr_cpu_server_pct == pytest.approx(50.0, abs=5.0)
    assert by_key["C/1"].usr_cpu_client_pct > 80.0
    benchmark.extra_info["paper_values"] = "S/1 6027s, S/2 3117s, C/1 2059s, S+C 1380s"
