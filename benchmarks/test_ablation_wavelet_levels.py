"""§6.3 ablation — wavelet approximation level versus bytes and error.

The design choice behind interactive exploration: each additional detail
level costs bytes and buys accuracy.  The sweep quantifies the trade on a
realistic count-rate signal and verifies monotonicity in both directions.
"""

import numpy as np
import pytest

from repro.rhessi import TelemetryGenerator, standard_day_plan
from repro.wavelets import decode, encode, reconstruction_error


@pytest.fixture(scope="module")
def count_signal():
    plan = standard_day_plan(duration=1200.0, seed=12, n_flares=2, n_bursts=1, n_saa=0)
    photons = TelemetryGenerator(plan, seed=12).generate()
    _edges, counts = photons.bin_counts(1.0)
    return counts.astype(float)


def test_wavelet_level_sweep(benchmark, count_signal):
    stream = encode(count_signal, quantizer_step=0.5)

    def decode_mid_level():
        return decode(stream.prefix(3))

    benchmark(decode_mid_level)

    rows = []
    max_levels = len(stream.section_offsets) - 2
    for levels in range(max_levels + 1):
        payload = stream.prefix(levels)
        approx = decode(payload)
        error = reconstruction_error(count_signal, approx)
        rows.append((levels, len(payload), error))

    print()
    print("Section 6.3 ablation - detail levels vs bytes vs error")
    print(f"{'levels':>7} {'bytes':>9} {'NRMS error':>11}")
    for levels, nbytes, error in rows:
        print(f"{levels:>7} {nbytes:>9,} {error:>11.4f}")

    # Bytes grow monotonically with detail levels.
    sizes = [nbytes for _levels, nbytes, _error in rows]
    assert sizes == sorted(sizes)
    # Error shrinks (weakly) as detail is added, and vanishes at full detail.
    errors = [error for _levels, _nbytes, error in rows]
    assert errors[-1] < 0.01
    assert errors[0] > errors[-1]
    # The interactive sweet spot: <25% of the bytes for <15% error.
    sweet = [row for row in rows if row[1] < sizes[-1] * 0.25 and row[2] < 0.15]
    assert sweet, "no useful approximation level found"

    benchmark.extra_info.update({
        "full_bytes": sizes[-1],
        "sweet_spot_bytes": sweet[0][1],
        "sweet_spot_error": round(sweet[0][2], 4),
        "paper_values": "progressive views enable interactive exploration",
    })


def test_quantizer_sweep(benchmark, count_signal):
    """Coarser quantisation: smaller streams, bounded error growth."""

    def encode_default():
        return encode(count_signal, quantizer_step=0.5)

    benchmark(encode_default)

    previous_bytes = None
    for step in (0.1, 0.5, 2.0, 8.0):
        stream = encode(count_signal, quantizer_step=step)
        error = reconstruction_error(count_signal, decode(stream.payload))
        if previous_bytes is not None:
            assert stream.total_bytes <= previous_bytes
        previous_bytes = stream.total_bytes
        # Error stays proportional to the quantiser, not catastrophic.
        assert error < step
