"""§4.2 ablation — LOBs in the DBMS versus files in the file system.

The paper rejected DBMS LOBs: "accessing a LOB is significantly slower
than accessing a file", and external tools can "simply copy files to the
appropriate location" instead of round-tripping through SQL.  We store
the same payloads both ways — as BLOB rows in metadb and as archive files
— and compare retrieval cost plus the external-program path.
"""

import time

import pytest

from repro.filestore import DiskArchive, StorageManager
from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Insert,
    Select,
    TableSchema,
)

PAYLOAD_KB = 256
N_OBJECTS = 24


@pytest.fixture(scope="module")
def both_stores(tmp_path_factory):
    root = tmp_path_factory.mktemp("lob-ablation")
    payload = bytes(range(256)) * (PAYLOAD_KB * 4)

    database = Database()
    database.create_table(TableSchema(
        "lobs",
        [Column("lob_id", ColumnType.INTEGER, nullable=False),
         Column("payload", ColumnType.BLOB, nullable=False)],
        primary_key="lob_id",
    ))
    archive = DiskArchive("blobs", root / "archive")
    for index in range(N_OBJECTS):
        database.execute(Insert("lobs", {"lob_id": index, "payload": payload}))
        archive.store(f"obj_{index:04d}.bin", payload)
    return database, archive, payload


def _read_all_lobs(database):
    total = 0
    for index in range(N_OBJECTS):
        rows = database.execute(
            Select("lobs", where=Comparison("lob_id", "=", index))
        )
        total += len(rows[0]["payload"])
    return total


def _read_all_files(archive):
    total = 0
    for index in range(N_OBJECTS):
        total += len(archive.retrieve(f"obj_{index:04d}.bin"))
    return total


def test_lob_retrieval(benchmark, both_stores):
    database, _archive, payload = both_stores
    total = benchmark(_read_all_lobs, database)
    assert total == N_OBJECTS * len(payload)


def test_file_retrieval_and_comparison(benchmark, both_stores):
    database, archive, payload = both_stores
    total = benchmark(_read_all_files, archive)
    assert total == N_OBJECTS * len(payload)

    # Comparative measurement in one place for the report.
    started = time.perf_counter()
    _read_all_lobs(database)
    lob_seconds = time.perf_counter() - started
    started = time.perf_counter()
    _read_all_files(archive)
    file_seconds = time.perf_counter() - started

    # The file path additionally offers zero-copy access for external
    # programs (the §4.2 argument against DataLinks-style extensions):
    local = archive.local_path("obj_0000.bin")
    assert local.read_bytes() == payload

    print()
    print("Section 4.2 ablation - LOB vs file system")
    print(f"  {N_OBJECTS} objects x {PAYLOAD_KB} KB")
    print(f"  LOB retrieval  : {lob_seconds * 1000:8.1f} ms")
    print(f"  file retrieval : {file_seconds * 1000:8.1f} ms")
    print(f"  ratio          : {lob_seconds / max(file_seconds, 1e-9):8.1f}x")
    print("  external tools : direct path access (no SQL round trip)")

    benchmark.extra_info.update({
        "lob_ms": round(lob_seconds * 1000, 1),
        "file_ms": round(file_seconds * 1000, 1),
        "paper_values": "files chosen: LOBs slower + no HSM + SQL round trips",
    })
