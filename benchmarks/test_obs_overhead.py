"""Overhead guard: default-off diagnostics must stay out of the hot path.

The deep-diagnostics layer (event log, slow log, sampling profiler) is
wired through every tier, but with no thresholds configured, tracing off
and the profiler stopped its entire hot-path footprint on ``metadb``
execute is one ``threshold_for`` dict lookup plus the pre-existing
``enabled`` check.  The wiring budget is <5% of one hot execute.

A direct wall-clock A/B of two full execute loops is too noisy on shared
runners (block-to-block variance alone exceeds the budget), so — exactly
like ``test_resil_overhead.py`` — the guard measures the two quantities
that make up the ratio separately, each the stable way:

* the per-call cost of one hot-path ``execute`` (min-of-repeats over a
  few-hundred-row scan — min converges to the quiet-window time);
* the per-call cost of the disabled diagnostic checks, measured as the
  delta between a checking and a bare trivial callable in tight loops.

The assertion is ``diagnostic_cost / scan_cost < 5%``.
"""

from __future__ import annotations

import time

import pytest

from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Insert,
    Select,
    TableSchema,
)
from repro.obs import Observability

N_ROWS = 300
SCAN_CALLS = 100
CHECK_CALLS = 50_000
REPEATS = 9
MAX_OVERHEAD = 0.05


@pytest.fixture(scope="module")
def scan_db():
    # Default hub: tracing off, no slow thresholds, profiler stopped —
    # the configuration every production-path caller sees by default.
    database = Database(obs=Observability())
    database.create_table(TableSchema(
        "t",
        [Column("a", ColumnType.INTEGER, nullable=False),
         Column("b", ColumnType.REAL, nullable=False)],
        primary_key="a",
    ))
    for index in range(N_ROWS):
        database.execute(Insert("t", {"a": index, "b": float(index)}))
    return database


def _min_per_call(fn, arg, calls: int) -> float:
    """Min-of-repeats per-call seconds for ``fn(arg)`` in a tight loop."""
    fn(arg)  # warm (bytecode, metric handles)
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _call in range(calls):
            fn(arg)
        best = min(best, time.perf_counter() - started)
    return best / calls


def test_default_off_diagnostics_overhead_under_five_percent(scan_db):
    select = Select("t", where=Comparison("b", ">=", 0.0))
    scan_s = _min_per_call(scan_db.execute, select, SCAN_CALLS)

    obs = scan_db.obs
    assert obs.slowlog.threshold_for("metadb.execute") is None
    assert not obs.enabled and not obs.profiler.running

    def bare(_x):
        return None

    def checking(_x):
        # The exact per-call guard Database.execute runs when everything
        # is off: one threshold lookup and the enabled flag.
        if not obs.enabled and obs.slowlog.threshold_for("metadb.execute") is None:
            return None

    bare_s = _min_per_call(bare, 1, CHECK_CALLS)
    checking_s = _min_per_call(checking, 1, CHECK_CALLS)
    check_s = checking_s - bare_s

    overhead = check_s / scan_s
    print(f"\nscan {scan_s * 1e6:.1f}us/call  diag-check {check_s * 1e6:.3f}us/call  "
          f"overhead {overhead * 100:+.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD


def test_disabled_event_log_emit_is_cheap():
    """A disabled event log must cost ~nothing per emit call — resil
    breakers and fault points call it unconditionally."""
    from repro.obs.events import EventLog

    log = EventLog()
    log.enabled = False

    def bare(_x):
        return None

    def emitting(_x):
        log.emit("info", "bench", "noop", "disabled emit")

    bare_s = _min_per_call(bare, 1, 100_000)
    emitting_s = _min_per_call(emitting, 1, 100_000)
    # Sub-microsecond per call: bounds it from becoming accidentally
    # expensive (lock acquisition, field dict builds) when switched off.
    per_call_us = (emitting_s - bare_s) * 1e6
    print(f"\ndisabled emit cost: {per_call_us:.3f}us/call")
    assert per_call_us < 1.0


def test_hot_path_results_identical_with_diagnostics_armed(scan_db):
    """Arming the slow log must not change what execute returns."""
    select = Select("t", where=Comparison("b", ">=", 0.0))
    raw_rows = scan_db.execute(select)
    scan_db.obs.slowlog.configure("metadb.execute", 10.0)  # never trips
    try:
        armed_rows = scan_db.execute(select)
    finally:
        scan_db.obs.slowlog.configure("metadb.execute", None)
    assert len(armed_rows) == N_ROWS
    assert armed_rows == raw_rows
