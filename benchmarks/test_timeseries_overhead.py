"""Overhead guard: the telemetry collector must stay off the hot path.

The PR-10 contract is structural — instrumented code only touches the
registry's atomic counters; ring-buffer history grows exclusively on
collector ticks, from the collector's own thread.  So a running
collector may cost the hot path only incidental interference (GIL
slices while a tick walks the registry), never per-request work.

The guard measures one hot ``metadb`` execute with the collector stopped
and again with it running at a 50 ms cadence — 20x denser than the 1 s
production default, so the budget is tested under exaggerated pressure.
Both sides use min-of-repeats (as in ``test_obs_overhead.py``): min
converges to the quiet-window time, and any repeat window that dodges a
tick shows the true per-call cost.  The budget is <5%.
"""

from __future__ import annotations

import time

import pytest

from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Insert,
    Select,
    TableSchema,
)
from repro.obs import Observability

N_ROWS = 300
SCAN_CALLS = 100
REPEATS = 9
MAX_OVERHEAD = 0.05
COLLECTOR_INTERVAL_S = 0.05


@pytest.fixture(scope="module")
def scan_db():
    database = Database(obs=Observability(name="tsdb-bench"))
    database.create_table(TableSchema(
        "t",
        [Column("a", ColumnType.INTEGER, nullable=False),
         Column("b", ColumnType.REAL, nullable=False)],
        primary_key="a",
    ))
    for index in range(N_ROWS):
        database.execute(Insert("t", {"a": index, "b": float(index)}))
    return database


def _min_per_call(fn, arg, calls: int) -> float:
    fn(arg)  # warm (bytecode, metric handles)
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _call in range(calls):
            fn(arg)
        best = min(best, time.perf_counter() - started)
    return best / calls


def test_collector_on_execute_overhead_under_five_percent(scan_db):
    select = Select("t", where=Comparison("b", ">=", 0.0))
    collector = scan_db.obs.collector
    assert not collector.running

    off_s = _min_per_call(scan_db.execute, select, SCAN_CALLS)
    collector.start(interval_s=COLLECTOR_INTERVAL_S)
    try:
        on_s = _min_per_call(scan_db.execute, select, SCAN_CALLS)
    finally:
        collector.stop()
    assert collector.samples > 0, "collector never ticked during the run"

    overhead = on_s / off_s - 1.0
    print(f"\nscan off {off_s * 1e6:.1f}us/call  on {on_s * 1e6:.1f}us/call  "
          f"overhead {overhead * 100:+.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD


def test_hot_executes_never_write_history(scan_db):
    """The structural half of the budget: history length is a pure
    function of collector ticks, not of hot-path traffic."""
    select = Select("t", where=Comparison("b", ">=", 0.0))
    collector = scan_db.obs.collector
    collector.sample_once(now=0.0)
    series_before = len(collector.store)
    for _call in range(500):
        scan_db.execute(select)
    assert len(collector.store) == series_before
    collector.sample_once(now=1.0)
    assert len(collector.store) >= series_before


def test_one_tick_is_a_tiny_fraction_of_the_interval(scan_db):
    """A tick walks the whole registry; against the 1 s production
    cadence it must be duty-cycle noise even on a populated hub."""
    select = Select("t", where=Comparison("b", ">=", 0.0))
    for _call in range(50):                      # populate metric families
        scan_db.execute(select)
    collector = scan_db.obs.collector
    collector.sample_once(now=0.0)               # warm series allocation

    clock = {"now": 0.0}

    def tick(_arg):
        clock["now"] += 1.0
        collector.sample_once(now=clock["now"])

    tick_s = _min_per_call(tick, None, 50)
    print(f"\ncollector tick {tick_s * 1e3:.3f}ms "
          f"({tick_s / 1.0 * 100:.3f}% of a 1 s interval)")
    assert tick_s < 0.010
