"""Command-line harness: regenerate every table and figure of the paper.

Usage::

    python benchmarks/harness.py            # everything
    python benchmarks/harness.py fig4       # one experiment
    python benchmarks/harness.py fig5 table1-imaging table1-histogram
    python benchmarks/harness.py table2 table3 sec72 sec63 sec43

Each experiment prints the paper's published values next to the measured
ones.  Absolute numbers are not expected to match (the substrate is a
simulator, not the 2003 testbed); the shape is.
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path


def run_fig4() -> None:
    from repro.evalmodel import figure4_series, print_figure4

    print(print_figure4(figure4_series()))
    print("paper: ~16.5 req/s at 16 clients degrading to ~3 req/s at 96\n")


def run_fig5() -> None:
    from repro.evalmodel import figure5_series, print_figure5

    print(print_figure5(figure5_series()))
    print("paper: 3 req/s at 1 node rising to 18 req/s (~120 db q/s) at 5\n")


def run_table1_imaging() -> None:
    from repro.evalmodel import print_table1, table1_imaging

    print(print_table1(table1_imaging()))
    print("paper: S/1 6027s 0.8GB/d 109s | S/2 3117 1.5 56 | "
          "C/1 2059 2.3 37 | S+C 1380 3.5 24\n")


def run_table1_histogram() -> None:
    from repro.evalmodel import print_table1, table1_histogram

    print(print_table1(table1_histogram()))
    print("paper: S/1 960s 4.6GB/d 115s | S/2 655 6.8 74 | C/1 841 5.3 98 | "
          "C/cached 821 5.4 90 | S+C 438 10.0 40\n")


def _build_stack():
    from repro.core import Hedc

    workdir = Path(tempfile.mkdtemp(prefix="hedc-harness-"))
    hedc = Hedc.create(workdir)
    hedc.ingest_observation(duration_s=900.0, seed=31, unit_target_photons=120_000)
    user = hedc.register_user("harness", "pw")
    return hedc, user


def run_table2() -> None:
    from repro.pl import AnalysisRequest, Phase

    hedc, user = _build_stack()
    events = hedc.events()
    n_requests = 12
    start_queries = hedc.frontend.context.queries
    start_edits = hedc.frontend.context.edits
    output_bytes = 0
    started = time.perf_counter()
    for index in range(n_requests):
        event = events[index % len(events)]
        request = AnalysisRequest(user, event["hle_id"], "imaging",
                                  {"n_pixels": 16, "force": True})
        hedc.frontend.run(request)
        assert request.phase is Phase.COMMITTED, request.error
        stored = hedc.dm.semantic.get_analysis(user, request.ana_id)
        output_bytes += stored["output_bytes"]
    elapsed = time.perf_counter() - started
    queries = hedc.frontend.context.queries - start_queries
    edits = hedc.frontend.context.edits - start_edits
    print("Table 2 (imaging characteristics, volume-scaled, REAL stack)")
    print(f"{'':24}{'paper':>12}{'measured':>12}")
    print(f"{'Requests':24}{100:>12}{n_requests:>12}")
    print(f"{'Queries':24}{300:>12}{queries:>12}")
    print(f"{'Edits':24}{200:>12}{edits:>12}")
    print(f"{'Output':24}{'5.5 MB':>12}{output_bytes:>12,}")
    print(f"(wall: {elapsed:.1f}s)\n")


def run_table3() -> None:
    from repro.pl import AnalysisRequest, Phase

    hedc, user = _build_stack()
    events = hedc.events()
    n_requests = 18
    start_queries = hedc.frontend.context.queries
    start_edits = hedc.frontend.context.edits
    output_bytes = 0
    for index in range(n_requests):
        event = events[index % len(events)]
        request = AnalysisRequest(user, event["hle_id"], "histogram",
                                  {"n_bins": 64, "force": True})
        hedc.frontend.run(request)
        assert request.phase is Phase.COMMITTED, request.error
        stored = hedc.dm.semantic.get_analysis(user, request.ana_id)
        output_bytes += stored["output_bytes"]
    queries = hedc.frontend.context.queries - start_queries
    edits = hedc.frontend.context.edits - start_edits
    print("Table 3 (histogram characteristics, volume-scaled, REAL stack)")
    print(f"{'':24}{'paper':>12}{'measured':>12}")
    print(f"{'Requests':24}{150:>12}{n_requests:>12}")
    print(f"{'Queries':24}{450:>12}{queries:>12}")
    print(f"{'Edits':24}{300:>12}{edits:>12}")
    print(f"{'Output':24}{'1.2 MB':>12}{output_bytes:>12,}")
    print()


def run_sec72() -> None:
    from repro.web import ThinClient

    hedc, _user = _build_stack()
    client = ThinClient(hedc.web)
    client.login("harness", "pw")
    events = hedc.events()
    io_stats = hedc.dm.io.stats
    total_queries = 0
    total_html = 0
    for event in events:
        before = io_stats.queries
        result = client.browse_hle(event["hle_id"])
        total_queries += io_stats.queries - before
        total_html += result.page_bytes
    print("Section 7.2 page characteristics (REAL stack)")
    print(f"{'':28}{'paper':>12}{'measured':>12}")
    print(f"{'DM queries/page':28}{'~7':>12}{total_queries / len(events):>12.1f}")
    print(f"{'HTML bytes/page':28}{'12 KB':>12}{total_html / len(events):>12,.0f}")
    print()


def run_sec63() -> None:
    from repro.analysis import approximation_speedup
    from repro.metadb import Select
    from repro.streamcorder import StreamCorder

    hedc, user = _build_stack()
    unit_id = hedc.dm.io.execute(Select("raw_units"))[0]["unit_id"]
    corder = StreamCorder(hedc.dm, user,
                          Path(tempfile.mkdtemp(prefix="hedc-sc-")))
    view = hedc.dm.process.get_view(unit_id)
    result = corder.progressive_lightcurve(unit_id, detail_levels=1)
    photons = corder.fetch_unit(unit_id)
    input_mb = len(photons) * 14 / 1e6
    speedup = approximation_speedup("spectroscopy", input_mb, 10.0)
    print("Section 6.3 approximated analysis")
    print(f"  full view bytes      : {view.total_encoded_bytes:,}")
    print(f"  LoD prefix bytes     : {result['bytes_decoded']:,} "
          f"({result['reduction_factor']:.1f}x reduction)")
    print(f"  modelled speedup     : {speedup:.1f}x   (paper: >= 10x)\n")


def run_sec43() -> None:
    from repro.dm import DataManager

    workdir = Path(tempfile.mkdtemp(prefix="hedc-naming-"))
    dm = DataManager.standalone(workdir)
    for index in range(200):
        dm.io.names.register_file(f"item:{index}", "main", f"raw/f{index:05d}.fits")
    database = dm.io.default_database
    before = database.stats.selects
    dm.io.names.resolve_files("item:50")
    extra = database.stats.selects - before
    database.stats.reset()
    dm.io.names.relocate_archive("main", "/relocated")
    print("Section 4.3 dynamic name mapping")
    print(f"  extra queries per name construction : {extra}   (paper: 2)")
    print(f"  rows touched to relocate 200 files  : "
          f"{database.stats.rows_written}   (static binding: 200)\n")


def run_resil() -> None:
    import time

    from repro.metadb import (
        Column, ColumnType, Comparison, Database, Insert, Select, TableSchema,
    )
    from repro.resil import CircuitBreaker, RetryPolicy, resilient

    database = Database()
    database.create_table(TableSchema(
        "t",
        [Column("a", ColumnType.INTEGER, nullable=False),
         Column("b", ColumnType.REAL, nullable=False)],
        primary_key="a",
    ))
    for index in range(300):
        database.execute(Insert("t", {"a": index, "b": float(index)}))
    select = Select("t", where=Comparison("b", ">=", 0.0))

    def per_call(fn, arg, calls):
        fn(arg)
        best = float("inf")
        for _repeat in range(9):
            started = time.perf_counter()
            for _call in range(calls):
                fn(arg)
            best = min(best, time.perf_counter() - started)
        return best / calls

    def trivial(x):
        return x

    guarded = resilient(
        trivial, name="harness.trivial",
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.0, jitter=0.0),
        breaker=CircuitBreaker("harness", window=50, min_calls=10),
    )
    scan_s = per_call(database.execute, select, 100)
    wrapper_s = per_call(guarded, 1, 50_000) - per_call(trivial, 1, 50_000)
    print("Resilience wrapper overhead (hot metadb execute path)")
    print(f"  300-row scan           : {scan_s * 1e6:8.1f} us/call")
    print(f"  resilient() stack      : {wrapper_s * 1e6:8.2f} us/call")
    print(f"  overhead               : {wrapper_s / scan_s * 100:+.2f}%   "
          f"(budget: <5%)\n")


def run_cache() -> None:
    import time

    from repro.pl import AnalysisRequest, Phase

    hedc, user = _build_stack()
    event = hedc.events()[0]
    manager = hedc.frontend.context.idl

    def one_run(force):
        params = {"n_bins": 64}
        if force:
            params["force"] = True
        request = AnalysisRequest(user, event["hle_id"], "histogram", params)
        started = time.perf_counter()
        hedc.frontend.run(request)
        assert request.phase is Phase.COMMITTED, request.error
        return time.perf_counter() - started

    cold_s = one_run(force=False)        # miss: full pipeline + store
    invocations_before = manager.stats()["invocations"]
    warm_s = min(one_run(force=False) for _repeat in range(5))
    warm_invocations = manager.stats()["invocations"] - invocations_before
    forced_s = min(one_run(force=True) for _repeat in range(3))
    print("Product cache (repeat-identical histogram, REAL stack)")
    print(f"  cold (miss+store)      : {cold_s * 1e3:8.2f} ms")
    print(f"  warm (cache hit)       : {warm_s * 1e3:8.2f} ms   "
          f"({cold_s / warm_s:,.0f}x, IDL invocations: {warm_invocations})")
    print(f"  forced (cache bypass)  : {forced_s * 1e3:8.2f} ms")
    report = hedc.frontend.product_cache.stats.snapshot()
    print(f"  stats                  : hits={report['hits']} "
          f"misses={report['misses']} hit_ratio={report['hit_ratio']:.2f} "
          f"resident={report['size_bytes']:,}B\n")


def _write_bench(name: str, payload: dict) -> Path:
    import json

    path = Path(__file__).resolve().parent.parent / name
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def run_query() -> None:
    import os
    import time

    from repro.metadb import (
        Aggregate, And, Column, ColumnType, Comparison, Database, In, Insert,
        Select, TableSchema,
    )

    database = Database()
    database.create_table(TableSchema(
        "events",
        [Column("event_id", ColumnType.INTEGER, nullable=False),
         Column("start_time", ColumnType.REAL, nullable=False),
         Column("rate", ColumnType.REAL, nullable=False)],
        primary_key="event_id",
        indexes=[("start_time",)],
    ))
    n_rows = 10_000
    for index in range(n_rows):
        database.execute(Insert("events", {
            "event_id": index,
            "start_time": float((index * 7919) % n_rows),
            "rate": float((index * 37) % 1000),
        }))
    table = database.table("events")
    select = Select("events", order_by=[("start_time", "desc")], limit=10)

    def naive(statement):
        # The seed executor: materialise every row, full sort, then slice.
        rows = [dict(row) for row in table.rows()]
        for column, direction in reversed(statement.order_by):
            rows.sort(key=lambda row: row[column],
                      reverse=direction == "desc")
        stop = (statement.offset or 0) + statement.limit
        return rows[statement.offset or 0:stop]

    def best(fn, arg, calls, repeats=7):
        fn(arg)
        timing = float("inf")
        for _repeat in range(repeats):
            started = time.perf_counter()
            for _call in range(calls):
                fn(arg)
            timing = min(timing, time.perf_counter() - started)
        return timing / calls

    assert database.execute(select) == naive(select)
    streamed_s = best(database.execute, select, 200)
    naive_s = best(naive, select, 20)
    probe = Select("events", where=In("event_id", [12, 4321, 9876]))
    probe_s = best(database.execute, probe, 200)
    plan = database.explain_plan(select)

    # -- columnar vs row-at-a-time on full-scan analytics ----------------
    def columnar_experiment(n_rows: int, vec_calls: int, row_calls: int) -> dict:
        db = Database(name=f"colbench{n_rows}")
        kinds = ["flare", "quiet", "storm", "saa", "burst", "cal", "idle"]
        db.create_table(TableSchema(
            "ev",
            [Column("ev_id", ColumnType.INTEGER, nullable=False),
             Column("kind", ColumnType.TEXT, nullable=False),
             Column("rate", ColumnType.REAL, nullable=False),
             Column("counts", ColumnType.INTEGER, nullable=False)],
            primary_key="ev_id",
            columnar=True,
        ))
        for index in range(n_rows):
            db.execute(Insert("ev", {
                "ev_id": index,
                "kind": kinds[(index * 131) % len(kinds)],
                "rate": float((index * 37) % 1000),
                "counts": (index * 7919) % 10_000,
            }))

        def row_path(fn, arg, calls):
            previous = os.environ.get("HEDC_COLUMNAR")
            os.environ["HEDC_COLUMNAR"] = "0"
            try:
                return fn(arg) if calls is None else best(fn, arg, calls, 3)
            finally:
                if previous is None:
                    os.environ.pop("HEDC_COLUMNAR", None)
                else:
                    os.environ["HEDC_COLUMNAR"] = previous

        queries = {
            "full_scan_filter": Select("ev", where=And([
                Comparison("kind", "=", "flare"),
                Comparison("rate", ">=", 500.0),
            ])),
            "full_scan_aggregate": Select(
                "ev", where=Comparison("rate", ">=", 250.0),
                aggregates=[Aggregate("count", "*", "c"),
                            Aggregate("sum", "counts", "s"),
                            Aggregate("avg", "rate", "a")],
            ),
            "group_by": Select(
                "ev", group_by=["kind"],
                aggregates=[Aggregate("count", "*", "c"),
                            Aggregate("max", "rate", "m")],
            ),
            # ev_id follows insertion order, so zone maps prune the
            # leading segments outright.
            "zone_map_prune": Select(
                "ev", where=Comparison("ev_id", ">=", n_rows - 2000),
            ),
        }
        section: dict = {"table_rows": n_rows}
        for label, query in queries.items():
            vec_plan = db.explain_plan(query)
            assert vec_plan["access"] == "columnar_scan", (label, vec_plan)
            assert db.execute(query) == row_path(db.execute, query, None)
            vectorized_s = best(db.execute, query, vec_calls, 3)
            row_s = row_path(db.execute, query, row_calls)
            section[label] = {
                "vectorized_us_per_query": vectorized_s * 1e6,
                "row_us_per_query": row_s * 1e6,
                "speedup": row_s / vectorized_s,
                "segments_total": vec_plan["segments_total"],
                "segments_pruned": vec_plan["segments_pruned"],
            }
        prune = section["zone_map_prune"]
        prune["prune_hit_rate"] = (
            prune["segments_pruned"] / prune["segments_total"]
            if prune["segments_total"] else 0.0
        )
        return section

    columnar = {
        "10000": columnar_experiment(10_000, vec_calls=50, row_calls=10),
        "100000": columnar_experiment(100_000, vec_calls=20, row_calls=3),
    }
    payload = {
        "table_rows": n_rows,
        "order_limit_query": {
            "sql": "SELECT * FROM events ORDER BY start_time DESC LIMIT 10",
            "plan": plan,
            "naive_us_per_query": naive_s * 1e6,
            "streamed_us_per_query": streamed_s * 1e6,
            "speedup": naive_s / streamed_s,
        },
        "in_probe_query": {
            "plan": database.explain_plan(probe),
            "us_per_query": probe_s * 1e6,
        },
        "columnar": columnar,
    }
    path = _write_bench("BENCH_query_engine.json", payload)
    print("Query engine (10k-row indexed table, ORDER BY + LIMIT 10)")
    print(f"  naive (materialise+sort) : {naive_s * 1e6:10.1f} us/query")
    print(f"  streamed (limit pushdown): {streamed_s * 1e6:10.1f} us/query")
    print(f"  speedup                  : {naive_s / streamed_s:10.1f}x   "
          f"(target: >= 3x)")
    print(f"  IN-list probe (3 keys)   : {probe_s * 1e6:10.1f} us/query")
    print("Columnar vs row path (full-scan analytics)")
    for n_rows, section in columnar.items():
        for label in ("full_scan_filter", "full_scan_aggregate",
                      "group_by", "zone_map_prune"):
            entry = section[label]
            extra = ""
            if label == "zone_map_prune":
                extra = (f", prune {entry['segments_pruned']}"
                         f"/{entry['segments_total']} segments")
            print(f"  {int(n_rows):>7,} rows {label:20}: "
                  f"row {entry['row_us_per_query']:10.1f} us -> "
                  f"vec {entry['vectorized_us_per_query']:8.1f} us "
                  f"({entry['speedup']:5.1f}x{extra})")
    print("  target: >= 10x on at least one 100k full-scan query")
    print(f"  wrote {path.name}\n")


def run_backprojection() -> None:
    import time
    import tracemalloc

    from repro.analysis import back_projection, back_projection_dense
    from repro.rhessi import SolarFlare, TelemetryGenerator
    from repro.rhessi.telemetry import ObservationPlan

    plan = ObservationPlan(0.0, 240.0, background_rate=40.0)
    plan.add(SolarFlare(start=40.0, duration=120.0, goes_class="M",
                        position_arcsec=(250.0, -150.0)))
    photons = TelemetryGenerator(plan, seed=31).generate()
    from repro.rhessi import PhotonList

    window = photons.select_time(40.0, 160.0).select_energy(6.0, 100.0)
    if len(window) > 20_000:
        window = PhotonList(window.times[:20_000], window.energies[:20_000],
                            window.detectors[:20_000])
    kwargs = {"n_pixels": 64, "source_position": (250.0, -150.0)}

    def measure(fn, **extra):
        tracemalloc.start()
        started = time.perf_counter()
        result = fn(window, **kwargs, **extra)
        elapsed = time.perf_counter() - started
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return result, elapsed, peak

    dense_result, dense_s, dense_peak = measure(back_projection_dense)
    binned_result, binned_s, binned_peak = measure(back_projection,
                                                   n_phase_bins=256)
    payload = {
        "n_photons": len(window),
        "n_pixels": 64,
        "n_phase_bins": 256,
        "dense": {"wall_s": dense_s, "peak_bytes": dense_peak,
                  "peak_position": dense_result.peak_position(),
                  "dynamic_range": dense_result.dynamic_range()},
        "binned": {"wall_s": binned_s, "peak_bytes": binned_peak,
                   "peak_position": binned_result.peak_position(),
                   "dynamic_range": binned_result.dynamic_range()},
        "speedup": dense_s / binned_s,
        "peak_memory_reduction": dense_peak / binned_peak,
    }
    path = _write_bench("BENCH_backprojection.json", payload)
    print(f"Back-projection ({len(window):,} photons, 64 px, K=256)")
    print(f"  dense  : {dense_s:7.3f} s, peak {dense_peak / 1e6:8.1f} MB")
    print(f"  binned : {binned_s:7.3f} s, peak {binned_peak / 1e6:8.1f} MB")
    print(f"  speedup: {dense_s / binned_s:.1f}x (target >= 5x), "
          f"memory: {dense_peak / binned_peak:.1f}x lower (target >= 10x)")
    print(f"  peak   : dense {dense_result.peak_position()} vs "
          f"binned {binned_result.peak_position()}")
    print(f"  wrote {path.name}\n")


def run_shard() -> None:
    import time

    from repro.evalmodel import project_scaling
    from repro.metadb import Between, Database, Insert, Select
    from repro.schema import install_all
    from repro.shard import ShardedDatabase

    day = 86_400.0
    span_days = 16
    n_rows = 4000
    rows = []
    for index in range(n_rows):
        t = (index * 7919) % int(span_days * day)
        rows.append({
            "hle_id": index + 1, "item_id": f"hle:{index + 1}", "owner_id": 1,
            "start_time": float(t), "end_time": float(t) + 60.0,
            "peak_rate": float((index * 37) % 1000),
            "created_at": 0.0,
        })
    admin = {"user_id": 1, "login": "bench", "password_hash": "x"}
    pruned_q = Select("hle", where=Between("start_time", 3 * day, 3.5 * day),
                      order_by=[("start_time", "asc")])
    scatter_q = Select("hle", order_by=[("peak_rate", "desc")], limit=10)

    def best(db, statement, calls=50, repeats=5):
        db.execute(statement)
        timing = float("inf")
        for _repeat in range(repeats):
            started = time.perf_counter()
            for _call in range(calls):
                db.execute(statement)
            timing = min(timing, time.perf_counter() - started)
        return timing / calls

    def load(db):
        install_all(db)
        db.execute(Insert("admin_users", dict(admin)))
        for row in rows:
            db.execute(Insert("hle", dict(row)))

    single = Database(name="bench-single")
    load(single)
    baseline = {"pruned_range_us": best(single, pruned_q) * 1e6,
                "topn_scan_us": best(single, scatter_q) * 1e6}

    configs = {}
    for n_shards in (1, 4, 16):
        cuts = [span_days * day * index / n_shards
                for index in range(1, n_shards)]
        sharded = ShardedDatabase(boundaries=cuts, name=f"bench{n_shards}")
        load(sharded)
        pruned_route = sharded.explain_plan(pruned_q)["shard_route"]
        scatter_route = sharded.explain_plan(scatter_q)["shard_route"]
        configs[str(n_shards)] = {
            "pruned_range": {
                "us_per_query": best(sharded, pruned_q) * 1e6,
                "shards_touched": len(pruned_route["shards"]),
                "route": pruned_route["kind"],
            },
            "topn_scan": {
                "us_per_query": best(sharded, scatter_q) * 1e6,
                "shards_touched": len(scatter_route["shards"]),
                "route": scatter_route["kind"],
            },
        }

    projected_users = {
        str(n): project_scaling(n).users_supported
        for n in (1, 4, 16, 64, 256)
    }
    payload = {
        "table_rows": n_rows,
        "span_days": span_days,
        "single_node": baseline,
        "sharded": configs,
        "projected_users": projected_users,
    }
    path = _write_bench("BENCH_sharding.json", payload)
    print(f"Sharded catalog ({n_rows:,} events over {span_days} days)")
    print(f"  single node : pruned-range {baseline['pruned_range_us']:8.1f} us,"
          f" top-N scan {baseline['topn_scan_us']:8.1f} us")
    for n_shards, entry in configs.items():
        pruned = entry["pruned_range"]
        scatter = entry["topn_scan"]
        print(f"  {n_shards:>2} shard(s) : "
              f"pruned-range {pruned['us_per_query']:8.1f} us "
              f"({pruned['shards_touched']}/{n_shards} shards, "
              f"{pruned['route']}), "
              f"top-N scan {scatter['us_per_query']:8.1f} us "
              f"({scatter['shards_touched']}/{n_shards})")
    print("  projected   : " + ", ".join(
        f"{shards}sh={users:,}u" for shards, users in projected_users.items()))
    print(f"  wrote {path.name}\n")


def run_repl() -> None:
    import threading
    import time

    from repro.evalmodel import project_scaling, replica_efficiency
    from repro.metadb import (
        Column, ColumnType, Database, Insert, Select, TableSchema,
    )
    from repro.repl import ReplicaGroup
    from repro.resil import FaultInjector, use_injector

    schema = TableSchema(
        "events",
        [Column("event_id", ColumnType.INTEGER, nullable=False),
         Column("rate", ColumnType.REAL, nullable=False)],
        primary_key="event_id",
    )
    n_rows = 1000
    select = Select("events", limit=50)

    def build(n_copies, path=None, cooldown=60.0):
        group = ReplicaGroup(name=f"bench-repl{n_copies}", path=path,
                             n_replicas=n_copies - 1,
                             breaker_cooldown_s=cooldown)
        group.create_table(schema)
        for index in range(n_rows):
            group.execute(Insert("events", {
                "event_id": index, "rate": float(index % 97),
            }))
        return group

    # -- read throughput vs copies (4 concurrent readers, fixed window) --
    throughput = {}
    for n_copies in (1, 2, 4):
        group = build(n_copies)
        counts = [0] * 4
        stop = threading.Event()

        def reader(slot, target=group):
            while not stop.is_set():
                target.execute(select)
                counts[slot] += 1

        threads = [threading.Thread(target=reader, args=(slot,))
                   for slot in range(4)]
        window_s = 0.5
        for thread in threads:
            thread.start()
        time.sleep(window_s)
        stop.set()
        for thread in threads:
            thread.join()
        throughput[str(n_copies)] = {
            "reads_per_s": sum(counts) / window_s,
            "reads_by_copy": dict(group.reads_by_copy),
        }

    # -- failover blip: read latency while one copy dies mid-rotation ----
    group = build(2)
    baseline_samples = []
    for _ in range(50):
        started = time.perf_counter()
        group.execute(select)
        baseline_samples.append(time.perf_counter() - started)
    baseline_s = min(baseline_samples)
    durations = []
    injector = FaultInjector(seed=31)
    injector.inject("repl.replica.bench-repl2-r1.crash", rate=1.0)
    with use_injector(injector):
        for _ in range(40):
            started = time.perf_counter()
            group.execute(select)
            durations.append(time.perf_counter() - started)
    blip_s = max(durations) - baseline_s

    # -- catch-up: log replay vs full re-clone ---------------------------
    workdir = Path(tempfile.mkdtemp(prefix="hedc-repl-"))
    group = build(2, path=workdir)
    group.kill_replica("bench-repl2-r1")
    delta = 200
    for index in range(n_rows, n_rows + delta):
        group.execute(Insert("events", {
            "event_id": index, "rate": 0.0,
        }))
    started = time.perf_counter()
    replay = group.rejoin_replica("bench-repl2-r1")
    replay_s = time.perf_counter() - started
    assert replay["mode"] == "log_replay", replay
    # Force the fallback path: write past the crashed copy, then evict
    # the retained window so log replay cannot reach back far enough.
    group.kill_replica("bench-repl2-r1")
    for index in range(n_rows + delta, n_rows + 2 * delta):
        group.execute(Insert("events", {
            "event_id": index, "rate": 0.0,
        }))
    group.log.truncate_to(group.log.head_lsn)
    started = time.perf_counter()
    clone = group.rejoin_replica("bench-repl2-r1")
    clone_s = time.perf_counter() - started
    assert clone["mode"] == "full_resync", clone

    # -- projection: measured costs discount follower capacity ----------
    efficiency = replica_efficiency(
        failover_blip_s=max(blip_s, 0.0), mtbf_s=3600.0,
        ship_overhead_fraction=0.01,
    )
    projected = {
        str(r): project_scaling(16, replicas_per_shard=r,
                                replica_read_efficiency=efficiency)
        .users_supported
        for r in (1, 2, 4)
    }
    payload = {
        "table_rows": n_rows,
        "read_throughput": throughput,
        "failover": {
            "baseline_read_s": baseline_s,
            "worst_read_during_failover_s": max(durations),
            "blip_s": blip_s,
        },
        "catchup": {
            "delta_transactions": delta,
            "log_replay_s": replay_s,
            "log_replay_records": replay["replayed_records"],
            "full_resync_s": clone_s,
            "full_resync_rows": clone["rows_cloned"],
        },
        "replica_read_efficiency": efficiency,
        "projected_users_16_shards": projected,
    }
    path = _write_bench("BENCH_replication.json", payload)
    print(f"Replica group ({n_rows:,} rows, 4 reader threads)")
    for n_copies, entry in throughput.items():
        print(f"  {n_copies} cop(y/ies): {entry['reads_per_s']:10,.0f} reads/s")
    print(f"  failover blip          : {blip_s * 1e3:8.2f} ms "
          f"(baseline {baseline_s * 1e6:.0f} us/read)")
    print(f"  catch-up ({delta} tx)     : log replay {replay_s * 1e3:8.2f} ms"
          f" vs full re-sync {clone_s * 1e3:8.2f} ms")
    print(f"  replica efficiency     : {efficiency:.3f} -> projected users at"
          f" 16 shards: " + ", ".join(
              f"{r}x={users:,}" for r, users in projected.items()))
    print(f"  wrote {path.name}\n")


def run_serving() -> None:
    from repro.evalmodel import admission_ab, worker_scaling_series
    from repro.web import (
        browse_mix,
        build_serving_stack,
        mixed_class_mix,
        run_closed_loop,
        run_open_loop,
    )

    # (a) worker scaling: closed-loop §7 browse mix, 1 vs 8 pool workers
    # over the same remote (wire-latency) database.
    scaling = {}
    for n_workers in (1, 8):
        stack = build_serving_stack(scheduler="pool", n_workers=n_workers)
        result = run_closed_loop(stack, browse_mix(stack),
                                 n_clients=16, duration_s=1.5)
        stack.shutdown()
        scaling[str(n_workers)] = result.summary()
    speedup = (scaling["8"]["throughput_rps"]
               / max(scaling["1"]["throughput_rps"], 1e-9))

    # (b) admission-control A/B: identical 2x-capacity open-loop overload,
    # strict class priorities on vs off.
    ab = {}
    for label, admission in (("with_admission", True),
                             ("without_admission", False)):
        stack = build_serving_stack(scheduler="pool", n_workers=8,
                                    admission_control=admission,
                                    max_queue_depth=32)
        capacity = run_closed_loop(stack, mixed_class_mix(stack),
                                   n_clients=16, duration_s=1.0).throughput_rps
        overload = run_open_loop(stack, mixed_class_mix(stack),
                                 rate_rps=2.0 * capacity, duration_s=2.0)
        stack.shutdown()
        ab[label] = {"capacity_rps": capacity, **overload.summary()}

    # (c) the batched page fetch: round trips per HLE page and the
    # differential bytes check (batched and unbatched must render the
    # exact same page).
    stack = build_serving_stack(rtt_s=0.0)
    io_stats = stack.dm.io.stats
    request = stack.request(f"/hedc/hle?id={stack.hle_ids[0]}")
    page = {}
    bodies = {}
    for mode, batched in (("batched", True), ("unbatched", False)):
        stack.dm.batched_pages = batched
        queries, trips = io_stats.queries, io_stats.round_trips
        response = stack.web.handle(request)
        assert response.status == 200, response.status
        bodies[mode] = response.body
        page[mode] = {"queries": io_stats.queries - queries,
                      "round_trips": io_stats.round_trips - trips}
    stack.shutdown()
    identical = bodies["batched"] == bodies["unbatched"]

    # The discrete-event model's prediction of the same two shapes.
    model_scaling = worker_scaling_series(worker_counts=(1, 8),
                                          duration_s=100.0)
    model_ab = admission_ab(duration_s=100.0)
    payload = {
        "worker_scaling": {**scaling, "speedup_8_vs_1": speedup},
        "admission_ab": ab,
        "page_fetch": {**page, "bytes_identical": identical},
        "model": {
            "worker_scaling": {
                str(r.n_workers): {"throughput_rps": r.throughput_rps}
                for r in model_scaling
            },
            "admission_ab": {
                key: {"analysis_goodput_rps": r.goodput_rps["analysis"],
                      "analysis_wait_s": r.avg_wait_s["analysis"],
                      "shed": r.shed}
                for key, r in model_ab.items()
            },
        },
    }
    path = _write_bench("BENCH_serving.json", payload)
    with_ac = ab["with_admission"]["classes"]["analysis"]
    without_ac = ab["without_admission"]["classes"]["analysis"]
    print("Concurrent serving tier (REAL WebServer instances)")
    print(f"  browse throughput      : 1 worker "
          f"{scaling['1']['throughput_rps']:7.1f} req/s, 8 workers "
          f"{scaling['8']['throughput_rps']:7.1f} req/s "
          f"({speedup:.1f}x, target >= 3x)")
    print(f"  2x overload, analysis  : goodput "
          f"{with_ac['goodput_rps']:6.1f} vs {without_ac['goodput_rps']:6.1f}"
          f" req/s, p99 {with_ac['p99_s'] * 1e3:6.1f} vs "
          f"{without_ac['p99_s'] * 1e3:6.1f} ms (with vs without admission)")
    print(f"  HLE page fetch         : "
          f"{page['unbatched']['round_trips']} -> "
          f"{page['batched']['round_trips']} round trips "
          f"({page['batched']['queries']} logical queries), "
          f"bytes identical: {identical}")
    print(f"  wrote {path.name}\n")


EXPERIMENTS = {
    "fig4": run_fig4,
    "fig5": run_fig5,
    "table1-imaging": run_table1_imaging,
    "table1-histogram": run_table1_histogram,
    "table2": run_table2,
    "table3": run_table3,
    "sec72": run_sec72,
    "sec63": run_sec63,
    "sec43": run_sec43,
    "resil": run_resil,
    "cache": run_cache,
    "query": run_query,
    "backprojection": run_backprojection,
    "shard": run_shard,
    "repl": run_repl,
    "serving": run_serving,
}


def main(argv: list[str]) -> int:
    chosen = argv or list(EXPERIMENTS)
    unknown = [name for name in chosen if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}")
        print(f"available: {', '.join(EXPERIMENTS)}")
        return 2
    for name in chosen:
        print(f"=== {name} " + "=" * max(0, 60 - len(name)))
        EXPERIMENTS[name]()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
