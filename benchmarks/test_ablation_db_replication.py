"""§7.3 ablation — replicating the database.

"Further scalability can be achieved by replicating the database using
standard techniques."  We measure read throughput against 0, 1 and 3
replicas (reads rotate across copies; eager writes keep them identical)
and verify consistency after a mixed workload.
"""


import pytest

from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Database,
    Insert,
    ReplicatedDatabase,
    Select,
    TableSchema,
    Update,
)

N_ROWS = 2_000
N_READS = 600


def _build(n_replicas: int) -> ReplicatedDatabase:
    primary = Database(name="p")
    primary.create_table(TableSchema(
        "events",
        [Column("event_id", ColumnType.INTEGER, nullable=False),
         Column("rate", ColumnType.REAL)],
        primary_key="event_id",
        indexes=[("rate",)],
    ))
    replicated = ReplicatedDatabase(primary)
    for row in range(N_ROWS):
        replicated.execute(Insert("events", {"event_id": row, "rate": float(row % 97)}))
    for _replica in range(n_replicas):
        replicated.add_replica()
    return replicated


def _read_sweep(replicated: ReplicatedDatabase) -> int:
    total = 0
    for index in range(N_READS):
        rows = replicated.execute(
            Select("events", where=Comparison("event_id", "=", index % N_ROWS))
        )
        total += len(rows)
    return total


@pytest.mark.parametrize("n_replicas", [0, 1, 3])
def test_read_path_with_replicas(benchmark, n_replicas):
    replicated = _build(n_replicas)
    total = benchmark(_read_sweep, replicated)
    assert total == N_READS
    # Reads are spread evenly across the copies.
    counts = list(replicated.reads_by_copy.values())
    assert max(counts) - min(counts) <= 1 + N_ROWS  # initial inserts read nothing
    benchmark.extra_info["copies"] = replicated.n_copies
    benchmark.extra_info["paper_values"] = "§7.3: replicate the DB for further scaling"


def test_consistency_under_mixed_load(benchmark):
    replicated = _build(2)

    def mixed():
        for index in range(100):
            replicated.execute(
                Update("events", {"rate": float(index)},
                       Comparison("event_id", "=", index))
            )
            replicated.execute(
                Select("events", where=Comparison("rate", "=", float(index)))
            )

    benchmark.pedantic(mixed, rounds=1, iterations=1)
    assert replicated.verify_consistency()
    benchmark.extra_info["verified"] = "all copies identical after mixed workload"
