"""Capture a live diagnostics panel and profile from a small deployment.

CI runs this in the bench job and uploads the two outputs as artifacts,
so every build carries a browsable example of what the deep-diagnostics
layer produces against real traffic:

* ``DEBUG_capture.json`` — the ``/hedc/debug?format=json`` panel (usage
  analytics, event log, slow ops, histogram exemplars, breaker/fault
  state);
* ``PROFILE_collapsed.txt`` — collapsed-stack sampler output, one
  ``frame;frame;frame count`` line per distinct stack, ready for any
  flamegraph renderer.

Usage: ``PYTHONPATH=src python benchmarks/capture_debug.py``
"""

from __future__ import annotations

import json
import sys
import tempfile
from pathlib import Path

from repro.core import Hedc
from repro.obs import Observability
from repro.resil import FaultInjector, use_injector
from repro.web.http import HttpRequest


def main() -> int:
    obs = Observability(enabled=True)
    obs.slowlog.configure("metadb.execute", 0.005)
    obs.slowlog.configure("pl.run", 0.0)
    obs.slowlog.configure("web.handle", 0.01)

    workdir = Path(tempfile.mkdtemp(prefix="hedc-debug-"))
    hedc = Hedc.create(workdir, obs=obs)
    hedc.ingest_observation(duration_s=300.0, seed=17, unit_target_photons=150_000)
    hedc.register_user("capture", "capture-pw", group="scientist")

    client = hedc.thin_client()
    assert client.login("capture", "capture-pw")
    events = hedc.events()
    assert events, "ingest must produce at least one HLE"
    hle_id = events[0]["hle_id"]

    # A pinch of seeded chaos so the event log in the capture shows real
    # traffic: one slow statement and one survivable IDL crash/restart.
    injector = FaultInjector(seed=17, obs=obs)
    injector.inject("metadb.statement", rate=1.0, error=None,
                    delay_s=0.02, times=1)
    injector.inject("idl.crash", rate=1.0, times=1)

    obs.profiler.start(hz=200.0)
    try:
        with use_injector(injector):
            for _ in range(5):
                client.browse_hle(hle_id)
            user = hedc.login("capture", "capture-pw")
            hedc.analyze(user, hle_id, "lightcurve", parameters={"n_bins": 16})
            hedc.analyze(user, hle_id, "lightcurve", parameters={"n_bins": 32})
            response = hedc.web.handle(
                HttpRequest.get("/hedc/debug?format=json", {}, "127.0.0.1"))
    finally:
        samples = obs.profiler.stop()
    assert response.status == 200

    root = Path(__file__).resolve().parent.parent
    debug_path = root / "DEBUG_capture.json"
    debug_path.write_text(response.text, encoding="utf-8")

    collapsed = obs.profiler.collapsed()
    profile_path = root / "PROFILE_collapsed.txt"
    profile_path.write_text(collapsed, encoding="utf-8")

    panel = json.loads(response.text)
    print(f"wrote {debug_path} "
          f"({len(panel['events'])} events, {len(panel['slow_ops'])} slow ops, "
          f"{len(panel['exemplars'])} exemplar series)")
    stacks = len(collapsed.splitlines())
    print(f"wrote {profile_path} ({samples} samples, {stacks} stacks)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
