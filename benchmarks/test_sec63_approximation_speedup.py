"""§6.3 / §3.4 — approximated analysis shortens holistic response time
"by at least an order of magnitude".

Measured end-to-end on the real stack: running an input-size-sensitive
analysis on a wavelet level-of-detail view versus the full photon list.
Two effects compose: fewer bytes cross the wire (the view prefix) and the
analysis runs on a fraction of the input.
"""

import time

import numpy as np

from repro.analysis import approximation_speedup, spectrogram
from repro.metadb import Select
from repro.streamcorder import StreamCorder
from repro.wavelets import decode


def test_sec63_approximation_speedup(benchmark, bench_hedc, bench_user, tmp_path):
    hedc = bench_hedc
    unit_id = hedc.dm.io.execute(Select("raw_units"))[0]["unit_id"]
    corder = StreamCorder(hedc.dm, bench_user, tmp_path / "sc")

    # Full-resolution path: download the whole unit, analyze everything.
    def full_path():
        photons = corder.fetch_unit(unit_id)
        return spectrogram(photons, time_bin_s=1.0, n_energy_bins=48)

    started = time.perf_counter()
    full_result = full_path()
    full_seconds = time.perf_counter() - started
    full_bytes = corder.bytes_downloaded

    # Approximated path: a coarse prefix of the pre-computed view.
    def approx_path():
        return corder.progressive_lightcurve(unit_id, detail_levels=1)

    approx_result = benchmark(approx_path)
    approx_bytes = approx_result["bytes_decoded"]

    # Byte reduction from progressive encoding alone.
    view = hedc.dm.process.get_view(unit_id)
    byte_reduction = view.total_encoded_bytes / approx_bytes
    assert byte_reduction > 3.0

    # Compute reduction via the calibrated cost model on a superlinear
    # analysis (the paper's "exponential for complex ones").
    n_photons = len(corder.fetch_unit(unit_id))
    input_mb = n_photons * 14 / 1e6
    model_speedup = approximation_speedup("spectroscopy", input_mb, 10.0)
    assert model_speedup >= 10.0, "paper: at least an order of magnitude"

    # And the raw-bytes comparison end to end.
    transfer_reduction = full_bytes / max(approx_bytes, 1)
    assert transfer_reduction > 10.0

    print()
    print("Section 6.3 approximation speedup")
    print(f"  full analysis wall time      : {full_seconds * 1000:9.1f} ms")
    print(f"  full unit bytes transferred  : {full_bytes:9,}")
    print(f"  LoD prefix bytes transferred : {approx_bytes:9,}")
    print(f"  transfer reduction           : {transfer_reduction:9.1f}x")
    print(f"  modelled holistic speedup    : {model_speedup:9.1f}x (paper: >=10x)")

    benchmark.extra_info.update({
        "transfer_reduction_x": round(transfer_reduction, 1),
        "modelled_speedup_x": round(model_speedup, 1),
        "paper_values": "holistic response time shortened by >= 10x",
    })
