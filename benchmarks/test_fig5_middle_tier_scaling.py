"""Figure 5 — browse throughput versus middle-tier servers at 96 clients.

Paper shape: 3 req/s with one node rising to ~18 req/s with five, at
which point the DBMS is again the bottleneck (~120 queries/s).
"""

import pytest

from repro.evalmodel import figure5_series, print_figure5

NODE_COUNTS = (1, 2, 3, 5)


@pytest.fixture(scope="module")
def series():
    return figure5_series(NODE_COUNTS)


def test_fig5_regenerate(benchmark, series):
    def run():
        return figure5_series((1, 5), duration_s=150.0)

    anchors = benchmark(run)
    print()
    print(print_figure5(series))

    by_nodes = {result.n_middle_tier: result for result in series}
    # 1 node: ~3 req/s (the Figure 4 right edge).
    assert 2.4 <= by_nodes[1].throughput_rps <= 3.6
    # Monotone scaling.
    throughputs = [by_nodes[n].throughput_rps for n in NODE_COUNTS]
    assert throughputs == sorted(throughputs)
    # 5 nodes: back at the DB ceiling (~18 req/s, ~120 queries/s).
    assert 15.5 <= by_nodes[5].throughput_rps <= 19.0
    assert by_nodes[5].db_queries_per_s == pytest.approx(120.0, rel=0.08)
    assert by_nodes[5].db_utilization > 0.9

    benchmark.extra_info["throughput_1_node_rps"] = round(by_nodes[1].throughput_rps, 2)
    benchmark.extra_info["throughput_5_nodes_rps"] = round(by_nodes[5].throughput_rps, 2)
    benchmark.extra_info["paper_values"] = "1 node: 3 req/s; 5 nodes: 18 req/s (~120 db q/s)"
    assert anchors[1].throughput_rps > anchors[0].throughput_rps
