"""§5.3 ablation — connection and session pooling.

"Creating database connections and user sessions are the two most
expensive parts of request processing.  To improve performance, we have
implemented pools for both."  We give connections a realistic open cost
and compare pooled versus open-per-request, and cached versus re-created
sessions.
"""

import pytest

from repro.dm import SessionCache
from repro.metadb import Column, ColumnType, ConnectionPool, Database, Insert, Select, TableSchema
from repro.security import User

OPEN_COST_S = 0.002
N_REQUESTS = 50


@pytest.fixture(scope="module")
def pooled_db():
    database = Database()
    database.create_table(TableSchema(
        "t", [Column("a", ColumnType.INTEGER, nullable=False)], primary_key="a",
    ))
    database.execute(Insert("t", {"a": 1}))
    return database


def test_pooled_connections(benchmark, pooled_db):
    pool = ConnectionPool(pooled_db, size=4, open_cost_s=OPEN_COST_S)

    def run():
        for _request in range(N_REQUESTS):
            connection = pool.acquire()
            connection.execute(Select("t"))
            pool.release(connection)

    benchmark(run)
    # The pool opened at most `size` connections for all the traffic.
    assert pool.acquisitions >= N_REQUESTS
    benchmark.extra_info["open_cost_ms"] = OPEN_COST_S * 1000
    benchmark.extra_info["paper_values"] = "pools amortise connection setup (§5.3)"


def test_unpooled_connections(benchmark, pooled_db):
    from repro.metadb import Connection

    def run():
        for _request in range(N_REQUESTS):
            connection = Connection(pooled_db, open_cost_s=OPEN_COST_S)
            connection.execute(Select("t"))
            connection.close()

    benchmark(run)
    benchmark.extra_info["expected_floor_ms"] = N_REQUESTS * OPEN_COST_S * 1000


def test_session_cache_hit_path(benchmark):
    cache = SessionCache()
    user = User(1, "u", "scientist", frozenset({"browse", "analyze"}))
    session = cache.create(user, "hle", "10.0.0.1")

    def run():
        for _request in range(N_REQUESTS):
            hit = cache.lookup(user, "hle", "10.0.0.1", session.cookie)
            assert hit is session

    benchmark(run)
    assert cache.hits >= N_REQUESTS
    benchmark.extra_info["paper_values"] = "3 cached sessions/user matched by IP+cookie"


def test_session_recreate_path(benchmark):
    cache = SessionCache(max_users=4096)
    users = [
        User(index, f"u{index}", "scientist", frozenset({"browse"}))
        for index in range(N_REQUESTS)
    ]

    def run():
        for user in users:
            cache.create(user, "hle", "10.0.0.1")

    benchmark(run)
    assert cache.creations >= N_REQUESTS
