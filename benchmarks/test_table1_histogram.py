"""Table 1 (right) — the histogram (I/O-intensive) processing test.

Paper columns: S(1) 960s - S(2) 655 - C(1) 841 - C/cached 821 - S+C 438;
the client CPU is NOT saturated (central scheduling dominates short
analyses, §8.4) and caching buys little (data movement is cheap, §8.3).
"""

import pytest

from repro.evalmodel import (
    HISTOGRAM,
    HISTOGRAM_CONFIGS,
    print_table1,
    simulate_processing,
    table1_histogram,
)

PAPER = {
    "S/1": 960.0, "S/2": 655.0, "C/1": 841.0, "C/cached/1": 821.0, "S+C/2+1": 438.0,
}


@pytest.fixture(scope="module")
def rows():
    return table1_histogram()


def test_table1_histogram_regenerate(benchmark, rows):
    def run_one():
        return simulate_processing(HISTOGRAM, HISTOGRAM_CONFIGS[0])

    benchmark(run_one)
    print()
    print(print_table1(rows))
    print("paper:    S/1 960s  S/2 655s  C/1 841s  C/cached 821s  S+C 438s")

    by_key = {f"{row.label}/{row.concurrency}": row for row in rows}
    for key, paper_duration in PAPER.items():
        measured = by_key[key].overall_duration_s
        assert measured == pytest.approx(paper_duration, rel=0.15), (
            f"{key}: measured {measured:.0f}s vs paper {paper_duration:.0f}s"
        )
        benchmark.extra_info[f"duration_{key}"] = round(measured)

    # The paper's qualitative claims.
    assert by_key["S/1"].overall_duration_s > by_key["C/1"].overall_duration_s
    assert by_key["S+C/2+1"].overall_duration_s == min(
        row.overall_duration_s for row in rows
    )
    caching_saving = 1.0 - (
        by_key["C/cached/1"].overall_duration_s / by_key["C/1"].overall_duration_s
    )
    assert 0.0 <= caching_saving < 0.10  # "cost of data movement ... small"
    assert by_key["C/1"].usr_cpu_client_pct < 60.0  # client not saturated
    benchmark.extra_info["caching_saving_pct"] = round(caching_saving * 100, 1)
    benchmark.extra_info["paper_values"] = "S/1 960s, S/2 655s, C 841s, C/cached 821s, S+C 438s"
