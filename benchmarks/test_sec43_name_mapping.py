"""§4.3 — dynamic name mapping: cost and the relocation payoff.

Paper claims: (i) "the cost of this dynamic name construction is two
extra database queries on an indexed field"; (ii) administrators can
relocate files "without having to modify all tuples in the specific part
of the schema (it is enough to modify the location tables)" — i.e. the
relocation's metadata cost is O(1) updates, not O(files).

The ablation compares against static binding, where every domain tuple
embeds an absolute path and relocation must rewrite all of them.
"""

import pytest

from repro.dm import DataManager
from repro.metadb import (
    Column,
    ColumnType,
    Comparison,
    Insert,
    Select,
    TableSchema,
    Update,
)

N_FILES = 400


@pytest.fixture(scope="module")
def mapped_dm(tmp_path_factory):
    dm = DataManager.standalone(tmp_path_factory.mktemp("naming"))
    for index in range(N_FILES):
        dm.io.names.register_file(f"item:{index}", "main", f"raw/file_{index:05d}.fits")
    return dm


def test_name_construction_costs_two_indexed_queries(benchmark, mapped_dm):
    dm = mapped_dm
    database = dm.io.default_database

    def resolve():
        return dm.io.names.resolve_files("item:123")

    names = benchmark(resolve)
    assert len(names) == 1

    before = database.stats.selects
    dm.io.names.resolve_files("item:123")
    extra_queries = database.stats.selects - before
    assert extra_queries == 2, "paper §4.3: two extra database queries"

    # Both queries hit indexes, not full scans.
    assert database.explain(
        Select("loc_files", where=Comparison("item_id", "=", "item:123"))
    ) != "FULL SCAN"
    assert database.explain(
        Select("loc_archives", where=Comparison("archive_id", "=", "main"))
    ) != "FULL SCAN"
    benchmark.extra_info["extra_queries"] = extra_queries
    benchmark.extra_info["paper_values"] = "2 extra indexed queries per name"


def test_relocation_dynamic_vs_static_binding(benchmark, tmp_path):
    """Ablation: dynamic binding relocates N files with one UPDATE;
    static binding must rewrite N tuples."""
    dm = DataManager.standalone(tmp_path / "dyn")
    for index in range(N_FILES):
        dm.io.names.register_file(f"item:{index}", "main", f"raw/f{index:05d}.fits")
    database = dm.io.default_database

    # Static-binding strawman: paths denormalised into the domain table.
    database.create_table(TableSchema(
        "static_refs",
        [Column("ref_id", ColumnType.INTEGER, nullable=False),
         Column("abs_path", ColumnType.TEXT, nullable=False)],
        primary_key="ref_id",
    ))
    for index in range(N_FILES):
        database.execute(Insert("static_refs", {
            "ref_id": index, "abs_path": f"/old/mount/raw/f{index:05d}.fits",
        }))

    def dynamic_relocation():
        dm.io.names.relocate_archive("main", f"/mount-{dynamic_relocation.counter}")
        dynamic_relocation.counter += 1

    dynamic_relocation.counter = 0

    # Measure the dynamic path.
    benchmark(dynamic_relocation)

    # Row-write accounting: dynamic touches 1 row; static touches N.
    database.stats.reset()
    dm.io.names.relocate_archive("main", "/final/mount")
    dynamic_rows = database.stats.rows_written
    database.stats.reset()
    database.execute(Update("static_refs", {"abs_path": "/new/prefix"}))
    static_rows = database.stats.rows_written
    assert dynamic_rows == 1
    assert static_rows == N_FILES
    # And the mapping still resolves correctly afterwards.
    resolved = dm.io.names.resolve_files("item:7")
    assert resolved[0].full.startswith("/final/mount/")

    benchmark.extra_info.update({
        "dynamic_rows_touched": dynamic_rows,
        "static_rows_touched": static_rows,
        "paper_values": "relocation = update location tables only (§4.3)",
    })
