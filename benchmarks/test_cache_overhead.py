"""Overhead guard: the product cache must be ~free on misses and ~instant
on hits.

Two budgets, measured the stable way (min-of-repeats, as in the
resilience guard — min converges to the quiet-window time):

* **miss path < 5% of an uncached analysis** — the machinery a cache
  miss adds in front of the pipeline (fingerprint, lookup, singleflight
  bookkeeping, the store after commit), measured per-component in tight
  loops against the wall-clock of one real uncached histogram run;
* **warm hit < 1% of cold** — a repeat-identical request served from the
  cache (including its visibility probe) against the full pipeline run
  that filled it.
"""

from __future__ import annotations

import time
from types import SimpleNamespace

from repro.analysis import AnalysisProduct
from repro.pl import AnalysisRequest, Phase, ProductCache, fingerprint

REPEATS = 9
MAX_MISS_OVERHEAD = 0.05
MAX_WARM_FRACTION = 0.01


def _min_per_call(fn, calls: int, repeats: int = REPEATS) -> float:
    fn()  # warm (bytecode, metric handles)
    best = float("inf")
    for _repeat in range(repeats):
        started = time.perf_counter()
        for _call in range(calls):
            fn()
        best = min(best, time.perf_counter() - started)
    return best / calls


def _run_once(frontend, user, hle_id, params) -> float:
    request = AnalysisRequest(user, hle_id, "histogram", params)
    started = time.perf_counter()
    frontend.run(request)
    elapsed = time.perf_counter() - started
    assert request.phase is Phase.COMMITTED, request.error
    return elapsed


def test_miss_path_machinery_under_five_percent(bench_hedc, bench_user):
    event = bench_hedc.events()[0]
    params = {"n_bins": 64, "attribute": "energy"}

    # The real thing the machinery fronts: one full uncached analysis.
    analysis_s = min(
        _run_once(bench_hedc.frontend, bench_user, event["hle_id"],
                  {**params, "force": True})
        for _repeat in range(3)
    )

    # The added machinery, component by component, in tight loops.
    dm_stub = SimpleNamespace(process=SimpleNamespace(cache_epoch=0))
    cache = ProductCache(dm_stub)
    product = AnalysisProduct("histogram", dict(params))
    product.add_image(b"x" * 4096)
    key = fingerprint("histogram", event["hle_id"], params)

    fp_s = _min_per_call(
        lambda: fingerprint("histogram", event["hle_id"], params), 2000)
    miss_s = _min_per_call(
        lambda: cache.lookup(bench_user, "absent-key"), 2000)
    flight_s = _min_per_call(
        lambda: cache.flight.do(key, lambda: None), 2000)
    store_s = _min_per_call(
        lambda: cache.store(key, "histogram", product, 1), 2000)

    machinery_s = fp_s + miss_s + flight_s + store_s
    overhead = machinery_s / analysis_s
    print(f"\nanalysis {analysis_s * 1e3:.2f}ms  machinery "
          f"{machinery_s * 1e6:.2f}us (fp {fp_s * 1e6:.2f} + miss "
          f"{miss_s * 1e6:.2f} + flight {flight_s * 1e6:.2f} + store "
          f"{store_s * 1e6:.2f})  overhead {overhead * 100:+.3f}%  "
          f"(budget {MAX_MISS_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_MISS_OVERHEAD


def test_warm_hit_under_one_percent_of_cold(bench_hedc, bench_user):
    event = bench_hedc.events()[0]
    params = {"n_bins": 48, "attribute": "time"}
    frontend = bench_hedc.frontend
    manager = frontend.context.idl

    # Cold: the pipeline runs (forced repeats keep the measurement off
    # the cache without polluting the warm key below).
    cold_s = min(
        _run_once(frontend, bench_user, event["hle_id"],
                  {**params, "force": True})
        for _repeat in range(3)
    )

    # Fill, then measure repeat-identical hits.
    _run_once(frontend, bench_user, event["hle_id"], dict(params))
    invocations = manager.stats()["invocations"]
    warm_s = min(
        _run_once(frontend, bench_user, event["hle_id"], dict(params))
        for _repeat in range(7)
    )
    assert manager.stats()["invocations"] == invocations, \
        "warm runs must never touch IDL"

    fraction = warm_s / cold_s
    print(f"\ncold {cold_s * 1e3:.2f}ms  warm {warm_s * 1e6:.1f}us  "
          f"ratio {fraction * 100:.3f}%  (budget {MAX_WARM_FRACTION * 100:.0f}%)")
    assert fraction < MAX_WARM_FRACTION
