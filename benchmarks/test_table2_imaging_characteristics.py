"""Table 2 — characteristics of the imaging test, measured on the REAL
stack (not the calibrated model).

Paper: 100 requests, 50 MB input / 50 files (2-3 per analysis), 5.5 MB
output (100 GIFs), 300 queries, 200 edits.  We run a volume-scaled run
(N imaging requests through the PL against real units) and check the
*per-request* invariants hold exactly: 3 DM queries and 2 DM edits per
analysis, one image per request, input spanning multiple raw files.
"""

import pytest

from repro.pl import AnalysisRequest, Phase

N_REQUESTS = 12  # volume-scaled from the paper's 100


def _run_imaging(hedc, user, n_requests):
    events = hedc.events()
    frontend = hedc.frontend
    start_queries = frontend.context.queries
    start_edits = frontend.context.edits
    committed = []
    for index in range(n_requests):
        event = events[index % len(events)]
        request = AnalysisRequest(
            user, event["hle_id"], "imaging", {"n_pixels": 16, "force": True}
        )
        frontend.run(request)
        assert request.phase is Phase.COMMITTED, request.error
        committed.append(request)
    return committed, frontend.context.queries - start_queries, \
        frontend.context.edits - start_edits


def test_table2_imaging_characteristics(benchmark, bench_hedc, bench_user):
    committed, queries, edits = benchmark.pedantic(
        _run_imaging, args=(bench_hedc, bench_user, N_REQUESTS),
        rounds=1, iterations=1,
    )
    n = len(committed)

    # Per-request DM interaction counts — the Table 2 ratios, exactly.
    assert queries / n == pytest.approx(3.0), "paper: 300 queries / 100 requests"
    assert edits / n == pytest.approx(2.0), "paper: 200 edits / 100 requests"

    # Output: one image product per analysis (paper: 100 GIFs).
    total_output = 0
    total_photons = 0
    for request in committed:
        stored = bench_hedc.dm.semantic.get_analysis(bench_user, request.ana_id)
        assert stored["n_images"] == 1
        total_output += stored["output_bytes"]
        total_photons += stored["n_photons_used"]
    assert total_output > 0
    assert total_photons > 0

    from repro.metadb import Select

    n_units = len(bench_hedc.dm.io.execute(Select("raw_units")))
    assert n_units > 1  # input spans multiple raw files, as in the paper

    print()
    print("Table 2 (imaging characteristics, volume-scaled)")
    print(f"{'':24}{'paper':>12}{'measured':>12}")
    print(f"{'Requests':24}{100:>12}{n:>12}")
    print(f"{'Input files':24}{50:>12}{n_units:>12}")
    print(f"{'Queries':24}{300:>12}{queries:>12}")
    print(f"{'Edits':24}{200:>12}{edits:>12}")
    print(f"{'Queries/request':24}{3.0:>12.1f}{queries / n:>12.1f}")
    print(f"{'Edits/request':24}{2.0:>12.1f}{edits / n:>12.1f}")
    print(f"{'Output bytes':24}{'5.5 MB':>12}{total_output:>12,}")

    benchmark.extra_info.update({
        "requests": n,
        "queries_per_request": queries / n,
        "edits_per_request": edits / n,
        "output_bytes": total_output,
        "paper_values": "3 queries + 2 edits per analysis; 1 image each",
    })
