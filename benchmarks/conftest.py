"""Shared fixtures for the benchmark harness.

Benches that exercise the real stack (Tables 2-3, §7.2 page characteristics)
share one loaded repository; the figure/table models run on the calibrated
discrete-event simulator.
"""

from __future__ import annotations

import pytest

from repro.core import Hedc


@pytest.fixture(scope="session")
def bench_hedc(tmp_path_factory):
    """A loaded repository with a scientist account for end-to-end runs."""
    root = tmp_path_factory.mktemp("hedc-bench")
    hedc = Hedc.create(root)
    hedc.ingest_observation(duration_s=900.0, seed=31, unit_target_photons=120_000)
    hedc.register_user("bench", "bench-pw", group="scientist")
    return hedc


@pytest.fixture(scope="session")
def bench_user(bench_hedc):
    return bench_hedc.dm.users.find("bench")
