"""Overhead guard: the serving tier must stay out of the sync hot path.

PR-8 routed every request through the scheduler machinery — a
:class:`~repro.web.ScheduledRequest` handle, route classification, the
executor indirection, write-once resolution, and per-resolution
accounting.  In ``scheduler="sync"`` mode (the default, preserving the
old inline semantics) all of that is pure wiring, so its budget is <5%
of one hot ``/hedc/hle`` page.

A direct wall-clock A/B of ``handle()`` before/after is impossible (the
old path is gone), so the guard measures the two quantities that make up
the ratio separately, each the stable way:

* the per-call cost of one hot page through the full ``handle()`` path
  (min-of-repeats — min converges to the quiet-window time);
* the per-call cost of the full serving wrapper, independent of the
  servlet, measured as the delta between ``handle()`` on a trivial
  route and the bare trivial servlet in tight loops.  This *over*-counts
  the scheduler's share (the delta also includes the span and metric
  accounting that predate PR-8), making the guard conservative.

The assertion is ``wrapper_cost / page_cost < 5%``.
"""

from __future__ import annotations

import time

import pytest

from repro.web import HttpResponse, build_serving_stack

PAGE_CALLS = 50
NOOP_CALLS = 5_000
REPEATS = 9
MAX_OVERHEAD = 0.05

_NOOP_BODY = HttpResponse.html("ok")


def _noop(request):
    return _NOOP_BODY


@pytest.fixture(scope="module")
def stack(tmp_path_factory):
    built = build_serving_stack(tmp_path_factory.mktemp("serving-bench"),
                                n_hles=16, rtt_s=0.0)
    built.web.router.add("/noop", _noop)
    yield built
    built.shutdown()


def _min_per_call(fn, arg, calls: int) -> float:
    """Min-of-repeats per-call seconds for ``fn(arg)`` in a tight loop."""
    fn(arg)  # warm (bytecode, metric handles, router sort)
    best = float("inf")
    for _repeat in range(REPEATS):
        started = time.perf_counter()
        for _call in range(calls):
            fn(arg)
        best = min(best, time.perf_counter() - started)
    return best / calls


def test_sync_scheduler_overhead_under_five_percent(stack):
    page_request = stack.request(f"/hedc/hle?id={stack.hle_ids[0]}")
    page_s = _min_per_call(stack.web.handle, page_request, PAGE_CALLS)

    noop_request = stack.request("/noop")
    bare_s = _min_per_call(_noop, noop_request, NOOP_CALLS)
    handled_s = _min_per_call(stack.web.handle, noop_request, NOOP_CALLS)
    wrapper_s = handled_s - bare_s

    overhead = wrapper_s / page_s
    print(f"\npage {page_s * 1e6:.1f}us/call  wrapper {wrapper_s * 1e6:.2f}us/call  "
          f"overhead {overhead * 100:+.2f}%  (budget {MAX_OVERHEAD * 100:.0f}%)")
    assert overhead < MAX_OVERHEAD


def test_sync_handle_returns_the_servlet_response(stack):
    """The wrapped path serves the same page, not a degraded one."""
    request = stack.request(f"/hedc/hle?id={stack.hle_ids[0]}")
    direct = stack.web.router.dispatch(request)
    handled = stack.web.handle(request)
    assert handled.status == 200
    assert handled.body == direct.body
