"""Hunting gamma-ray bursts in a solar instrument's data.

The paper's §3.2 argument for an open system: RHESSI is a *solar*
telescope, but its detectors also see non-solar gamma-ray bursts.  A
"solar flare only" repository would make this research impossible.  HEDC
has no fixed event types — only events — so a GRB hunter can run her own
SQL over the catalog, re-classify events, and correlate with remote
synoptic archives.

Run:  python examples/gamma_ray_burst_hunt.py
"""

import tempfile
from pathlib import Path

from repro import Hedc
from repro.rhessi import standard_day_plan


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hedc-grb-"))
    hedc = Hedc.create(workdir)

    # A window with flares AND two gamma-ray bursts mixed in.
    plan = standard_day_plan(duration=1500.0, seed=99, n_flares=3, n_bursts=2, n_saa=0)
    hedc.ingest_observation(plan=plan, seed=99)
    hunter = hedc.register_user("ersilia", "burst-pw")

    # 1. The hunter's own question, in her own SQL (paper §1: users can
    #    use "their own SQL queries") - hard, short events.
    client = hedc.thin_client()
    client.login("ersilia", "burst-pw")
    sql = (
        "select hle_id, kind, title, peak_rate, mean_energy_kev from hle "
        "where mean_energy_kev > 60 and peak_rate > 100 "
        "order by mean_energy_kev desc"
    )
    page = client.get("/hedc/search?sql=" + sql.replace(" ", "+"))
    print(f"SQL search over the catalog returned HTTP {page.status}")

    # The same query through the DM API (collection objects, §5.4).
    from repro.metadb import And, Comparison

    candidates = hedc.dm.semantic.find_hles(
        hunter,
        where=And([
            Comparison("mean_energy_kev", ">", 60.0),
            Comparison("peak_rate", ">", 100.0),
        ]),
        order_by=[("mean_energy_kev", "desc")],
    )
    print(f"burst candidates: {len(candidates)}")
    for candidate in candidates:
        print(f"  HLE {candidate['hle_id']}: {candidate['kind']:<16} "
              f"<E>={candidate['mean_energy_kev']:7.1f} keV "
              f"peak={candidate['peak_rate']:8.1f} c/s")

    if not candidates:
        print("no candidates in this window")
        return
    burst = candidates[0]

    # 2. Spectroscopy to confirm the hard, non-thermal spectrum.
    request = hedc.analyze(hunter, burst["hle_id"], "spectroscopy",
                           {"n_energy_bins": 32}, publish=True)
    stored = hedc.dm.semantic.get_analysis(hunter, request.ana_id)
    print(f"\nspectrogram committed: analysis {stored['ana_id']}, "
          f"{stored['total_counts']:,} counts")

    # 3. Correlate with remote synoptic archives: a *solar* counterpart
    #    in H-alpha or EUV at burst time would argue against a GRB.
    hedc.enable_synoptic(mission_end_s=1500.0)
    outcome = hedc.synoptic_context(burst["hle_id"], margin_s=300.0)
    print(f"\nsynoptic context ({len(outcome.archives_answered)} archives answered, "
          f"{len(outcome.archives_failed)} failed/best-effort):")
    for instrument, records in sorted(outcome.records_by_instrument.items()):
        print(f"  {instrument:<14} {len(records)} observations near the burst")

    # 4. Re-catalog the event under the hunter's own classification: the
    #    type-free event model at work (§3.3).
    grb_catalog = hedc.dm.semantic.create_catalog(
        hunter, "grb-candidates", description="non-solar hard events",
        public=True,
    )
    for candidate in candidates:
        hedc.dm.semantic.add_to_catalog(hunter, grb_catalog, candidate["hle_id"])
    print(f"\npublished catalog 'grb-candidates' with {len(candidates)} members")


if __name__ == "__main__":
    main()
