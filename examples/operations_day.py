"""A day in the life of a HEDC operator.

Exercises the administrative machinery of §4.1 and the scaling knobs of
§7.3: predefined queries, operator reports, purge rules, orphan
scrubbing, archive reorganisation and database replication — the side of
the paper's "designing for a moving target" that users never see.

Run:  python examples/operations_day.py
"""

import tempfile
import time
from pathlib import Path

from repro import Hedc
from repro.dm import PurgeRule
from repro.filestore import DiskArchive
from repro.metadb import Comparison, Select, Update


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hedc-ops-"))
    hedc = Hedc.create(workdir)
    hedc.ingest_observation(duration_s=600.0, seed=8)
    alice = hedc.register_user("alice", "pw")

    # Users generate some derived data overnight.
    for event in hedc.events()[:3]:
        hedc.analyze(alice, event["hle_id"], "histogram")
    hedc.analyze(alice, hedc.events()[0]["hle_id"], "lightcurve", publish=True)

    # 1. Morning reports (§4.1 operational section).
    print("repository totals:", hedc.dm.reports.repository_totals())
    print("usage summary:")
    for row in hedc.dm.reports.usage_summary():
        print(f"  {row['operation']:<22} n={row['n']:<4} avg={row['avg_ms']:.1f} ms")

    hedc.dm.process.sync_archive_status()
    print("archive status:")
    for status in hedc.dm.reports.archive_status():
        print(f"  {status['archive_id']:<8} online={status['online']} "
              f"bytes={status['bytes_stored']:,}")

    # 2. A predefined query for the help desk (§4.1 administrative).
    hedc.dm.queries.register(
        "strong-events",
        "SELECT hle_id, title, kind, peak_rate FROM hle "
        "WHERE peak_rate > 100 ORDER BY peak_rate DESC LIMIT 10",
        description="the events users ask about",
    )
    print("\npredefined query 'strong-events':")
    for row in hedc.dm.queries.run("strong-events"):
        print(f"  #{row['hle_id']} {row['kind']:<16} {row['peak_rate']:8.1f} c/s")

    # 3. Quota pressure: purge stale private analyses (§4.1 rules).
    hedc.dm.io.execute(Update(           # pretend a week has passed
        "ana", {"created_at": time.time() - 8 * 86_400},
        Comparison("public", "=", False),
    ))
    hedc.dm.maintenance.add_purge_rule(PurgeRule("week-old", max_age_s=7 * 86_400))
    for report in hedc.dm.maintenance.apply_purge_rules():
        print(f"\npurge rule {report.rule!r}: {report.analyses_deleted} analyses, "
              f"{report.bytes_reclaimed:,} bytes reclaimed")
    print("published analyses survive:",
          len(hedc.dm.io.execute(Select("ana", where=Comparison("public", "=", True)))))

    # 4. New disk arrives: reorganise storage at run time (§4.3).
    shelf = DiskArchive("shelf", workdir / "shelf")
    hedc.dm.io.storage.register(shelf)
    hedc.dm.io.names.register_archive("shelf", str(shelf.root))
    moved = hedc.dm.process.relocate_archive("main", "shelf")
    print(f"\nrelocated {moved} files main -> shelf; "
          f"orphans scrubbed: {hedc.dm.maintenance.scrub_orphan_files('shelf')}")
    # Users never noticed:
    request = hedc.analyze(alice, hedc.events()[0]["hle_id"], "histogram")
    print(f"post-move analysis: {request.phase.value}")

    # 5. Read load keeps growing: replicate the database (§7.3).
    from repro.metadb import ReplicatedDatabase

    primary = hedc.dm.io.default_database
    replicated = ReplicatedDatabase(primary)
    replicated.add_replica()
    replicated.add_replica()
    for _query in range(90):
        replicated.execute(Select("hle", limit=5))
    print(f"\nreplicated reads by copy: {replicated.reads_by_copy}")
    print(f"replica consistency verified: {replicated.verify_consistency()}")


if __name__ == "__main__":
    main()
