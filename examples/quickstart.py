"""Quickstart: stand up a repository, ingest telemetry, browse, analyze.

Run:  python examples/quickstart.py
"""

import tempfile
from pathlib import Path

from repro import Hedc


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hedc-quickstart-"))
    print(f"workspace: {workdir}\n")

    # 1. Stand up a complete HEDC deployment (all three tiers).
    hedc = Hedc.create(workdir)

    # 2. Ingest a synthetic observation window: the loader packages the
    #    photon stream into gzipped FITS units, detects events, creates
    #    HLE tuples, fills the standard catalog and pre-computes
    #    wavelet-compressed views.
    report = hedc.ingest_observation(duration_s=600.0, seed=7)
    print(f"ingested {report.n_photons:,} photons in {report.n_units} raw units")
    print(f"detected {report.n_events} events; view bytes: {report.view_bytes:,}\n")

    # 3. Browse the event catalog.
    print("standard catalog:")
    for event in hedc.catalog_events("standard"):
        print(
            f"  #{event['hle_id']:<3} {event['kind']:<16} "
            f"t={event['start_time']:7.1f}-{event['end_time']:7.1f}s "
            f"peak={event['peak_rate']:8.1f} c/s  "
            f"<E>={event['mean_energy_kev']:6.1f} keV"
        )

    # 4. Register a scientist and run analyses through the PL's four
    #    phases (estimate -> execute -> deliver -> commit).
    alice = hedc.register_user("alice", "correct-horse")
    event = hedc.events()[0]
    for algorithm in ("lightcurve", "histogram", "imaging"):
        parameters = {"n_pixels": 24} if algorithm == "imaging" else {}
        request = hedc.analyze(alice, event["hle_id"], algorithm,
                               parameters, estimate=True, publish=True)
        plan = request.plan
        print(
            f"\n{algorithm}: predicted {plan.predicted_seconds:6.1f}s for "
            f"{plan.input_mb:.2f} MB -> {request.phase.value} "
            f"(ana {request.ana_id}, {request.sojourn_s:.2f}s wall)"
        )

    # 5. Browse the results through the web interface, like a colleague.
    client = hedc.thin_client()
    client.login("alice", "correct-horse")
    browse = client.browse_hle(event["hle_id"])
    print(
        f"\nweb browse of HLE {event['hle_id']}: "
        f"{browse.page_bytes:,} B page + {browse.n_images} images "
        f"({browse.image_bytes:,} B) in {browse.n_requests} requests"
    )

    print("\nper-tier statistics:")
    for tier, stats in hedc.stats().items():
        print(f"  {tier}: {stats}")


if __name__ == "__main__":
    main()
