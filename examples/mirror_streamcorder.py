"""Working offline with the StreamCorder fat client.

Demonstrates §6.2-§6.3: a scientist mirrors part of the server into a
local clone (same schema, local DM + DBMS), pulls raw data through the
cache, and explores interactively using *progressive* wavelet views —
decoding only a byte prefix until the approximation suffices.

Run:  python examples/mirror_streamcorder.py
"""

import tempfile
from pathlib import Path

from repro import Hedc
from repro.metadb import Select
from repro.streamcorder import StreamCorder
from repro.wavelets import reconstruction_error


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hedc-mirror-"))
    hedc = Hedc.create(workdir / "server")
    hedc.ingest_observation(duration_s=900.0, seed=3)
    user = hedc.register_user("tycho", "pw")

    # A StreamCorder with the clone cache: a full local DM + database
    # with the identical schema ("every installation ... is, in fact, a
    # clone of the HEDC server", §6.2).
    corder = StreamCorder(hedc.dm, user, workdir / "laptop", cache_strategy="clone")
    mirrored = corder.mirror_hles()
    print(f"mirrored {mirrored} HLE tuples into the local clone")
    local_tables = corder.local_dm.io.default_database.table_names()
    server_tables = hedc.dm.io.default_database.table_names()
    print(f"clone schema == server schema: {local_tables == server_tables}")

    unit = hedc.dm.io.execute(Select("raw_units"))[0]["unit_id"]

    # Progressive exploration: request coarser-to-finer prefixes of the
    # wavelet view and watch bytes vs accuracy (the §6.3 trade).
    view = hedc.dm.process.get_view(unit)
    _points, exact, full_bytes = view.query(view.domain_start, view.domain_end)
    print(f"\nprogressive lightcurve of unit {unit} "
          f"(full view: {view.total_encoded_bytes:,} encoded bytes):")
    print(f"{'levels':>7} {'bytes':>9} {'reduction':>10} {'NRMS error':>11}")
    for levels in (0, 1, 2, 3, 6):
        result = corder.progressive_lightcurve(unit, detail_levels=levels)
        approx = result["values"][: len(exact)]
        error = reconstruction_error(exact[: len(approx)], approx)
        reduction = result["reduction_factor"]
        print(f"{levels:>7} {result['bytes_decoded']:>9,} {reduction:>9.1f}x {error:>11.4f}")

    # Full raw-data pull, then local (offline) analysis via cordlets.
    photons = corder.fetch_unit(unit)
    lightcurve = corder.run_job("lightcurve", {"photons": photons, "bin_width_s": 4.0})
    histogram = corder.run_job("histogram", {"photons": photons, "attribute": "energy"})
    print(f"\nlocal analysis on {len(photons):,} cached photons:")
    print(f"  lightcurve peak: {lightcurve['peak'][1]:.1f} counts/s "
          f"at t={lightcurve['peak'][0]:.1f}s")
    print(f"  energy histogram total: {histogram['counts'].sum():,}")

    # Second fetch is served locally - no server traffic.
    downloads_before = corder.downloads
    corder.fetch_unit(unit)
    print(f"\nsecond fetch hit the cache (downloads unchanged: "
          f"{corder.downloads == downloads_before})")

    # Peer-to-peer (§10): a second laptop fetches from the first.
    peer = StreamCorder(hedc.dm, user, workdir / "laptop2", cache_strategy="static")
    peer.add_peer(corder)
    server_reads_before = hedc.dm.io.stats.files_read
    peer.fetch_unit(unit)
    print(f"peer-to-peer fetch bypassed the server "
          f"(server file reads unchanged: "
          f"{hedc.dm.io.stats.files_read == server_reads_before})")


if __name__ == "__main__":
    main()
