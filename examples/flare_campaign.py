"""A solar-flare observing campaign.

The workload the paper's introduction motivates: a solar physicist scans
a day of data for flares, images the brightest one at increasing
resolution (the "dozens of analyses before a sensible decision" loop of
§3.4), curates a private flare catalog, and publishes the results for
the community.

Run:  python examples/flare_campaign.py
"""

import tempfile
from pathlib import Path

from repro import Hedc
from repro.metadb import Comparison
from repro.rhessi import SolarFlare, standard_day_plan


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="hedc-flares-"))
    hedc = Hedc.create(workdir)

    # A busy observing window: four flares of different GOES classes.
    plan = standard_day_plan(duration=1200.0, seed=42, n_flares=4, n_bursts=0, n_saa=1)
    true_flares = [p for p in plan.phenomena if isinstance(p, SolarFlare)]
    print("true flares injected:")
    for flare in true_flares:
        print(f"  class {flare.goes_class} at t={flare.start:7.1f}s, "
              f"position {flare.position_arcsec}")

    report = hedc.ingest_observation(plan=plan, seed=42)
    print(f"\nloader found {report.n_events} events "
          f"({report.n_photons:,} photons, {report.n_units} units)")

    scientist = hedc.register_user("pascale", "flare-hunter")

    # Find the flares the loader catalogued, brightest first.
    flares = hedc.dm.semantic.find_hles(
        scientist,
        where=Comparison("kind", "=", "flare"),
        order_by=[("peak_rate", "desc")],
    )
    print(f"catalogued flares: {len(flares)}")

    # The interactive loop of §3.4: image the brightest flare at
    # increasing resolution until the source is well localised.
    target = flares[0]
    print(f"\nimaging flare HLE {target['hle_id']} "
          f"(peak {target['peak_rate']:.0f} c/s):")
    best = None
    for n_pixels in (16, 24, 32):
        request = hedc.analyze(
            scientist, target["hle_id"], "imaging",
            {"n_pixels": n_pixels, "force": True}, estimate=True,
        )
        stored = hedc.dm.semantic.get_analysis(scientist, request.ana_id)
        print(f"  {n_pixels:>2}px: predicted {request.plan.predicted_seconds:6.1f}s, "
              f"wall {request.sojourn_s:5.2f}s, peak value {stored['peak_value']:.4f}")
        best = request
    # Complementary views of the same event.
    hedc.analyze(scientist, target["hle_id"], "lightcurve", {"bin_width_s": 2.0})
    hedc.analyze(scientist, target["hle_id"], "spectroscopy", {"n_energy_bins": 24})

    # Curate a private campaign catalog (a user workspace, §4.1) ...
    campaign = hedc.dm.semantic.create_catalog(
        scientist, "june-campaign", description="bright flares, day 1",
        criteria="kind = flare AND peak_rate > median",
    )
    for flare in flares[: max(1, len(flares) // 2)]:
        hedc.dm.semantic.add_to_catalog(scientist, campaign, flare["hle_id"])
    print(f"\nprivate catalog 'june-campaign' with "
          f"{hedc.dm.semantic.get_catalog(scientist, campaign)['n_members']} members")

    # ... then share the best analysis with everyone (§3.5).
    hedc.dm.semantic.publish_analysis(scientist, best.ana_id)
    anonymous_view = hedc.dm.semantic.get_analysis(None, best.ana_id)
    print(f"published analysis {anonymous_view['ana_id']} "
          f"({anonymous_view['algorithm']}, {anonymous_view['n_pixels']}px) "
          "is now publicly visible")

    # A colleague finds it instead of recomputing (redundant-work check).
    colleague = hedc.register_user("rene", "pw")
    existing = hedc.dm.semantic.find_existing_analysis(
        colleague, target["hle_id"], "imaging"
    )
    print(f"colleague's redundancy check found analysis {existing['ana_id']} - "
          "no recomputation needed")


if __name__ == "__main__":
    main()
