"""Connections and connection pools.

The paper (§5.3) identifies connection creation as one of the two most
expensive parts of request processing and splits the DM's pool three ways:
query processing, updates, and user authentication.  We model a connection
as a handle with an explicit (configurable) open cost so the pooling
ablation benchmark can show what pooling buys.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional, Union

from ..obs import Observability, resolve as resolve_obs
from ..resil.faults import fire as fire_fault
from .database import Database
from .errors import ClosedError, LockTimeout
from .sql import Statement


class Connection:
    """A client handle onto a :class:`Database`.

    ``open_cost_s`` simulates the expense of establishing a real DBMS
    session (network round trips, authentication); it is paid once in the
    constructor, which is precisely what pooling amortises.
    """

    _next_id = 1
    _id_lock = threading.Lock()

    def __init__(self, database: Database, open_cost_s: float = 0.0):
        with Connection._id_lock:
            self.connection_id = Connection._next_id
            Connection._next_id += 1
        if open_cost_s > 0:
            time.sleep(open_cost_s)
        self._database = database
        self._closed = False
        self.statements_executed = 0

    def execute(self, statement: Union[Statement, str], tx=None) -> Any:
        if self._closed:
            raise ClosedError("connection is closed")
        self.statements_executed += 1
        return self._database.execute(statement, tx=tx)

    def begin(self):
        if self._closed:
            raise ClosedError("connection is closed")
        return self._database.begin()

    def commit(self, tx) -> None:
        self._database.commit(tx)

    def rollback(self, tx) -> None:
        self._database.rollback(tx)

    def close(self) -> None:
        self._closed = True

    @property
    def closed(self) -> bool:
        return self._closed


class ConnectionPool:
    """A bounded pool of reusable connections.

    Connections are created lazily up to ``size``; ``acquire`` blocks (with
    timeout) when all are checked out.  Per the paper, "connections are
    immediately released by sessions after the result set has been copied"
    — callers should use the pool as a context manager per statement batch.
    """

    def __init__(
        self,
        database: Database,
        size: int = 8,
        open_cost_s: float = 0.0,
        name: str = "pool",
        obs: Optional[Observability] = None,
    ):
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self._database = database
        self.size = size
        self.name = name
        self.obs = resolve_obs(obs)
        self._open_cost_s = open_cost_s
        self._idle: deque[Connection] = deque()
        self._created = 0
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False
        self.acquisitions = 0
        self.waits = 0
        # Metric handles resolved once: acquire() is on every query path.
        self._acquire_wait = self.obs.histogram(
            "metadb.pool.acquire_wait_s", pool=self.name
        )
        self._wait_counter = self.obs.counter("metadb.pool.waits", pool=self.name)
        self._opened_counter = self.obs.counter("metadb.pool.opened", pool=self.name)

    def acquire(self, timeout: Optional[float] = None) -> Connection:
        with self.obs.span("pool.acquire", pool=self.name):
            started = time.perf_counter()
            connection = self._acquire(timeout)
            self._acquire_wait.observe(time.perf_counter() - started)
            return connection

    def _acquire(self, timeout: Optional[float]) -> Connection:
        # Injected stalls/errors happen before the condition variable is
        # taken, so a chaos-stalled acquire never blocks other callers.
        fire_fault("metadb.pool.acquire")
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                if self._closed:
                    raise ClosedError(f"pool {self.name!r} is closed")
                if self._idle:
                    self.acquisitions += 1
                    return self._idle.popleft()
                if self._created < self.size:
                    self._created += 1
                    break
                self.waits += 1
                self._wait_counter.inc()
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise LockTimeout(f"pool {self.name!r} exhausted")
                if not self._available.wait(remaining):
                    raise LockTimeout(f"pool {self.name!r} exhausted")
        # Create outside the lock: opening can be slow.
        connection = Connection(self._database, open_cost_s=self._open_cost_s)
        self._opened_counter.inc()
        with self._available:
            self.acquisitions += 1
        return connection

    def release(self, connection: Connection) -> None:
        with self._available:
            if self._closed or connection.closed:
                self._created -= 1
            else:
                self._idle.append(connection)
            self._available.notify()

    def close(self) -> None:
        with self._available:
            self._closed = True
            while self._idle:
                self._idle.popleft().close()
            self._available.notify_all()

    def __enter__(self) -> Connection:
        self._entered = self.acquire()
        return self._entered

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release(self._entered)
        del self._entered

    @property
    def idle_count(self) -> int:
        with self._lock:
            return len(self._idle)


class PoolSet:
    """The DM's three-way pool split (queries / updates / authentication)."""

    def __init__(
        self,
        database: Database,
        query_size: int = 16,
        update_size: int = 4,
        auth_size: int = 2,
        open_cost_s: float = 0.0,
        obs: Optional[Observability] = None,
    ):
        obs = resolve_obs(obs)
        self.queries = ConnectionPool(database, query_size, open_cost_s,
                                      name="queries", obs=obs)
        self.updates = ConnectionPool(database, update_size, open_cost_s,
                                      name="updates", obs=obs)
        self.auth = ConnectionPool(database, auth_size, open_cost_s,
                                   name="auth", obs=obs)

    def close(self) -> None:
        self.queries.close()
        self.updates.close()
        self.auth.close()
