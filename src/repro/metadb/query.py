"""Query objects, planning and execution.

The DM component of HEDC deliberately exposes *no* SQL in its API: callers
build collection objects which the database layer "parses, analyzes,
verifies and transforms into regular SQL queries" (paper §5.4).  These
classes are those collection objects.  The planner picks an access path
(primary-key probe, hash probe, ordered range scan, or full scan) from the
table's indexes and the WHERE shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

from .errors import QueryError, SchemaError
from .predicate import (
    ALWAYS,
    Predicate,
    conjuncts,
    equality_on,
    range_on,
)
from .storage import Table


@dataclass(frozen=True)
class Aggregate:
    """An aggregate output column, e.g. ``Aggregate("count", "*", "n")``."""

    func: str
    column: str
    alias: str

    _FUNCS = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func not in self._FUNCS:
            raise QueryError(f"unknown aggregate function {self.func!r}")


@dataclass(frozen=True)
class Join:
    """Inner equi-join with another table on left.column = right.column."""

    table: str
    left_column: str
    right_column: str


@dataclass
class Select:
    """A declarative SELECT over one table (optionally one join)."""

    table: str
    columns: Optional[Sequence[str]] = None
    where: Optional[Predicate] = None
    order_by: Sequence[tuple[str, str]] = ()
    limit: Optional[int] = None
    offset: int = 0
    group_by: Sequence[str] = ()
    aggregates: Sequence[Aggregate] = ()
    join: Optional[Join] = None

    def __post_init__(self) -> None:
        for _column, direction in self.order_by:
            if direction not in ("asc", "desc"):
                raise QueryError(f"order direction must be asc/desc, got {direction!r}")
        if self.limit is not None and self.limit < 0:
            raise QueryError("limit must be non-negative")
        if self.offset < 0:
            raise QueryError("offset must be non-negative")
        if self.group_by and not self.aggregates:
            raise QueryError("GROUP BY requires at least one aggregate")


@dataclass
class Insert:
    table: str
    values: dict[str, Any]


@dataclass
class Update:
    table: str
    changes: dict[str, Any]
    where: Optional[Predicate] = None


@dataclass
class Delete:
    table: str
    where: Optional[Predicate] = None


@dataclass(frozen=True)
class Plan:
    """Chosen access path; also the EXPLAIN output."""

    access: str            # "pk_probe" | "hash_probe" | "range_scan" | "full_scan"
    index_column: Optional[str] = None
    ordered: bool = False  # True when the scan already satisfies ORDER BY

    def describe(self) -> str:
        if self.access == "full_scan":
            return "FULL SCAN"
        return f"{self.access.upper()} on {self.index_column}"


def plan_select(table: Table, select: Select) -> Plan:
    """Pick the cheapest access path for ``select`` on ``table``."""
    where = select.where
    # 1. primary-key / unique hash probe on an equality conjunct.
    for conjunct_columns in _equality_columns(where):
        index = table.hash_index_on(conjunct_columns)
        if index is not None:
            access = "pk_probe" if index.name == "pk" else "hash_probe"
            return Plan(access, conjunct_columns)
    # 2. ordered range scan on a range-constrained indexed column.
    for column in _range_columns(where):
        if table.ordered_index_on(column) is not None:
            ordered = bool(select.order_by) and select.order_by[0][0] == column
            return Plan("range_scan", column, ordered=ordered)
    # 3. ordered scan that satisfies ORDER BY even without a range.
    if select.order_by:
        first_column = select.order_by[0][0]
        if table.ordered_index_on(first_column) is not None and len(select.order_by) == 1:
            return Plan("range_scan", first_column, ordered=True)
    return Plan("full_scan")


def _equality_columns(where: Optional[Predicate]) -> Iterator[str]:
    seen = set()
    for conjunct in conjuncts(where):
        for column in conjunct.columns():
            if column not in seen and equality_on(where, column) is not None:
                seen.add(column)
                yield column


def _range_columns(where: Optional[Predicate]) -> Iterator[str]:
    seen = set()
    for conjunct in conjuncts(where):
        for column in conjunct.columns():
            if column not in seen and range_on(where, column) is not None:
                seen.add(column)
                yield column


def _candidate_rows(table: Table, select: Select, plan: Plan) -> Iterator[dict[str, Any]]:
    where = select.where
    if plan.access in ("pk_probe", "hash_probe"):
        index = table.hash_index_on(plan.index_column)
        key = equality_on(where, plan.index_column)
        for rowid in index.probe(key):
            yield table.row(rowid)
        return
    if plan.access == "range_scan":
        ordered_index = table.ordered_index_on(plan.index_column)
        bounds = range_on(where, plan.index_column)
        descending = plan.ordered and select.order_by and select.order_by[0][1] == "desc"
        if bounds is None:
            rowids: Iterable[int] = ordered_index.scan(descending=bool(descending))
        else:
            low, high, low_inclusive, high_inclusive = bounds
            rowids = list(
                ordered_index.range(
                    low, high, low_inclusive=low_inclusive, high_inclusive=high_inclusive
                )
            )
            if descending:
                rowids = reversed(list(rowids))
        for rowid in rowids:
            yield table.row(rowid)
        return
    yield from table.rows()


def _project(row: dict[str, Any], columns: Optional[Sequence[str]]) -> dict[str, Any]:
    if not columns:
        return dict(row)
    try:
        return {column: row[column] for column in columns}
    except KeyError as exc:
        raise QueryError(f"unknown output column {exc.args[0]!r}") from exc


def _apply_order(rows: list[dict[str, Any]], order_by: Sequence[tuple[str, str]]):
    # Stable multi-key sort: apply keys right-to-left.
    for column, direction in reversed(list(order_by)):
        rows.sort(
            key=lambda row: (row.get(column) is None, row.get(column) if row.get(column) is not None else 0),
            reverse=(direction == "desc"),
        )
    return rows


def _aggregate(rows: list[dict[str, Any]], aggregates: Sequence[Aggregate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for aggregate in aggregates:
        if aggregate.func == "count":
            if aggregate.column == "*":
                out[aggregate.alias] = len(rows)
            else:
                out[aggregate.alias] = sum(
                    1 for row in rows if row.get(aggregate.column) is not None
                )
            continue
        values = [row[aggregate.column] for row in rows if row.get(aggregate.column) is not None]
        if not values:
            out[aggregate.alias] = None
        elif aggregate.func == "sum":
            out[aggregate.alias] = sum(values)
        elif aggregate.func == "avg":
            out[aggregate.alias] = sum(values) / len(values)
        elif aggregate.func == "min":
            out[aggregate.alias] = min(values)
        elif aggregate.func == "max":
            out[aggregate.alias] = max(values)
    return out


def execute_select(tables: dict[str, Table], select: Select) -> list[dict[str, Any]]:
    """Run ``select`` against ``tables`` and return result rows."""
    if select.table not in tables:
        raise SchemaError(f"unknown table {select.table!r}")
    table = tables[select.table]
    plan = plan_select(table, select)
    where = select.where or ALWAYS
    matched = [row for row in _candidate_rows(table, select, plan) if where.matches(row)]
    if select.join is not None:
        matched = _execute_join(tables, select, matched)
    if select.aggregates:
        return _execute_aggregates(matched, select)
    if select.order_by and not (plan.ordered and len(select.order_by) == 1 and select.join is None):
        _apply_order(matched, select.order_by)
    if select.offset:
        matched = matched[select.offset:]
    if select.limit is not None:
        matched = matched[: select.limit]
    return [_project(row, select.columns) for row in matched]


def _execute_join(
    tables: dict[str, Table], select: Select, left_rows: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    join = select.join
    if join.table not in tables:
        raise SchemaError(f"unknown join table {join.table!r}")
    right = tables[join.table]
    # Hash join: build on the smaller right side, probe with left rows.
    build: dict[Any, list[dict[str, Any]]] = {}
    right_index = right.hash_index_on(join.right_column)
    if right_index is None:
        for row in right.rows():
            key = row.get(join.right_column)
            if key is not None:
                build.setdefault(key, []).append(row)
    joined: list[dict[str, Any]] = []
    for left_row in left_rows:
        key = left_row.get(join.left_column)
        if key is None:
            continue
        if right_index is not None:
            matches = [right.row(rowid) for rowid in right_index.probe(key)]
        else:
            matches = build.get(key, ())
        for right_row in matches:
            merged = dict(right_row)
            merged.update(left_row)  # left wins on collisions
            joined.append(merged)
    return joined


def _execute_aggregates(rows: list[dict[str, Any]], select: Select) -> list[dict[str, Any]]:
    if not select.group_by:
        return [_aggregate(rows, select.aggregates)]
    groups: dict[tuple, list[dict[str, Any]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in select.group_by)
        groups.setdefault(key, []).append(row)
    result = []
    for key, group_rows in sorted(groups.items(), key=lambda item: tuple(map(repr, item[0]))):
        out = dict(zip(select.group_by, key))
        out.update(_aggregate(group_rows, select.aggregates))
        result.append(out)
    return result
