"""Query objects, planning and execution.

The DM component of HEDC deliberately exposes *no* SQL in its API: callers
build collection objects which the database layer "parses, analyzes,
verifies and transforms into regular SQL queries" (paper §5.4).  These
classes are those collection objects.  The planner picks an access path
(primary-key probe, hash probe, IN-list multi-probe, ordered range scan,
or full scan) by costing every sargable conjunct against live table
statistics, and the executor *streams*: the WHERE clause is compiled into
a fused closure, LIMIT/OFFSET are pushed into index scans that stop
early, and ORDER BY + LIMIT on an unordered stream uses a bounded Top-N
heap instead of sorting everything.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import islice
from typing import Any, Iterator, Optional, Sequence

from .errors import QueryError, SchemaError
from .predicate import (
    Predicate,
    TruePredicate,
    conjuncts,
    equality_on,
    in_list_on,
    range_on,
)
from .storage import Table


@dataclass(frozen=True)
class Aggregate:
    """An aggregate output column, e.g. ``Aggregate("count", "*", "n")``."""

    func: str
    column: str
    alias: str

    _FUNCS = ("count", "sum", "avg", "min", "max")

    def __post_init__(self) -> None:
        if self.func not in self._FUNCS:
            raise QueryError(f"unknown aggregate function {self.func!r}")


@dataclass(frozen=True)
class Join:
    """Inner equi-join with another table on left.column = right.column."""

    table: str
    left_column: str
    right_column: str


@dataclass
class Select:
    """A declarative SELECT over one table (optionally one join)."""

    table: str
    columns: Optional[Sequence[str]] = None
    where: Optional[Predicate] = None
    order_by: Sequence[tuple[str, str]] = ()
    limit: Optional[int] = None
    offset: int = 0
    group_by: Sequence[str] = ()
    aggregates: Sequence[Aggregate] = ()
    join: Optional[Join] = None

    def __post_init__(self) -> None:
        for _column, direction in self.order_by:
            if direction not in ("asc", "desc"):
                raise QueryError(f"order direction must be asc/desc, got {direction!r}")
        if self.limit is not None and self.limit < 0:
            raise QueryError("limit must be non-negative")
        if self.offset < 0:
            raise QueryError("offset must be non-negative")
        if self.group_by and not self.aggregates:
            raise QueryError("GROUP BY requires at least one aggregate")


@dataclass
class Insert:
    table: str
    values: dict[str, Any]


@dataclass
class Update:
    table: str
    changes: dict[str, Any]
    where: Optional[Predicate] = None


@dataclass
class Delete:
    table: str
    where: Optional[Predicate] = None


@dataclass
class Explain:
    """``EXPLAIN SELECT ...`` — executes to the chosen plan, not rows."""

    select: Select

    @property
    def table(self) -> str:
        return self.select.table


@dataclass(frozen=True)
class Plan:
    """Chosen access path plus executor strategy; also the EXPLAIN output."""

    #: "pk_probe" | "hash_probe" | "in_probe" | "range_scan" | "full_scan"
    #: | "columnar_scan"
    access: str
    index_column: Optional[str] = None
    ordered: bool = False   # True when the scan already satisfies ORDER BY
    keys: Optional[tuple] = None        # IN multi-probe keys, deterministic order
    estimated_rows: int = 0             # planner cardinality estimate
    table_rows: int = 0                 # statistics snapshot the estimate used
    limit_pushdown: bool = False        # executor stops the scan at OFFSET+LIMIT
    topn: bool = False                  # bounded heap instead of full sort
    segments: int = 0                   # columnar only: total segments
    segments_pruned: int = 0            # columnar only: skipped via zone maps

    def describe(self) -> str:
        if self.access == "full_scan":
            return "FULL SCAN"
        if self.access == "columnar_scan":
            scanned = self.segments - self.segments_pruned
            return f"COLUMNAR SCAN ({scanned}/{self.segments} segments)"
        return f"{self.access.upper()} on {self.index_column}"

    def to_dict(self) -> dict[str, Any]:
        """EXPLAIN row: the full plan as a plain dict."""
        return {
            "access": self.access,
            "index_column": self.index_column,
            "ordered": self.ordered,
            "in_keys": len(self.keys) if self.keys is not None else None,
            "estimated_rows": self.estimated_rows,
            "table_rows": self.table_rows,
            "limit_pushdown": self.limit_pushdown,
            "topn": self.topn,
            "segments_total": self.segments,
            "segments_pruned": self.segments_pruned,
            "description": self.describe(),
        }


def plan_select(table: Table, select: Select) -> Plan:
    """Cost every sargable conjunct against table statistics, pick cheapest.

    Candidate access paths are ranked by estimated output cardinality
    (rows the executor must touch); ties break towards cheaper probe
    kinds (pk < unique/hash < IN multi-probe < range).
    """
    where = select.where
    stats = table.stats()
    n_rows = stats.row_count
    candidates: list[tuple[int, int, Plan]] = []

    seen: set[str] = set()
    for conjunct in conjuncts(where):
        for column in conjunct.columns():
            if column in seen:
                continue
            seen.add(column)
            index = table.hash_index_on(column)
            if index is not None and equality_on(where, column) is not None:
                per_key = stats.rows_per_key.get(column, 1.0)
                estimate = max(1, round(per_key))
                access = "pk_probe" if index.name == "pk" else "hash_probe"
                rank = 0 if access == "pk_probe" else 1
                candidates.append(
                    (estimate, rank, Plan(access, column, estimated_rows=estimate,
                                          table_rows=n_rows))
                )
                continue
            if index is not None:
                in_values = in_list_on(where, column)
                if in_values is not None:
                    keys = tuple(sorted(in_values, key=repr))
                    per_key = stats.rows_per_key.get(column, 1.0)
                    estimate = max(1, round(per_key * len(keys)))
                    candidates.append(
                        (estimate, 2, Plan("in_probe", column, keys=keys,
                                           estimated_rows=estimate, table_rows=n_rows))
                    )
            ordered_index = table.ordered_index_on(column)
            if ordered_index is not None:
                bounds = range_on(where, column)
                if bounds is not None:
                    low, high, low_inclusive, high_inclusive = bounds
                    estimate = ordered_index.count_range(
                        low, high,
                        low_inclusive=low_inclusive, high_inclusive=high_inclusive,
                    )
                    ordered = (
                        len(select.order_by) == 1 and select.order_by[0][0] == column
                    )
                    candidates.append(
                        (estimate, 3, Plan("range_scan", column, ordered=ordered,
                                           estimated_rows=estimate, table_rows=n_rows))
                    )

    best_estimate = min((item[0] for item in candidates), default=None)
    columnar = _columnar_plan(table, select, n_rows, best_estimate)
    if columnar is not None:
        return _finalize(columnar, select)
    if candidates:
        _estimate, _rank, plan = min(candidates, key=lambda item: (item[0], item[1]))
        return _finalize(plan, select)
    # Ordered scan that satisfies ORDER BY even without a range constraint.
    if len(select.order_by) == 1:
        first_column = select.order_by[0][0]
        if table.ordered_index_on(first_column) is not None:
            plan = Plan("range_scan", first_column, ordered=True,
                        estimated_rows=n_rows, table_rows=n_rows)
            return _finalize(plan, select)
    return _finalize(Plan("full_scan", estimated_rows=n_rows, table_rows=n_rows), select)


#: Below this row count a columnar rebuild + mask evaluation cannot beat
#: the row path, so small tables always keep row-at-a-time plans.
COLUMNAR_MIN_ROWS = 256


def _columnar_plan(
    table: Table, select: Select, n_rows: int, best_estimate: Optional[int]
) -> Optional[Plan]:
    """The vectorized access path, when a scan dominates.

    Chosen for columnar-eligible tables when the query has no join, the
    table is big enough to amortise vectorization, and every index
    candidate is unselective (best estimate within 4x of a full scan) or
    absent.  Without any candidate, a *bounded* ordered fallback (ORDER
    BY column with an ordered index plus LIMIT) still wins — it streams
    in order and stops early, which no mask evaluation can match.
    """
    # Cheap integer disqualifiers first: the eligibility check reads the
    # environment kill-switch, which must stay off the OLTP probe path.
    if n_rows < COLUMNAR_MIN_ROWS or select.join is not None:
        return None
    if best_estimate is not None and best_estimate * 4 < n_rows:
        return None
    if not table.columnar_eligible:
        return None
    if best_estimate is None and select.limit is not None and len(select.order_by) == 1:
        if table.ordered_index_on(select.order_by[0][0]) is not None:
            return None
    store = table.columnar_store()
    pruned, total = store.prune_counts(select.where)
    surviving = total - pruned
    estimate = n_rows if total == 0 else round(n_rows * surviving / total)
    return Plan(
        "columnar_scan",
        estimated_rows=estimate,
        table_rows=n_rows,
        segments=total,
        segments_pruned=pruned,
    )


def _finalize(plan: Plan, select: Select) -> Plan:
    """Annotate the access path with the executor strategy it enables."""
    streamable = not select.aggregates and select.join is None
    order_satisfied = not select.order_by or (plan.ordered and len(select.order_by) == 1)
    bounded = select.limit is not None
    limit_pushdown = streamable and bounded and order_satisfied
    topn = streamable and bounded and not order_satisfied and bool(select.order_by)
    if limit_pushdown == plan.limit_pushdown and topn == plan.topn:
        return plan
    return Plan(
        plan.access, plan.index_column, ordered=plan.ordered, keys=plan.keys,
        estimated_rows=plan.estimated_rows, table_rows=plan.table_rows,
        limit_pushdown=limit_pushdown, topn=topn,
        segments=plan.segments, segments_pruned=plan.segments_pruned,
    )


def _candidate_rows(table: Table, select: Select, plan: Plan) -> Iterator[dict[str, Any]]:
    where = select.where
    if plan.access in ("pk_probe", "hash_probe"):
        index = table.hash_index_on(plan.index_column)
        key = equality_on(where, plan.index_column)
        for rowid in index.probe(key):
            yield table.row(rowid)
        return
    if plan.access == "in_probe":
        index = table.hash_index_on(plan.index_column)
        row = table.row
        for rowid in index.probe_many(plan.keys):
            yield row(rowid)
        return
    if plan.access == "range_scan":
        ordered_index = table.ordered_index_on(plan.index_column)
        bounds = range_on(where, plan.index_column)
        descending = bool(
            plan.ordered and select.order_by and select.order_by[0][1] == "desc"
        )
        if bounds is None:
            rowids = ordered_index.scan(descending=descending)
        else:
            low, high, low_inclusive, high_inclusive = bounds
            rowids = ordered_index.range(
                low, high,
                low_inclusive=low_inclusive, high_inclusive=high_inclusive,
                descending=descending,
            )
        row = table.row
        for rowid in rowids:
            yield row(rowid)
        return
    yield from table.rows()


def _project(row: dict[str, Any], columns: Optional[Sequence[str]]) -> dict[str, Any]:
    if not columns:
        return dict(row)
    try:
        return {column: row[column] for column in columns}
    except KeyError as exc:
        raise QueryError(f"unknown output column {exc.args[0]!r}") from exc


class _Desc:
    """Inverts comparisons so a single ascending sort yields DESC order."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __eq__(self, other: "_Desc") -> bool:
        return self.value == other.value

    def __lt__(self, other: "_Desc") -> bool:
        return other.value < self.value


def _order_key(order_by: Sequence[tuple[str, str]]):
    """Tuple sort key with explicit NULLS-LAST semantics per column.

    Each component is ``(is_null, value)`` so NULL never masquerades as a
    literal (the old key substituted 0, interleaving NULLs with numeric
    columns on DESC); NULLs sort last for both directions.
    """
    specs = tuple((column, direction == "desc") for column, direction in order_by)

    def key(row: dict[str, Any]) -> tuple:
        parts = []
        for column, descending in specs:
            value = row.get(column)
            if value is None:
                parts.append((True, None))
            else:
                parts.append((False, _Desc(value) if descending else value))
        return tuple(parts)
    return key


def _apply_order(rows: list[dict[str, Any]], order_by: Sequence[tuple[str, str]]):
    rows.sort(key=_order_key(order_by))
    return rows


def _top_n(
    rows: Iterator[dict[str, Any]], order_by: Sequence[tuple[str, str]], n: int
) -> list[dict[str, Any]]:
    """Smallest ``n`` rows under the ORDER BY key, streamed through a
    bounded heap — O(rows · log n) time, O(n) space."""
    return heapq.nsmallest(n, rows, key=_order_key(order_by))


def _aggregate(rows: list[dict[str, Any]], aggregates: Sequence[Aggregate]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for aggregate in aggregates:
        if aggregate.func == "count":
            if aggregate.column == "*":
                out[aggregate.alias] = len(rows)
            else:
                out[aggregate.alias] = sum(
                    1 for row in rows if row.get(aggregate.column) is not None
                )
            continue
        values = [row[aggregate.column] for row in rows if row.get(aggregate.column) is not None]
        if not values:
            out[aggregate.alias] = None
        elif aggregate.func == "sum":
            out[aggregate.alias] = sum(values)
        elif aggregate.func == "avg":
            out[aggregate.alias] = sum(values) / len(values)
        elif aggregate.func == "min":
            out[aggregate.alias] = min(values)
        elif aggregate.func == "max":
            out[aggregate.alias] = max(values)
    return out


def execute_select(
    tables: dict[str, Table], select: Select, plan: Optional[Plan] = None
) -> list[dict[str, Any]]:
    """Run ``select`` against ``tables`` and return result rows.

    The matched stream stays lazy end to end on the common paths: a
    compiled WHERE closure filters candidates as the index scan produces
    them, ``islice`` implements LIMIT/OFFSET pushdown (the scan stops at
    OFFSET+LIMIT matches), and ORDER BY + LIMIT on an unordered stream
    keeps only OFFSET+LIMIT rows in a heap.  Joins and aggregates still
    materialise, as they must.
    """
    if select.table not in tables:
        raise SchemaError(f"unknown table {select.table!r}")
    table = tables[select.table]
    if plan is None:
        plan = plan_select(table, select)
    where = select.where
    if plan.access == "columnar_scan":
        store = table.columnar_store()
        positions = store.scan_positions(where)
        if select.aggregates and select.join is None:
            vectorized = store.vector_aggregates(select, positions)
            if vectorized is not None:
                return vectorized
        # The mask already applied WHERE; gather survivors in scan order.
        matched_stream: Iterator[dict[str, Any]] = store.gathered_rows(positions)
    else:
        candidates = _candidate_rows(table, select, plan)
        if where is None or isinstance(where, TruePredicate):
            matched_stream = candidates
        else:
            matcher = where.compile()
            matched_stream = (row for row in candidates if matcher(row))

    if select.join is not None:
        matched = _execute_join(tables, select, list(matched_stream))
        if select.aggregates:
            return _execute_aggregates(matched, select)
        if select.order_by:
            _apply_order(matched, select.order_by)
        if select.offset:
            matched = matched[select.offset:]
        if select.limit is not None:
            matched = matched[: select.limit]
        return [_project(row, select.columns) for row in matched]

    if select.aggregates:
        return _execute_aggregates(list(matched_stream), select)

    if plan.topn:
        bounded = _top_n(matched_stream, select.order_by, select.offset + select.limit)
        rows = bounded[select.offset:]
    elif select.order_by and not plan.ordered:
        matched = list(matched_stream)
        _apply_order(matched, select.order_by)
        stop = None if select.limit is None else select.offset + select.limit
        rows = matched[select.offset:stop]
    else:
        # Scan order is the output order: push LIMIT/OFFSET into the scan.
        stop = None if select.limit is None else select.offset + select.limit
        rows = list(islice(matched_stream, select.offset, stop))
    return [_project(row, select.columns) for row in rows]


def _execute_join(
    tables: dict[str, Table], select: Select, left_rows: list[dict[str, Any]]
) -> list[dict[str, Any]]:
    join = select.join
    if join.table not in tables:
        raise SchemaError(f"unknown join table {join.table!r}")
    right = tables[join.table]
    # Hash join: build on the smaller right side, probe with left rows.
    build: dict[Any, list[dict[str, Any]]] = {}
    right_index = right.hash_index_on(join.right_column)
    if right_index is None:
        for row in right.rows():
            key = row.get(join.right_column)
            if key is not None:
                build.setdefault(key, []).append(row)
    joined: list[dict[str, Any]] = []
    for left_row in left_rows:
        key = left_row.get(join.left_column)
        if key is None:
            continue
        if right_index is not None:
            matches = [right.row(rowid) for rowid in right_index.probe(key)]
        else:
            matches = build.get(key, ())
        for right_row in matches:
            merged = dict(right_row)
            merged.update(left_row)  # left wins on collisions
            joined.append(merged)
    return joined


def _execute_aggregates(rows: list[dict[str, Any]], select: Select) -> list[dict[str, Any]]:
    if not select.group_by:
        return [_aggregate(rows, select.aggregates)]
    groups: dict[tuple, list[dict[str, Any]]] = {}
    for row in rows:
        key = tuple(row.get(column) for column in select.group_by)
        groups.setdefault(key, []).append(row)
    result = []
    for key, group_rows in sorted(groups.items(), key=lambda item: tuple(map(repr, item[0]))):
        out = dict(zip(select.group_by, key))
        out.update(_aggregate(group_rows, select.aggregates))
        result.append(out)
    return result
