"""Exception hierarchy for the embedded metadata database."""

from __future__ import annotations


class DatabaseError(Exception):
    """Base class for all metadb errors."""


class SchemaError(DatabaseError):
    """Invalid schema definition or unknown table/column."""


class IntegrityError(DatabaseError):
    """Constraint violation: primary key, unique, not-null, foreign key."""


class QueryError(DatabaseError):
    """Malformed query or SQL text."""


class TransactionError(DatabaseError):
    """Invalid transaction state transition."""


class LockTimeout(DatabaseError):
    """A lock could not be acquired in time."""


class ClosedError(DatabaseError):
    """Operation attempted on a closed database or connection."""
