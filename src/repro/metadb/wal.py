"""Write-ahead journal and snapshot persistence.

Durability mirrors the paper's setup ("critical data, such as the database
redo logs ... is stored on the A1000 with tape backup"): committed
transactions are appended to a JSON-lines journal; a checkpoint writes a
full snapshot and truncates the journal; opening a database restores the
snapshot and replays the journal.
"""

from __future__ import annotations

import base64
import json
import os
import threading
from pathlib import Path
from typing import Any, Iterator, Optional

from ..obs import Observability, resolve as resolve_obs
from ..resil.faults import fire as fire_fault

# Process-wide count of open journal file handles — a leak detector for
# the process-runtime panel (every Journal opens lazily and closes on
# checkpoint, so a steadily climbing count means handles are escaping).
_OPEN_HANDLES = 0
_HANDLE_LOCK = threading.Lock()


def open_wal_handles() -> int:
    """How many journal file handles this process currently holds open."""
    return _OPEN_HANDLES


def _encode_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"__blob__": base64.b64encode(value).decode("ascii")}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "__blob__" in value:
        return base64.b64decode(value["__blob__"])
    return value


def _encode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {key: _encode_value(value) for key, value in row.items()}


def _decode_row(row: dict[str, Any]) -> dict[str, Any]:
    return {key: _decode_value(value) for key, value in row.items()}


class Journal:
    """Append-only journal of committed transactions."""

    def __init__(self, directory: Path, obs: Optional[Observability] = None,
                 fault_scope: Optional[str] = None):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.journal_path = self.directory / "journal.jsonl"
        self.snapshot_path = self.directory / "snapshot.json"
        self._handle = None
        self.obs = resolve_obs(obs)
        # Scoped fault point (e.g. "metadb.shard.3") so chaos tests can
        # fail one shard's fsyncs without touching every journal.
        self._fsync_fault = f"{fault_scope}.wal.fsync" if fault_scope else None

    def _fsync(self, handle) -> None:
        fire_fault("metadb.wal.fsync")
        if self._fsync_fault is not None:
            fire_fault(self._fsync_fault)
        os.fsync(handle.fileno())
        self.obs.count("metadb.wal.fsyncs")

    # -- writing -------------------------------------------------------------

    def _open_handle(self):
        if self._handle is None:
            self._handle = open(self.journal_path, "a", encoding="utf-8")
            global _OPEN_HANDLES
            with _HANDLE_LOCK:
                _OPEN_HANDLES += 1
        return self._handle

    def append_transaction(self, tx_id: int, records: list[dict[str, Any]]) -> None:
        """Durably record one committed transaction."""
        handle = self._open_handle()
        encoded = []
        for record in records:
            record = dict(record)
            if "row" in record:
                record["row"] = _encode_row(record["row"])
            if "changes" in record:
                record["changes"] = _encode_row(record["changes"])
            encoded.append(record)
        handle.write(json.dumps({"tx": tx_id, "records": encoded}) + "\n")
        handle.flush()
        self._fsync(handle)
        self.obs.count("metadb.wal.records", len(encoded))

    def append_ddl(self, record: dict[str, Any]) -> None:
        """Record a schema change (CREATE/DROP TABLE)."""
        handle = self._open_handle()
        handle.write(json.dumps({"ddl": record}) + "\n")
        handle.flush()
        self._fsync(handle)

    # -- checkpointing ---------------------------------------------------------

    def checkpoint(self, snapshot: dict[str, Any]) -> None:
        """Write a snapshot atomically, then truncate the journal."""
        encoded_tables = {}
        for table_name, table_data in snapshot["tables"].items():
            encoded_tables[table_name] = {
                "schema": table_data["schema"],
                "rows": {
                    str(rowid): _encode_row(row)
                    for rowid, row in table_data["rows"].items()
                },
            }
        payload = {"tables": encoded_tables}
        tmp_path = self.snapshot_path.with_suffix(".tmp")
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.flush()
            self._fsync(handle)
        os.replace(tmp_path, self.snapshot_path)
        self.close()
        with open(self.journal_path, "w", encoding="utf-8") as handle:
            handle.flush()
            self._fsync(handle)
        self.obs.count("metadb.wal.checkpoints")

    # -- recovery ------------------------------------------------------------

    def load_snapshot(self) -> Optional[dict[str, Any]]:
        if not self.snapshot_path.exists():
            return None
        with open(self.snapshot_path, encoding="utf-8") as handle:
            payload = json.load(handle)
        tables = {}
        for table_name, table_data in payload["tables"].items():
            tables[table_name] = {
                "schema": table_data["schema"],
                "rows": {
                    int(rowid): _decode_row(row)
                    for rowid, row in table_data["rows"].items()
                },
            }
        return {"tables": tables}

    def _scan_entries(self) -> list[dict[str, Any]]:
        """Read all decodable journal entries, healing a torn tail.

        A crash mid-append can leave a partially written final line.  A
        strict byte-prefix of a JSON object cannot itself parse as JSON
        (the braces are unbalanced), so an undecodable line marks the torn
        tail: everything from that byte onward is physically truncated away
        — otherwise the next append would concatenate onto the partial line
        and corrupt *two* records — and the discard is reported to the
        event log.  The one benign case is a final line that parses but
        lost only its trailing newline; the record is complete data, so it
        is kept and the newline repaired in place.
        """
        if not self.journal_path.exists():
            return []
        data = self.journal_path.read_bytes()
        entries: list[dict[str, Any]] = []
        size = len(data)
        position = 0
        good_end = 0
        missing_newline = False
        while position < size:
            newline = data.find(b"\n", position)
            complete = newline != -1
            end = newline + 1 if complete else size
            stripped = data[position:end].strip()
            if stripped:
                try:
                    entry = json.loads(stripped.decode("utf-8"))
                except (ValueError, UnicodeDecodeError):
                    entry = None
                if not isinstance(entry, dict):
                    self._truncate_torn_tail(good_end, size - good_end)
                    return entries
                entries.append(entry)
                missing_newline = not complete
            position = end
            good_end = end
        if missing_newline:
            with open(self.journal_path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
        return entries

    def _truncate_torn_tail(self, good_end: int, torn_bytes: int) -> None:
        self.close()
        with open(self.journal_path, "r+b") as handle:
            handle.truncate(good_end)
            handle.flush()
            os.fsync(handle.fileno())
        self.obs.count("metadb.wal.torn_tails")
        self.obs.event(
            "warn", "metadb", "wal.torn_tail",
            f"discarded {torn_bytes} torn byte(s) at the journal tail",
            journal=str(self.journal_path), kept_bytes=good_end,
            discarded_bytes=torn_bytes,
        )

    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield journal entries in commit order, discarding a torn tail."""
        for entry in self._scan_entries():
            if "records" in entry:
                for record in entry["records"]:
                    record = dict(record)
                    if "row" in record:
                        record["row"] = _decode_row(record["row"])
                    if "changes" in record:
                        record["changes"] = _decode_row(record["changes"])
                    yield record
            elif "ddl" in entry:
                yield {"op": "__ddl__", **entry["ddl"]}

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None
            global _OPEN_HANDLES
            with _HANDLE_LOCK:
                _OPEN_HANDLES -= 1
