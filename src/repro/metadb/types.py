"""Column types and value coercion for the embedded database.

The type system is deliberately small — the five types the HEDC metadata
schema needs — but strict: every value stored in a table has been coerced
and validated against its column's declared type.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any, Optional

from .errors import SchemaError


class ColumnType(enum.Enum):
    INTEGER = "INTEGER"
    REAL = "REAL"
    TEXT = "TEXT"
    BOOLEAN = "BOOLEAN"
    TIMESTAMP = "TIMESTAMP"
    BLOB = "BLOB"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


_EPOCH = _dt.datetime(1970, 1, 1, tzinfo=_dt.timezone.utc)


def _coerce_timestamp(value: Any) -> float:
    """Timestamps are stored as float seconds since the Unix epoch (UTC)."""
    if isinstance(value, bool):
        raise TypeError("boolean is not a timestamp")
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, _dt.datetime):
        if value.tzinfo is None:
            value = value.replace(tzinfo=_dt.timezone.utc)
        return (value - _EPOCH).total_seconds()
    if isinstance(value, str):
        parsed = _dt.datetime.fromisoformat(value)
        if parsed.tzinfo is None:
            parsed = parsed.replace(tzinfo=_dt.timezone.utc)
        return (parsed - _EPOCH).total_seconds()
    raise TypeError(f"cannot interpret {value!r} as a timestamp")


def coerce(value: Any, column_type: ColumnType) -> Any:
    """Coerce ``value`` to the Python representation of ``column_type``.

    Raises TypeError/ValueError when the value cannot represent the type
    losslessly (e.g. TEXT into INTEGER only when it parses).
    """
    if value is None:
        return None
    if column_type is ColumnType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        if isinstance(value, str):
            return int(value)
        raise TypeError(f"cannot store {value!r} in INTEGER column")
    if column_type is ColumnType.REAL:
        if isinstance(value, bool):
            raise TypeError("cannot store boolean in REAL column")
        if isinstance(value, (int, float)):
            return float(value)
        if isinstance(value, str):
            return float(value)
        raise TypeError(f"cannot store {value!r} in REAL column")
    if column_type is ColumnType.TEXT:
        if isinstance(value, str):
            return value
        raise TypeError(f"cannot store {value!r} in TEXT column")
    if column_type is ColumnType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if isinstance(value, int) and value in (0, 1):
            return bool(value)
        raise TypeError(f"cannot store {value!r} in BOOLEAN column")
    if column_type is ColumnType.TIMESTAMP:
        return _coerce_timestamp(value)
    if column_type is ColumnType.BLOB:
        if isinstance(value, (bytes, bytearray)):
            return bytes(value)
        raise TypeError(f"cannot store {value!r} in BLOB column")
    raise SchemaError(f"unknown column type {column_type!r}")


def type_from_name(name: str) -> ColumnType:
    """Parse a type name as it appears in SQL DDL."""
    normalized = name.strip().upper()
    aliases = {
        "INT": ColumnType.INTEGER,
        "BIGINT": ColumnType.INTEGER,
        "FLOAT": ColumnType.REAL,
        "DOUBLE": ColumnType.REAL,
        "VARCHAR": ColumnType.TEXT,
        "STRING": ColumnType.TEXT,
        "BOOL": ColumnType.BOOLEAN,
        "DATETIME": ColumnType.TIMESTAMP,
        "BYTES": ColumnType.BLOB,
    }
    if normalized in aliases:
        return aliases[normalized]
    try:
        return ColumnType(normalized)
    except ValueError as exc:
        raise SchemaError(f"unknown column type name {name!r}") from exc
