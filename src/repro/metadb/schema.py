"""Table schema definitions.

A :class:`TableSchema` declares columns, the primary key, unique and
non-null constraints, defaults, foreign keys and secondary indexes.  The
storage layer validates every row against its schema on insert/update.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from .errors import IntegrityError, SchemaError
from .types import ColumnType, coerce


@dataclass(frozen=True)
class Column:
    """A single typed column.

    ``default`` may be a constant or a zero-argument callable evaluated at
    insert time (e.g. a timestamp supplier).
    """

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.replace("_", "").isalnum():
            raise SchemaError(f"invalid column name {self.name!r}")
        if self.name != self.name.lower():
            raise SchemaError(f"column names must be lowercase: {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """Declarative reference from ``column`` to ``ref_table.ref_column``."""

    column: str
    ref_table: str
    ref_column: str


class TableSchema:
    """Schema of one table.

    >>> schema = TableSchema(
    ...     "users",
    ...     [Column("user_id", ColumnType.INTEGER, nullable=False),
    ...      Column("login", ColumnType.TEXT, nullable=False)],
    ...     primary_key="user_id",
    ...     unique=[("login",)],
    ... )
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Optional[str] = None,
        unique: Iterable[Sequence[str]] = (),
        foreign_keys: Iterable[ForeignKey] = (),
        indexes: Iterable[Sequence[str]] = (),
        columnar: bool = False,
    ):
        if not name or not name.replace("_", "").isalnum():
            raise SchemaError(f"invalid table name {name!r}")
        if not columns:
            raise SchemaError(f"table {name!r} must have at least one column")
        self.name = name
        self.columns: dict[str, Column] = {}
        for column in columns:
            if column.name in self.columns:
                raise SchemaError(f"duplicate column {column.name!r} in table {name!r}")
            self.columns[column.name] = column
        self.column_order = [column.name for column in columns]
        self.primary_key = primary_key
        if primary_key is not None:
            if primary_key not in self.columns:
                raise SchemaError(f"primary key {primary_key!r} is not a column of {name!r}")
            if self.columns[primary_key].nullable:
                raise SchemaError(f"primary key column {primary_key!r} must be NOT NULL")
        self.unique = [tuple(u) for u in unique]
        for unique_cols in self.unique:
            for col in unique_cols:
                if col not in self.columns:
                    raise SchemaError(f"unique constraint references unknown column {col!r}")
        self.foreign_keys = list(foreign_keys)
        for fk in self.foreign_keys:
            if fk.column not in self.columns:
                raise SchemaError(f"foreign key references unknown column {fk.column!r}")
        self.indexes = [tuple(i) for i in indexes]
        for index_cols in self.indexes:
            for col in index_cols:
                if col not in self.columns:
                    raise SchemaError(f"index references unknown column {col!r}")
        # Opt-in columnar storage: the table additionally maintains a
        # lazily rebuilt column-oriented copy the vectorized executor
        # scans (see repro.metadb.columnar).  Purely an access-path hint;
        # the row store stays the source of truth.
        self.columnar = bool(columnar)

    def has_column(self, name: str) -> bool:
        return name in self.columns

    def normalize_row(self, values: dict[str, Any], *, for_update: bool = False) -> dict[str, Any]:
        """Validate and coerce ``values`` into a complete (or partial) row.

        On insert (``for_update=False``) missing columns receive their
        defaults and NOT NULL is enforced.  On update only the provided
        columns are checked.
        """
        row: dict[str, Any] = {}
        for key in values:
            if key not in self.columns:
                raise SchemaError(f"table {self.name!r} has no column {key!r}")
        source = values if for_update else {**{c: None for c in self.column_order}, **values}
        for name_, raw in source.items():
            column = self.columns[name_]
            if raw is None and not for_update and name_ not in values:
                default = column.default
                raw = default() if callable(default) else default
            if raw is None:
                if not column.nullable:
                    raise IntegrityError(
                        f"NOT NULL violation: {self.name}.{name_}"
                    )
                row[name_] = None
                continue
            try:
                row[name_] = coerce(raw, column.type)
            except (TypeError, ValueError) as exc:
                raise IntegrityError(
                    f"type violation on {self.name}.{name_}: {exc}"
                ) from exc
        return row

    def to_dict(self) -> dict:
        """Serializable description (used by WAL snapshots and lineage).

        Callable defaults cannot be serialized in general; the one case
        the schemas rely on — current-time defaults on TIMESTAMP columns
        — round-trips via the ``"__now__"`` marker.  Other callable
        defaults degrade to NULL after a snapshot/restore.
        """

        def serialize_default(column: Column):
            if callable(column.default):
                return "__now__" if column.type is ColumnType.TIMESTAMP else None
            return column.default

        return {
            "name": self.name,
            "columns": [
                {
                    "name": column.name,
                    "type": column.type.value,
                    "nullable": column.nullable,
                    "default": serialize_default(column),
                }
                for column in (self.columns[c] for c in self.column_order)
            ],
            "primary_key": self.primary_key,
            "unique": [list(u) for u in self.unique],
            "foreign_keys": [
                {"column": fk.column, "ref_table": fk.ref_table, "ref_column": fk.ref_column}
                for fk in self.foreign_keys
            ],
            "indexes": [list(i) for i in self.indexes],
            "columnar": self.columnar,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TableSchema":
        import time as _time

        def deserialize_default(col: dict):
            if col.get("default") == "__now__" and col["type"] == ColumnType.TIMESTAMP.value:
                return _time.time
            return col.get("default")

        columns = [
            Column(
                col["name"],
                ColumnType(col["type"]),
                nullable=col.get("nullable", True),
                default=deserialize_default(col),
            )
            for col in data["columns"]
        ]
        foreign_keys = [
            ForeignKey(fk["column"], fk["ref_table"], fk["ref_column"])
            for fk in data.get("foreign_keys", ())
        ]
        return cls(
            data["name"],
            columns,
            primary_key=data.get("primary_key"),
            unique=data.get("unique", ()),
            foreign_keys=foreign_keys,
            indexes=data.get("indexes", ()),
            columnar=data.get("columnar", False),
        )
