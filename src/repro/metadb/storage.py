"""In-memory row storage with index maintenance.

A :class:`Table` stores rows keyed by an internal monotonically increasing
rowid.  It maintains a unique hash index per primary key / unique
constraint and an ordered index per declared secondary index.  Foreign-key
enforcement needs cross-table visibility and therefore lives in
:class:`repro.metadb.database.Database`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from . import columnar as _columnar
from .errors import IntegrityError, SchemaError
from .index import HashIndex, OrderedIndex
from .schema import TableSchema


@dataclass(frozen=True)
class TableStats:
    """Live statistics the planner costs access paths with.

    ``rows_per_key`` maps an indexed column to the average bucket size of
    its hash index (1.0 for unique indexes) — the per-probe cardinality
    estimate.  Ordered indexes answer range cardinalities directly via
    :meth:`OrderedIndex.count_range`, so only their presence is recorded.
    """

    row_count: int
    rows_per_key: dict[str, float]
    ordered_columns: tuple[str, ...]

    def to_dict(self) -> dict[str, Any]:
        return {
            "row_count": self.row_count,
            "rows_per_key": dict(self.rows_per_key),
            "ordered_columns": list(self.ordered_columns),
        }


class Table:
    """One table: rows plus their indexes."""

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[int, dict[str, Any]] = {}
        self._next_rowid = 1
        # Mutation epoch: bumped by every insert/update/delete/restore.
        # The lazily built columnar copy and the cached planner statistics
        # both key their freshness off it.
        self._mutations = 0
        self._columnar_store: Optional[_columnar.ColumnarStore] = None
        self._stats_cache: Optional[TableStats] = None
        self._stats_mutations = 0
        self._hash_indexes: list[HashIndex] = []
        self._ordered_indexes: dict[str, OrderedIndex] = {}
        self._pk_index: Optional[HashIndex] = None
        if schema.primary_key:
            self._pk_index = HashIndex([schema.primary_key], unique=True, name="pk")
            self._hash_indexes.append(self._pk_index)
        for unique_cols in schema.unique:
            self._hash_indexes.append(HashIndex(unique_cols, unique=True))
        for index_cols in schema.indexes:
            if len(index_cols) == 1:
                column = index_cols[0]
                if column not in self._ordered_indexes:
                    self._ordered_indexes[column] = OrderedIndex(column)
            else:
                self._hash_indexes.append(HashIndex(index_cols, unique=False))

    # -- basic properties -------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def rowids(self) -> Iterator[int]:
        return iter(list(self._rows.keys()))

    def row(self, rowid: int) -> dict[str, Any]:
        return self._rows[rowid]

    def rows(self) -> Iterator[dict[str, Any]]:
        return iter(list(self._rows.values()))

    # -- index access for the planner -------------------------------------

    def hash_index_on(self, column: str) -> Optional[HashIndex]:
        for index in self._hash_indexes:
            if index.columns == (column,):
                return index
        return None

    def ordered_index_on(self, column: str) -> Optional[OrderedIndex]:
        return self._ordered_indexes.get(column)

    def has_index_on(self, column: str) -> bool:
        return self.hash_index_on(column) is not None or column in self._ordered_indexes

    @property
    def mutation_epoch(self) -> int:
        """Monotonic count of mutations; freshness token for derived state."""
        return self._mutations

    @property
    def columnar_eligible(self) -> bool:
        """True when this table maintains a columnar copy the vectorized
        executor may scan (declared in the schema, numpy importable, and
        not disabled via ``HEDC_COLUMNAR=0``)."""
        return (
            self.schema.columnar
            and _columnar.available()
            and _columnar.enabled()
        )

    def columnar_store(self) -> "_columnar.ColumnarStore":
        """The table's columnar copy, created on first use (freshness is
        the store's own concern — see :meth:`ColumnarStore.ensure_fresh`)."""
        if self._columnar_store is None:
            self._columnar_store = _columnar.ColumnarStore(self)
        return self._columnar_store

    def stats(self) -> TableStats:
        """Planner statistics, cached against the mutation epoch.

        The cache is reused while fewer than ``max(1, rows/20)`` mutations
        landed since it was computed (rows as of compute time), so small
        tables stay effectively live while hot tables avoid recomputing
        per query.  The mutation-count threshold — rather than refreshing
        on insert only — is what keeps estimates honest after a bulk
        DELETE: mass deletes blow through the threshold immediately and
        the next plan sees the shrunken cardinalities.
        """
        cache = self._stats_cache
        if cache is not None:
            if self._mutations - self._stats_mutations < max(1, cache.row_count // 20):
                return cache
        stats = self._compute_stats()
        self._stats_cache = stats
        self._stats_mutations = self._mutations
        return stats

    def _compute_stats(self) -> TableStats:
        """O(#indexes) statistics snapshot from the live indexes."""
        rows = len(self._rows)
        rows_per_key: dict[str, float] = {}
        for index in self._hash_indexes:
            if len(index.columns) != 1:
                continue
            column = index.columns[0]
            if index.unique:
                rows_per_key[column] = 1.0
            else:
                distinct = index.distinct_keys()
                rows_per_key[column] = rows / distinct if distinct else float(rows)
        return TableStats(
            row_count=rows,
            rows_per_key=rows_per_key,
            ordered_columns=tuple(self._ordered_indexes),
        )

    # -- mutation ----------------------------------------------------------

    def insert(self, values: dict[str, Any]) -> int:
        """Insert a row; returns the internal rowid."""
        row = self.schema.normalize_row(values)
        if self.schema.primary_key and row.get(self.schema.primary_key) is None:
            raise IntegrityError(
                f"primary key {self.schema.primary_key!r} of {self.name!r} may not be NULL"
            )
        rowid = self._next_rowid
        inserted: list = []
        try:
            for index in self._hash_indexes:
                index.insert(rowid, row)
                inserted.append(index)
            for index in self._ordered_indexes.values():
                index.insert(rowid, row)
                inserted.append(index)
        except IntegrityError:
            for index in inserted:
                index.remove(rowid, row)
            raise
        self._rows[rowid] = row
        self._next_rowid += 1
        self._mutations += 1
        return rowid

    def update(self, rowid: int, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply ``changes`` to one row; returns the previous row image."""
        if rowid not in self._rows:
            raise SchemaError(f"rowid {rowid} not present in {self.name!r}")
        old_row = self._rows[rowid]
        normalized = self.schema.normalize_row(changes, for_update=True)
        new_row = {**old_row, **normalized}
        if self.schema.primary_key and new_row.get(self.schema.primary_key) is None:
            raise IntegrityError(
                f"primary key {self.schema.primary_key!r} of {self.name!r} may not be NULL"
            )
        for column in self.schema.column_order:
            if new_row.get(column) is None and not self.schema.columns[column].nullable:
                raise IntegrityError(f"NOT NULL violation: {self.name}.{column}")
        for index in self._hash_indexes:
            index.remove(rowid, old_row)
        for index in self._ordered_indexes.values():
            index.remove(rowid, old_row)
        reinserted: list = []
        try:
            for index in self._hash_indexes:
                index.insert(rowid, new_row)
                reinserted.append(index)
            for index in self._ordered_indexes.values():
                index.insert(rowid, new_row)
                reinserted.append(index)
        except IntegrityError:
            for index in reinserted:
                index.remove(rowid, new_row)
            for index in self._hash_indexes:
                index.insert(rowid, old_row)
            for index in self._ordered_indexes.values():
                index.insert(rowid, old_row)
            raise
        self._rows[rowid] = new_row
        self._mutations += 1
        return old_row

    def delete(self, rowid: int) -> dict[str, Any]:
        """Remove one row; returns its last image (for undo logs)."""
        if rowid not in self._rows:
            raise SchemaError(f"rowid {rowid} not present in {self.name!r}")
        row = self._rows.pop(rowid)
        for index in self._hash_indexes:
            index.remove(rowid, row)
        for index in self._ordered_indexes.values():
            index.remove(rowid, row)
        self._mutations += 1
        return row

    def restore(self, rowid: int, row: dict[str, Any]) -> None:
        """Re-insert a previously deleted row under its original rowid."""
        if rowid in self._rows:
            raise SchemaError(f"rowid {rowid} already present in {self.name!r}")
        for index in self._hash_indexes:
            index.insert(rowid, row)
        for index in self._ordered_indexes.values():
            index.insert(rowid, row)
        self._rows[rowid] = row
        self._next_rowid = max(self._next_rowid, rowid + 1)
        self._mutations += 1

    # -- lookups ------------------------------------------------------------

    def lookup_pk(self, key: Any) -> Optional[int]:
        """Rowid of the row whose primary key equals ``key``, if any."""
        if self._pk_index is None:
            raise SchemaError(f"table {self.name!r} has no primary key")
        rowids = self._pk_index.probe(key)
        return next(iter(rowids), None)

    def exists_value(self, column: str, value: Any) -> bool:
        """True when some row has ``column == value`` (FK checks)."""
        index = self.hash_index_on(column)
        if index is not None:
            return bool(index.probe(value))
        ordered = self.ordered_index_on(column)
        if ordered is not None:
            return any(True for _ in ordered.range(value, value))
        return any(row.get(column) == value for row in self._rows.values())
