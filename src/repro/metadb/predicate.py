"""Predicate AST used in WHERE clauses.

Predicates evaluate against a row dict and expose enough structure for the
planner to recognise *sargable* shapes (equality and range constraints on
indexed columns).  SQL three-valued logic is approximated: any comparison
with NULL is false, IS NULL / IS NOT NULL are explicit nodes.

Three evaluation paths exist: :meth:`Predicate.matches` walks the tree per
row (virtual dispatch per node), :meth:`Predicate.compile` returns a
fused closure the executor calls once per candidate row — And/Or collapse
their operands into a single function, so the hot filter loop pays no
isinstance checks or method lookups — and :meth:`Predicate.compile_vector`
returns a closure evaluating the whole tree over a *column segment* at
once: leaves ask the segment view for a boolean mask (numpy ufuncs,
dictionary-code probes), And/Or/Not combine masks with ``&``/``|``/``~``.
The vector path reproduces the row path's NULL semantics exactly: a NULL
never satisfies a comparison, so ``Not`` over a comparison is true on
NULL rows in both paths.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Optional, Sequence

RowMatcher = Callable[[dict], bool]

#: A vector matcher takes a segment view (duck-typed: the contract is the
#: mask-producing methods of :class:`repro.metadb.columnar.SegmentView`)
#: and returns a boolean mask over the segment's rows.
VectorMatcher = Callable[[Any], Any]


class Predicate:
    """Base class; subclasses implement :meth:`matches` and :meth:`compile`."""

    def matches(self, row: dict[str, Any]) -> bool:
        raise NotImplementedError

    def compile(self) -> RowMatcher:
        """Return a ``row -> bool`` closure equivalent to :meth:`matches`."""
        raise NotImplementedError

    def compile_vector(self) -> VectorMatcher:
        """Return a ``segment_view -> bool_mask`` closure equivalent to
        calling :meth:`matches` on every row of the segment."""
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "And":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Or":
        return Or([self, other])

    def __invert__(self) -> "Not":
        return Not(self)

    def columns(self) -> set[str]:
        """All column names the predicate mentions."""
        raise NotImplementedError


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Predicate):
    """``column OP literal`` comparison."""

    column: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def matches(self, row: dict[str, Any]) -> bool:
        actual = row.get(self.column)
        if actual is None or self.value is None:
            return False
        try:
            return _OPS[self.op](actual, self.value)
        except TypeError:
            return False

    def compile(self) -> RowMatcher:
        column, value = self.column, self.value
        if value is None:
            return lambda row: False
        if self.op == "=":
            def match_eq(row: dict) -> bool:
                actual = row.get(column)
                return actual is not None and actual == value
            return match_eq
        if self.op == "!=":
            def match_ne(row: dict) -> bool:
                actual = row.get(column)
                return actual is not None and actual != value
            return match_ne
        op = _OPS[self.op]

        def match(row: dict) -> bool:
            actual = row.get(column)
            if actual is None:
                return False
            try:
                return op(actual, value)
            except TypeError:
                return False
        return match

    def compile_vector(self) -> VectorMatcher:
        column, op, value = self.column, self.op, self.value
        return lambda view: view.compare(column, op, value)

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class Between(Predicate):
    """``column BETWEEN low AND high`` (inclusive on both ends)."""

    column: str
    low: Any
    high: Any

    def matches(self, row: dict[str, Any]) -> bool:
        actual = row.get(self.column)
        if actual is None:
            return False
        try:
            return self.low <= actual <= self.high
        except TypeError:
            return False

    def compile(self) -> RowMatcher:
        column, low, high = self.column, self.low, self.high

        def match(row: dict) -> bool:
            actual = row.get(column)
            if actual is None:
                return False
            try:
                return low <= actual <= high
            except TypeError:
                return False
        return match

    def compile_vector(self) -> VectorMatcher:
        column, low, high = self.column, self.low, self.high
        return lambda view: view.compare(column, ">=", low) & view.compare(
            column, "<=", high
        )

    def columns(self) -> set[str]:
        return {self.column}


class In(Predicate):
    """``column IN (v1, v2, ...)``."""

    def __init__(self, column: str, values: Iterable[Any]):
        self.column = column
        self.values = frozenset(values)

    def matches(self, row: dict[str, Any]) -> bool:
        actual = row.get(self.column)
        return actual is not None and actual in self.values

    def compile(self) -> RowMatcher:
        column, values = self.column, self.values

        def match(row: dict) -> bool:
            actual = row.get(column)
            return actual is not None and actual in values
        return match

    def compile_vector(self) -> VectorMatcher:
        column, values = self.column, self.values
        return lambda view: view.isin(column, values)

    def columns(self) -> set[str]:
        return {self.column}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"In({self.column!r}, {sorted(map(repr, self.values))})"


class Like(Predicate):
    """SQL LIKE with ``%`` (any run) and ``_`` (single char) wildcards."""

    def __init__(self, column: str, pattern: str):
        self.column = column
        self.pattern = pattern
        parts = []
        for char in pattern:
            if char == "%":
                parts.append(".*")
            elif char == "_":
                parts.append(".")
            else:
                parts.append(re.escape(char))
        # fullmatch, not a $-anchored match: "$" accepts a trailing newline
        # ("abc\n" would match LIKE 'abc'), which SQL LIKE does not.
        self._regex = re.compile("".join(parts), re.DOTALL)

    def matches(self, row: dict[str, Any]) -> bool:
        actual = row.get(self.column)
        return isinstance(actual, str) and bool(self._regex.fullmatch(actual))

    def compile(self) -> RowMatcher:
        column, fullmatch = self.column, self._regex.fullmatch

        def match(row: dict) -> bool:
            actual = row.get(column)
            return isinstance(actual, str) and fullmatch(actual) is not None
        return match

    def compile_vector(self) -> VectorMatcher:
        column, regex = self.column, self._regex
        return lambda view: view.like(column, regex)

    def columns(self) -> set[str]:
        return {self.column}


@dataclass(frozen=True)
class IsNull(Predicate):
    column: str
    negated: bool = False

    def matches(self, row: dict[str, Any]) -> bool:
        is_null = row.get(self.column) is None
        return not is_null if self.negated else is_null

    def compile(self) -> RowMatcher:
        column = self.column
        if self.negated:
            return lambda row: row.get(column) is not None
        return lambda row: row.get(column) is None

    def compile_vector(self) -> VectorMatcher:
        column, negated = self.column, self.negated
        return lambda view: view.is_null(column, negated)

    def columns(self) -> set[str]:
        return {self.column}


class And(Predicate):
    def __init__(self, operands: Sequence[Predicate]):
        self.operands = list(operands)

    def matches(self, row: dict[str, Any]) -> bool:
        return all(operand.matches(row) for operand in self.operands)

    def compile(self) -> RowMatcher:
        parts = tuple(operand.compile() for operand in self.operands)
        if not parts:
            return lambda row: True
        if len(parts) == 1:
            return parts[0]
        if len(parts) == 2:
            first, second = parts
            return lambda row: first(row) and second(row)

        def match(row: dict) -> bool:
            for part in parts:
                if not part(row):
                    return False
            return True
        return match

    def compile_vector(self) -> VectorMatcher:
        parts = tuple(operand.compile_vector() for operand in self.operands)
        if not parts:
            return lambda view: view.ones()
        if len(parts) == 1:
            return parts[0]

        def match(view: Any) -> Any:
            mask = parts[0](view)
            for part in parts[1:]:
                mask = mask & part(view)
            return mask
        return match

    def columns(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns()
        return result


class Or(Predicate):
    def __init__(self, operands: Sequence[Predicate]):
        self.operands = list(operands)

    def matches(self, row: dict[str, Any]) -> bool:
        return any(operand.matches(row) for operand in self.operands)

    def compile(self) -> RowMatcher:
        parts = tuple(operand.compile() for operand in self.operands)
        if not parts:
            return lambda row: False
        if len(parts) == 1:
            return parts[0]
        if len(parts) == 2:
            first, second = parts
            return lambda row: first(row) or second(row)

        def match(row: dict) -> bool:
            for part in parts:
                if part(row):
                    return True
            return False
        return match

    def compile_vector(self) -> VectorMatcher:
        parts = tuple(operand.compile_vector() for operand in self.operands)
        if not parts:
            return lambda view: view.zeros()
        if len(parts) == 1:
            return parts[0]

        def match(view: Any) -> Any:
            mask = parts[0](view)
            for part in parts[1:]:
                mask = mask | part(view)
            return mask
        return match

    def columns(self) -> set[str]:
        result: set[str] = set()
        for operand in self.operands:
            result |= operand.columns()
        return result


class Not(Predicate):
    def __init__(self, operand: Predicate):
        self.operand = operand

    def matches(self, row: dict[str, Any]) -> bool:
        return not self.operand.matches(row)

    def compile(self) -> RowMatcher:
        inner = self.operand.compile()
        return lambda row: not inner(row)

    def compile_vector(self) -> VectorMatcher:
        inner = self.operand.compile_vector()
        return lambda view: ~inner(view)

    def columns(self) -> set[str]:
        return self.operand.columns()


class TruePredicate(Predicate):
    """Matches every row; the implicit WHERE of an unfiltered scan."""

    def matches(self, row: dict[str, Any]) -> bool:
        return True

    def compile(self) -> RowMatcher:
        return lambda row: True

    def compile_vector(self) -> VectorMatcher:
        return lambda view: view.ones()

    def columns(self) -> set[str]:
        return set()


ALWAYS = TruePredicate()


def conjuncts(predicate: Optional[Predicate]) -> list[Predicate]:
    """Flatten nested ANDs into a conjunct list (for the planner)."""
    if predicate is None or isinstance(predicate, TruePredicate):
        return []
    if isinstance(predicate, And):
        flattened: list[Predicate] = []
        for operand in predicate.operands:
            flattened.extend(conjuncts(operand))
        return flattened
    return [predicate]


def equality_on(predicate: Optional[Predicate], column: str) -> Optional[Any]:
    """If the conjuncts pin ``column`` to a single value, return it."""
    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, Comparison) and conjunct.op == "=" and conjunct.column == column:
            return conjunct.value
    return None


def in_list_on(predicate: Optional[Predicate], column: str) -> Optional[frozenset]:
    """If a conjunct restricts ``column`` to an IN-list, return its values."""
    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, In) and conjunct.column == column:
            return conjunct.values
    return None


def range_on(predicate: Optional[Predicate], column: str) -> Optional[tuple]:
    """Extract (low, high, low_incl, high_incl) bounds for ``column``.

    Returns None when no conjunct constrains the column's range.
    """
    low: Any = None
    high: Any = None
    low_inclusive = True
    high_inclusive = True
    found = False
    for conjunct in conjuncts(predicate):
        if isinstance(conjunct, Between) and conjunct.column == column:
            found = True
            if low is None or conjunct.low > low:
                low, low_inclusive = conjunct.low, True
            if high is None or conjunct.high < high:
                high, high_inclusive = conjunct.high, True
        elif isinstance(conjunct, Comparison) and conjunct.column == column:
            if conjunct.op in (">", ">="):
                found = True
                if low is None or conjunct.value >= low:
                    low, low_inclusive = conjunct.value, conjunct.op == ">="
            elif conjunct.op in ("<", "<="):
                found = True
                if high is None or conjunct.value <= high:
                    high, high_inclusive = conjunct.value, conjunct.op == "<="
            elif conjunct.op == "=":
                return (conjunct.value, conjunct.value, True, True)
    if not found:
        return None
    return (low, high, low_inclusive, high_inclusive)
