"""Secondary index structures.

Two flavours back the query planner:

* :class:`HashIndex` — O(1) equality probes; used for primary keys and
  unique constraints.
* :class:`OrderedIndex` — a sorted (key, rowid) list with bisect-based
  range scans; used for range predicates and ORDER BY shortcuts.

Both map index keys to sets of internal rowids.  ``None`` keys are kept in
a side bucket so that IS NULL probes stay cheap while range scans skip
nulls (SQL semantics).
"""

from __future__ import annotations

import bisect
from typing import Any, Hashable, Iterable, Iterator, Optional, Sequence

from .errors import IntegrityError


class HashIndex:
    """Equality index over one or more columns."""

    def __init__(self, columns: Sequence[str], unique: bool = False, name: str = ""):
        self.columns = tuple(columns)
        self.unique = unique
        self.name = name or ("uq_" if unique else "ix_") + "_".join(columns)
        self._map: dict[Hashable, set[int]] = {}
        self._nulls: set[int] = set()

    def key_of(self, row: dict[str, Any]) -> Optional[Hashable]:
        values = tuple(row.get(column) for column in self.columns)
        if any(value is None for value in values):
            return None
        return values if len(values) > 1 else values[0]

    def insert(self, rowid: int, row: dict[str, Any]) -> None:
        key = self.key_of(row)
        if key is None:
            self._nulls.add(rowid)
            return
        bucket = self._map.setdefault(key, set())
        if self.unique and bucket:
            raise IntegrityError(
                f"unique violation on ({', '.join(self.columns)}) = {key!r}"
            )
        bucket.add(rowid)

    def remove(self, rowid: int, row: dict[str, Any]) -> None:
        key = self.key_of(row)
        if key is None:
            self._nulls.discard(rowid)
            return
        bucket = self._map.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._map[key]

    def probe(self, key: Hashable) -> set[int]:
        return set(self._map.get(key, ()))

    def probe_many(self, keys: Iterable[Hashable]) -> Iterator[int]:
        """Stream rowids for several keys (IN-list multi-probe).

        A single-column index maps each rowid to exactly one key, so
        chaining buckets never yields duplicates.
        """
        get = self._map.get
        for key in keys:
            bucket = get(key)
            if bucket:
                yield from bucket

    def distinct_keys(self) -> int:
        """Number of distinct non-null keys (planner selectivity input)."""
        return len(self._map)

    def nulls(self) -> set[int]:
        return set(self._nulls)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._map.values()) + len(self._nulls)


class OrderedIndex:
    """Single-column ordered index supporting range scans."""

    def __init__(self, column: str, name: str = ""):
        self.column = column
        self.name = name or f"ox_{column}"
        self._keys: list[Any] = []
        self._rowids: list[int] = []
        self._nulls: set[int] = set()

    def insert(self, rowid: int, row: dict[str, Any]) -> None:
        key = row.get(self.column)
        if key is None:
            self._nulls.add(rowid)
            return
        position = bisect.bisect_right(self._keys, key)
        self._keys.insert(position, key)
        self._rowids.insert(position, rowid)

    def remove(self, rowid: int, row: dict[str, Any]) -> None:
        key = row.get(self.column)
        if key is None:
            self._nulls.discard(rowid)
            return
        left = bisect.bisect_left(self._keys, key)
        right = bisect.bisect_right(self._keys, key)
        for position in range(left, right):
            if self._rowids[position] == rowid:
                del self._keys[position]
                del self._rowids[position]
                return

    def _bounds(
        self, low: Any, high: Any, low_inclusive: bool, high_inclusive: bool
    ) -> tuple[int, int]:
        if low is None:
            start = 0
        elif low_inclusive:
            start = bisect.bisect_left(self._keys, low)
        else:
            start = bisect.bisect_right(self._keys, low)
        if high is None:
            stop = len(self._keys)
        elif high_inclusive:
            stop = bisect.bisect_right(self._keys, high)
        else:
            stop = bisect.bisect_left(self._keys, high)
        return start, stop

    def range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
        descending: bool = False,
    ) -> Iterator[int]:
        """Yield rowids whose key falls in [low, high] in key order.

        ``descending=True`` walks the same positions backwards without
        materialising the forward scan first.
        """
        start, stop = self._bounds(low, high, low_inclusive, high_inclusive)
        positions = range(stop - 1, start - 1, -1) if descending else range(start, stop)
        for position in positions:
            yield self._rowids[position]

    def count_range(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = True,
    ) -> int:
        """O(log n) count of keys in [low, high] (planner cardinality)."""
        start, stop = self._bounds(low, high, low_inclusive, high_inclusive)
        return max(0, stop - start)

    def scan(self, descending: bool = False) -> Iterator[int]:
        """Yield all non-null rowids in key order."""
        return reversed(self._rowids) if descending else iter(self._rowids)

    def nulls(self) -> set[int]:
        return set(self._nulls)

    def __len__(self) -> int:
        return len(self._rowids) + len(self._nulls)
