"""Columnar segments and the vectorized executor (ROADMAP item 3).

A :class:`ColumnarStore` is a column-oriented *copy* of one table's row
store: per column one typed numpy array plus a null bitmap, logically
split into fixed-size segments (:data:`SEGMENT_ROWS`) with a per-segment
zone map (min/max/null count).  Low-cardinality TEXT columns are
dictionary-encoded against a *sorted* dictionary, so range comparisons
and LIKE evaluate in code space (the regex runs once per distinct value,
not once per row).

Consistency model — the row store stays the single source of truth:

* every write goes through the ordinary row/WAL/journal path unchanged;
* each mutation bumps the table's mutation epoch;
* the columnar copy rebuilds lazily from the row store on the first
  columnar scan after the epoch moved (never on the write path).

Arrays are built in the row store's *iteration order* (and keep a
parallel rowid array), so an unordered columnar scan yields rows in
exactly the order a row-at-a-time full scan would — sharded scatter
merges and byte-identical page rendering rely on that.

The vectorized path mirrors the row path's SQL-approximated semantics
bit for bit: NULL never satisfies a comparison, mixed-type comparisons
are false, ``Not`` over a comparison is true on NULL rows, LIKE only
matches strings.  Anything the vector aggregate engine cannot prove it
reproduces exactly (object columns, multi-column GROUP BY, summing
strings) falls back to the row-path aggregation code over the already
vector-filtered rows.
"""

from __future__ import annotations

import bisect
import os
from typing import TYPE_CHECKING, Any, Iterator, Optional, Sequence

try:  # pragma: no cover - numpy is a baked-in dependency
    import numpy as np
except ImportError:  # pragma: no cover
    np = None

from .predicate import (
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Predicate,
    TruePredicate,
    conjuncts,
)
from .types import ColumnType

if TYPE_CHECKING:  # pragma: no cover
    from .storage import Table

#: Rows per segment: the pruning granule and the unit of mask evaluation.
SEGMENT_ROWS = 4096

#: Dictionary-encode a TEXT column when it has at most this many distinct
#: values and the dictionary is at most a quarter of the row count.
DICT_MAX_DISTINCT = 4096


def available() -> bool:
    """True when numpy is importable (the columnar tier's only dependency)."""
    return np is not None


_enabled_cache: tuple[Optional[str], bool] = (None, True)


def enabled() -> bool:
    """Kill-switch: ``HEDC_COLUMNAR=0`` disables the columnar access path
    globally (tables keep row storage only; plans fall back to the
    row-at-a-time paths).  The parse is cached against the raw variable
    so runtime toggles are still observed without re-parsing per plan."""
    global _enabled_cache
    raw = os.environ.get("HEDC_COLUMNAR")
    cached_raw, cached_value = _enabled_cache
    if raw == cached_raw:
        return cached_value
    value = (raw or "1").lower() not in ("0", "off", "false")
    _enabled_cache = (raw, value)
    return value


_NULL_REJECTING = (Comparison, Between, In, Like)
_NUMERIC_KINDS = ("f8", "i8", "bool")


class _ColumnData:
    """One column's typed array, null bitmap and optional dictionary.

    ``kind`` is one of ``f8`` (REAL/TIMESTAMP), ``i8`` (INTEGER),
    ``bool`` (BOOLEAN), ``dict`` (dictionary-encoded TEXT: ``values``
    holds int32 codes into the sorted ``dict_values``, -1 for NULL) or
    ``obj`` (everything else, python objects with a typed sentinel at
    NULL positions — the null bitmap, not the sentinel, is authoritative).
    """

    __slots__ = ("kind", "values", "nulls", "dict_values", "code_map")

    def __init__(self, kind: str, values, nulls, dict_values=None, code_map=None):
        self.kind = kind
        self.values = values
        self.nulls = nulls
        self.dict_values = dict_values      # sorted list of distinct strings
        self.code_map = code_map            # value -> code


def _build_column(column_type: ColumnType, raw: list) -> _ColumnData:
    n = len(raw)
    nulls = np.fromiter((value is None for value in raw), np.bool_, n)
    if column_type in (ColumnType.REAL, ColumnType.TIMESTAMP):
        values = np.fromiter(
            (0.0 if value is None else value for value in raw), np.float64, n
        )
        return _ColumnData("f8", values, nulls)
    if column_type is ColumnType.INTEGER:
        try:
            values = np.fromiter(
                (0 if value is None else value for value in raw), np.int64, n
            )
        except OverflowError:
            return _ColumnData(
                "obj", np.array([0 if v is None else v for v in raw], dtype=object),
                nulls,
            )
        return _ColumnData("i8", values, nulls)
    if column_type is ColumnType.BOOLEAN:
        values = np.fromiter((bool(value) for value in raw), np.bool_, n)
        return _ColumnData("bool", values, nulls)
    if column_type is ColumnType.TEXT:
        distinct = sorted({value for value in raw if value is not None})
        if distinct and len(distinct) <= DICT_MAX_DISTINCT and (
            len(distinct) <= max(16, n // 4)
        ):
            code_map = {value: code for code, value in enumerate(distinct)}
            codes = np.fromiter(
                (-1 if value is None else code_map[value] for value in raw),
                np.int32, n,
            )
            return _ColumnData("dict", codes, nulls, distinct, code_map)
        return _ColumnData(
            "obj", np.array(["" if v is None else v for v in raw], dtype=object),
            nulls,
        )
    # BLOB and anything future: python objects, bytes sentinel.
    return _ColumnData(
        "obj", np.array([b"" if v is None else v for v in raw], dtype=object),
        nulls,
    )


class SegmentView:
    """Mask-producing window over one segment — the evaluation target of
    :meth:`Predicate.compile_vector`.

    Every method returns a boolean mask of the segment's length in which
    NULL rows are always False, reproducing the row path's semantics
    (``matches`` returns False on NULL, and mixed-type comparisons are
    False for every row of the — homogeneously typed — column).
    """

    __slots__ = ("_store", "_start", "_stop")

    def __init__(self, store: "ColumnarStore", start: int, stop: int):
        self._store = store
        self._start = start
        self._stop = stop

    def ones(self):
        return np.ones(self._stop - self._start, np.bool_)

    def zeros(self):
        return np.zeros(self._stop - self._start, np.bool_)

    def _column(self, name: str) -> Optional[_ColumnData]:
        return self._store._columns.get(name)

    # -- leaf evaluators ---------------------------------------------------

    def compare(self, name: str, op: str, value: Any):
        column = self._column(name)
        if column is None or value is None:
            return self.zeros()
        if column.kind == "dict":
            return self._compare_dict(column, op, value)
        values = column.values[self._start:self._stop]
        nulls = column.nulls[self._start:self._stop]
        try:
            if op == "=":
                mask = values == value
            elif op == "!=":
                mask = values != value
            elif op == "<":
                mask = values < value
            elif op == "<=":
                mask = values <= value
            elif op == ">":
                mask = values > value
            else:
                mask = values >= value
        except TypeError:
            return self.zeros()
        mask = np.asarray(mask)
        if mask.shape != values.shape:
            # numpy collapsed an incomparable pair to a scalar truth value;
            # the row path would have returned False per row.
            return self.zeros()
        if mask.dtype is not np.dtype(np.bool_):
            mask = mask.astype(np.bool_)
        return mask & ~nulls

    def _compare_dict(self, column: _ColumnData, op: str, value: Any):
        codes = column.values[self._start:self._stop]
        if op in ("=", "!="):
            code = column.code_map.get(value) if isinstance(value, str) else None
            if op == "=":
                return codes == code if code is not None else self.zeros()
            if code is None:
                return codes >= 0
            return (codes >= 0) & (codes != code)
        try:
            if op == ">=":
                return codes >= bisect.bisect_left(column.dict_values, value)
            if op == ">":
                return codes >= bisect.bisect_right(column.dict_values, value)
            if op == "<":
                return (codes >= 0) & (
                    codes < bisect.bisect_left(column.dict_values, value)
                )
            return (codes >= 0) & (
                codes < bisect.bisect_right(column.dict_values, value)
            )
        except TypeError:
            return self.zeros()

    def isin(self, name: str, values) -> Any:
        column = self._column(name)
        if column is None:
            return self.zeros()
        if column.kind == "dict":
            codes = column.values[self._start:self._stop]
            present = [
                column.code_map[value]
                for value in values
                if isinstance(value, str) and value in column.code_map
            ]
            if not present:
                return self.zeros()
            if len(present) == 1:
                return codes == present[0]
            return np.isin(codes, present)
        # OR of equality masks: exactly the row path's per-value python
        # equality, robust to mixed-type IN lists.
        mask = self.zeros()
        for value in values:
            if value is None:
                continue
            mask = mask | self.compare(name, "=", value)
        return mask

    def like(self, name: str, regex) -> Any:
        column = self._column(name)
        if column is None or column.kind in ("f8", "i8", "bool"):
            # Non-string values never match LIKE in the row path.
            return self.zeros()
        nulls = column.nulls[self._start:self._stop]
        fullmatch = regex.fullmatch
        if column.kind == "dict":
            lut = np.fromiter(
                (fullmatch(value) is not None for value in column.dict_values),
                np.bool_, len(column.dict_values),
            )
            lut = np.append(lut, False)  # code -1 (NULL) indexes the False tail
            return lut[column.values[self._start:self._stop]] & ~nulls
        values = column.values[self._start:self._stop]
        mask = np.fromiter(
            (isinstance(value, str) and fullmatch(value) is not None
             for value in values),
            np.bool_, len(values),
        )
        return mask & ~nulls

    def is_null(self, name: str, negated: bool) -> Any:
        column = self._column(name)
        if column is None:
            # Absent column reads as NULL in every row (row.get -> None).
            return self.zeros() if negated else self.ones()
        nulls = column.nulls[self._start:self._stop]
        return ~nulls if negated else nulls.copy()


def _zone_of(column: _ColumnData, start: int, stop: int) -> tuple:
    """(min, max, null_count) for one segment of one column, in *value*
    space (dictionary codes are decoded); min/max are None when the
    segment is all-NULL or its values do not order."""
    nulls = column.nulls[start:stop]
    null_count = int(nulls.sum())
    if null_count == stop - start:
        return (None, None, null_count)
    if column.kind == "dict":
        codes = column.values[start:stop]
        valid = codes[codes >= 0]
        return (
            column.dict_values[int(valid.min())],
            column.dict_values[int(valid.max())],
            null_count,
        )
    if column.kind == "obj":
        values = [
            value
            for value, is_null in zip(column.values[start:stop], nulls)
            if not is_null
        ]
        try:
            return (min(values), max(values), null_count)
        except TypeError:
            return (None, None, null_count)
    values = column.values[start:stop]
    if null_count:
        values = values[~nulls]
    return (values.min().item(), values.max().item(), null_count)


def _prune_checks(where: Optional[Predicate]) -> list:
    """One ``fn(zone, segment_rows) -> bool`` per top-level conjunct that
    can rule a whole segment out against its zone map.  Only top-level
    AND conjuncts are sound to prune on; anything under OR/NOT is left to
    mask evaluation."""

    def excluded(check):
        def prune(zone: tuple, segment_rows: int) -> bool:
            zmin, zmax, null_count = zone
            if null_count == segment_rows:
                return True  # null-rejecting conjunct, all-NULL segment
            if zmin is None:
                return False
            try:
                return check(zmin, zmax)
            except TypeError:
                return False
        return prune

    checks: list[tuple[str, Any]] = []
    for conjunct in conjuncts(where):
        if isinstance(conjunct, Comparison):
            value, op = conjunct.value, conjunct.op
            if value is None:
                checks.append((conjunct.column, lambda zone, rows: True))
            elif op == "=":
                checks.append((conjunct.column, excluded(
                    lambda zmin, zmax, v=value: v < zmin or v > zmax)))
            elif op in (">", ">="):
                strict = op == ">"
                checks.append((conjunct.column, excluded(
                    lambda zmin, zmax, v=value, s=strict:
                        zmax < v or (s and zmax == v))))
            elif op in ("<", "<="):
                strict = op == "<"
                checks.append((conjunct.column, excluded(
                    lambda zmin, zmax, v=value, s=strict:
                        zmin > v or (s and zmin == v))))
            else:  # != : only the all-NULL segment can be skipped
                checks.append((conjunct.column, excluded(
                    lambda zmin, zmax: False)))
        elif isinstance(conjunct, Between):
            low, high = conjunct.low, conjunct.high
            if low is None or high is None:
                # The row path evaluates `low <= x <= high` with a None
                # bound as a TypeError -> False for every row.
                checks.append((conjunct.column, lambda zone, rows: True))
            else:
                checks.append((conjunct.column, excluded(
                    lambda zmin, zmax, lo=low, hi=high: zmax < lo or zmin > hi)))
        elif isinstance(conjunct, In):
            values = [value for value in conjunct.values if value is not None]

            def in_excluded(zmin, zmax, vs=tuple(values)):
                for value in vs:
                    if not (value < zmin or value > zmax):
                        return False
                return True

            checks.append((conjunct.column, excluded(in_excluded)))
        elif isinstance(conjunct, Like):
            checks.append((conjunct.column, excluded(lambda zmin, zmax: False)))
        elif isinstance(conjunct, IsNull):
            if conjunct.negated:
                checks.append((conjunct.column, lambda zone, rows:
                               zone[2] == rows))
            else:
                checks.append((conjunct.column, lambda zone, rows:
                               zone[2] == 0))
    return checks


class ColumnarStore:
    """The columnar copy of one :class:`~repro.metadb.storage.Table`."""

    def __init__(self, table: "Table"):
        self._table = table
        self._built_epoch = -1
        self._rowids = None
        self._columns: dict[str, _ColumnData] = {}
        self._segments: list[tuple[int, int]] = []
        self._zones: dict[str, list[tuple]] = {}
        self.rebuilds = 0
        #: Statistics of the most recent scan (segments scanned/pruned,
        #: rows matched, whether the scan triggered a rebuild) — read by
        #: the database layer for ``metadb.columnar.*`` metrics.
        self.last_scan: Optional[dict[str, Any]] = None

    # -- lifecycle ---------------------------------------------------------

    def ensure_fresh(self) -> bool:
        """Rebuild from the row store if any mutation landed since the
        last build; returns True when a rebuild happened."""
        epoch = self._table.mutation_epoch
        if epoch == self._built_epoch:
            return False
        self._rebuild()
        self._built_epoch = epoch
        self.rebuilds += 1
        return True

    def _rebuild(self) -> None:
        table = self._table
        items = list(table._rows.items())  # row-store iteration order
        n = len(items)
        self._rowids = np.fromiter((rowid for rowid, _row in items), np.int64, n)
        self._segments = [
            (start, min(start + SEGMENT_ROWS, n))
            for start in range(0, n, SEGMENT_ROWS)
        ]
        schema = table.schema
        self._columns = {}
        self._zones = {}
        for name in schema.column_order:
            raw = [row.get(name) for _rowid, row in items]
            column = _build_column(schema.columns[name].type, raw)
            self._columns[name] = column
            self._zones[name] = [
                _zone_of(column, start, stop) for start, stop in self._segments
            ]

    @property
    def n_segments(self) -> int:
        return len(self._segments)

    # -- scanning ----------------------------------------------------------

    def _zone(self, name: str, segment: int, segment_rows: int) -> tuple:
        zones = self._zones.get(name)
        if zones is None:
            return (None, None, segment_rows)  # absent column: all NULL
        return zones[segment]

    def prune_counts(self, where: Optional[Predicate]) -> tuple[int, int]:
        """(segments_pruned, segments_total) the zone maps would give for
        ``where`` — the EXPLAIN view of pruning, no data touched."""
        rebuilt = self.ensure_fresh()
        if rebuilt:
            pass  # freshness is a side effect EXPLAIN is allowed to have
        trivial = where is None or isinstance(where, TruePredicate)
        total = len(self._segments)
        if trivial or total == 0:
            return (0, total)
        checks = _prune_checks(where)
        if not checks:
            return (0, total)
        pruned = 0
        for segment, (start, stop) in enumerate(self._segments):
            rows = stop - start
            if any(check(self._zone(name, segment, rows), rows)
                   for name, check in checks):
                pruned += 1
        return (pruned, total)

    def scan_positions(self, where: Optional[Predicate]):
        """Positions (into the store's build order) of rows matching
        ``where``: zone maps prune whole segments, surviving segments are
        mask-evaluated with the compiled vector predicate."""
        rebuilt = self.ensure_fresh()
        trivial = where is None or isinstance(where, TruePredicate)
        checks = () if trivial else _prune_checks(where)
        vector = None if trivial else where.compile_vector()
        parts = []
        scanned = pruned = 0
        for segment, (start, stop) in enumerate(self._segments):
            rows = stop - start
            if checks and any(check(self._zone(name, segment, rows), rows)
                              for name, check in checks):
                pruned += 1
                continue
            scanned += 1
            if vector is None:
                parts.append(np.arange(start, stop, dtype=np.int64))
            else:
                mask = vector(SegmentView(self, start, stop))
                hits = np.flatnonzero(mask)
                if len(hits):
                    parts.append(hits + start)
        if parts:
            positions = parts[0] if len(parts) == 1 else np.concatenate(parts)
        else:
            positions = np.empty(0, np.int64)
        self.last_scan = {
            "segments": len(self._segments),
            "segments_scanned": scanned,
            "segments_pruned": pruned,
            "rows_matched": int(len(positions)),
            "rebuilt": rebuilt,
        }
        return positions

    def gathered_rows(self, positions) -> Iterator[dict[str, Any]]:
        """Stream the matching row dicts from the row store, in scan
        (= row-store iteration) order."""
        row = self._table.row
        for rowid in self._rowids[positions].tolist():
            yield row(rowid)

    # -- vectorized aggregation -------------------------------------------

    def vector_aggregates(self, select, positions) -> Optional[list[dict[str, Any]]]:
        """Aggregate ``positions`` without materialising rows.

        Returns None when exact row-path equivalence cannot be
        guaranteed cheaply (object columns, dictionary columns under
        sum/avg, multi-column GROUP BY) — the caller then falls back to
        row-path aggregation over the vector-filtered rows.
        """
        aggregates = select.aggregates
        for aggregate in aggregates:
            if aggregate.func == "count":
                continue
            column = self._columns.get(aggregate.column)
            if column is None:
                continue  # absent column: NULL aggregate, handled below
            if column.kind == "obj":
                return None
            if column.kind == "dict" and aggregate.func in ("sum", "avg"):
                return None  # row path raises summing strings; fall back
        if not select.group_by:
            out = {
                aggregate.alias: self._aggregate_slice(aggregate, positions)
                for aggregate in aggregates
            }
            return [out]
        if len(select.group_by) != 1:
            return None
        group_name = select.group_by[0]
        group_column = self._columns.get(group_name)
        if group_column is not None and group_column.kind not in (
            "dict", "i8", "bool"
        ):
            return None  # float keys: NaN grouping is row-path-idiosyncratic
        return self._grouped(select, group_name, group_column, positions)

    def _aggregate_slice(self, aggregate, positions) -> Any:
        column = self._columns.get(aggregate.column)
        if aggregate.func == "count":
            if aggregate.column == "*":
                return int(len(positions))
            if column is None:
                return 0
            return int((~column.nulls[positions]).sum())
        if column is None:
            return None
        valid = ~column.nulls[positions]
        n_valid = int(valid.sum())
        if n_valid == 0:
            return None
        values = column.values[positions][valid]
        if column.kind == "dict":
            # sorted dictionary: code order is lexicographic order
            if aggregate.func == "min":
                return column.dict_values[int(values.min())]
            return column.dict_values[int(values.max())]
        if aggregate.func == "sum":
            return values.sum().item()
        if aggregate.func == "avg":
            return values.sum().item() / n_valid
        if aggregate.func == "min":
            return values.min().item()
        return values.max().item()

    def _grouped(self, select, group_name, group_column,
                 positions) -> list[dict[str, Any]]:
        """Sort-based single-column grouping over codes/integers."""
        n = len(positions)
        if n == 0:
            return []
        if group_column is None:
            # Absent column: one group keyed NULL (row.get -> None).
            starts = [0]
            order = np.arange(n, dtype=np.int64)
            keys = [None]
        elif group_column.kind == "dict":
            codes = group_column.values[positions]
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            change = np.empty(n, np.bool_)
            change[0] = True
            np.not_equal(sorted_codes[1:], sorted_codes[:-1], out=change[1:])
            starts = np.flatnonzero(change).tolist()
            keys = [
                None if sorted_codes[start] < 0
                else group_column.dict_values[int(sorted_codes[start])]
                for start in starts
            ]
        else:
            values = group_column.values[positions]
            nulls = group_column.nulls[positions]
            order = np.lexsort((values, nulls))
            sorted_values = values[order]
            sorted_nulls = nulls[order]
            change = np.empty(n, np.bool_)
            change[0] = True
            change[1:] = (sorted_values[1:] != sorted_values[:-1]) | (
                sorted_nulls[1:] != sorted_nulls[:-1]
            )
            starts = np.flatnonzero(change).tolist()
            keys = [
                None if sorted_nulls[start] else sorted_values[start].item()
                for start in starts
            ]
        ordered_positions = positions[order]
        stops = starts[1:] + [n]
        groups = []
        for key, start, stop in zip(keys, starts, stops):
            slice_positions = ordered_positions[start:stop]
            out = {group_name: key}
            for aggregate in select.aggregates:
                out[aggregate.alias] = self._aggregate_slice(
                    aggregate, slice_positions
                )
            groups.append((key, out))
        # Match the row path's deterministic group order exactly.
        groups.sort(key=lambda item: (repr(item[0]),))
        return [out for _key, out in groups]
