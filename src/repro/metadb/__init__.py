"""An embedded relational database for HEDC metadata.

Plays the role Oracle 8.1.7 plays in the paper: it stores the metadata
(never the bulk science data), offers indexes and a declarative query
interface, and sits behind the DM's database adapter.
"""

from .columnar import SEGMENT_ROWS, ColumnarStore
from .database import Database, DatabaseStats
from .errors import (
    ClosedError,
    DatabaseError,
    IntegrityError,
    LockTimeout,
    QueryError,
    SchemaError,
    TransactionError,
)
from .pool import Connection, ConnectionPool, PoolSet
from .replication import ReplicatedDatabase, clone_database
from .predicate import (
    ALWAYS,
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
    Predicate,
)
from .query import Aggregate, Delete, Explain, Insert, Join, Plan, Select, Update
from .schema import Column, ForeignKey, TableSchema
from .storage import TableStats
from .sql import parse, to_sql
from .types import ColumnType, coerce

__all__ = [
    "ALWAYS",
    "Aggregate",
    "And",
    "Between",
    "ClosedError",
    "Column",
    "ColumnType",
    "ColumnarStore",
    "SEGMENT_ROWS",
    "Comparison",
    "Connection",
    "ConnectionPool",
    "Database",
    "DatabaseError",
    "DatabaseStats",
    "Delete",
    "Explain",
    "ForeignKey",
    "In",
    "Insert",
    "IntegrityError",
    "IsNull",
    "Join",
    "Like",
    "LockTimeout",
    "Not",
    "Or",
    "Plan",
    "PoolSet",
    "Predicate",
    "QueryError",
    "ReplicatedDatabase",
    "SchemaError",
    "Select",
    "TableSchema",
    "TableStats",
    "TransactionError",
    "Update",
    "clone_database",
    "coerce",
    "parse",
    "to_sql",
]
