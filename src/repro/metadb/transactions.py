"""Undo-log transactions.

The database runs every mutation inside a transaction.  Autocommit wraps a
single statement; explicit transactions group statements (the DM uses them
to make an HLE plus its analyses plus their file references atomic —
paper §4.4).  Rollback replays the undo log in reverse.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from .errors import TransactionError


class TxState(enum.Enum):
    ACTIVE = "active"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled_back"


class Transaction:
    """One transaction's undo log and redo (WAL) records."""

    def __init__(self, tx_id: int):
        self.tx_id = tx_id
        self.state = TxState.ACTIVE
        self._undo: list[tuple] = []
        self.redo: list[dict[str, Any]] = []

    def _require_active(self) -> None:
        if self.state is not TxState.ACTIVE:
            raise TransactionError(f"transaction {self.tx_id} is {self.state.value}")

    # -- logging -----------------------------------------------------------

    def log_insert(self, table: str, rowid: int, row: dict[str, Any]) -> None:
        self._require_active()
        self._undo.append(("insert", table, rowid))
        self.redo.append({"op": "insert", "table": table, "rowid": rowid, "row": row})

    def log_update(
        self, table: str, rowid: int, old_row: dict[str, Any], changes: dict[str, Any]
    ) -> None:
        self._require_active()
        self._undo.append(("update", table, rowid, old_row))
        self.redo.append(
            {"op": "update", "table": table, "rowid": rowid, "changes": changes}
        )

    def log_delete(self, table: str, rowid: int, old_row: dict[str, Any]) -> None:
        self._require_active()
        self._undo.append(("delete", table, rowid, old_row))
        self.redo.append({"op": "delete", "table": table, "rowid": rowid})

    # -- lifecycle -----------------------------------------------------------

    def mark_committed(self) -> None:
        self._require_active()
        self.state = TxState.COMMITTED

    def undo_operations(self) -> list[tuple]:
        """Undo entries, most recent first."""
        return list(reversed(self._undo))

    def mark_rolled_back(self) -> None:
        self._require_active()
        self.state = TxState.ROLLED_BACK

    @property
    def mutation_count(self) -> int:
        return len(self._undo)
