"""The embedded database facade.

:class:`Database` binds schemas, storage, the query engine, transactions
and WAL persistence together and is what the DM's database adapter talks
to.  It is thread-safe (one big lock — adequate for the embedded setting)
and keeps the operation counters the evaluation harness reports
("120 HEDC database queries per second", paper §7.3).
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Any, Optional, Union

from ..obs import Observability, resolve as resolve_obs
from ..resil.faults import fire as fire_fault
from .errors import ClosedError, IntegrityError, SchemaError, TransactionError
from .query import Delete, Explain, Insert, Plan, Select, Update, execute_select, plan_select
from .schema import TableSchema
from .sql import Statement, parse, to_sql
from .storage import Table
from .transactions import Transaction, TxState
from .wal import Journal


class DatabaseStats:
    """Operation counters, reset-able between measurement windows."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.selects = 0
        self.inserts = 0
        self.updates = 0
        self.deletes = 0
        self.transactions_committed = 0
        self.transactions_rolled_back = 0
        self.rows_read = 0
        self.rows_written = 0

    @property
    def queries(self) -> int:
        """Total statements executed (the paper's 'database queries')."""
        return self.selects + self.inserts + self.updates + self.deletes

    def snapshot(self) -> dict[str, int]:
        return {
            "selects": self.selects,
            "inserts": self.inserts,
            "updates": self.updates,
            "deletes": self.deletes,
            "queries": self.queries,
            "transactions_committed": self.transactions_committed,
            "transactions_rolled_back": self.transactions_rolled_back,
            "rows_read": self.rows_read,
            "rows_written": self.rows_written,
        }


class Database:
    """An embedded relational database instance.

    ``path=None`` gives a volatile in-memory database; a path enables WAL
    persistence with snapshot/journal recovery on open.
    """

    def __init__(self, path: Optional[Union[str, Path]] = None, name: str = "metadb",
                 obs: Optional[Observability] = None, fault_scope: Optional[str] = None):
        self.name = name
        self._lock = threading.RLock()
        self._tables: dict[str, Table] = {}
        self._closed = False
        self._next_tx_id = 1
        self._sequences: dict[tuple[str, str], int] = {}
        self.stats = DatabaseStats()
        self.obs = resolve_obs(obs)
        # Per-access-path hit counters, cached so the hot SELECT path pays
        # one dict lookup instead of a registry lookup with fresh labels.
        self._plan_counters: dict[str, Any] = {}
        # metadb.columnar.* counters (segments scanned/pruned, rows
        # matched, rebuilds), same caching rationale.
        self._columnar_counters: dict[str, Any] = {}
        # Replication: listeners fired after each durable commit (the
        # log-shipping hook) and the highest LSN this copy has applied as
        # a follower.  The offset is recovered from ``__repl_ack__``
        # journal records so a crashed follower knows where to resume.
        self._commit_listeners: list[Any] = []
        self.replication_offset = 0
        self._journal: Optional[Journal] = None
        if path is not None:
            self._journal = Journal(Path(path), obs=self.obs, fault_scope=fault_scope)
            self._recover()

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            if self._journal is not None:
                self._journal.close()
            self._closed = True

    def _require_open(self) -> None:
        if self._closed:
            raise ClosedError(f"database {self.name!r} is closed")

    def _recover(self) -> None:
        snapshot = self._journal.load_snapshot()
        if snapshot is not None:
            for table_data in snapshot["tables"].values():
                schema = TableSchema.from_dict(table_data["schema"])
                table = Table(schema)
                for rowid, row in sorted(table_data["rows"].items()):
                    table.restore(rowid, row)
                self._tables[schema.name] = table
        replayed = 0
        for record in self._journal.replay():
            replayed += 1
            operation = record["op"]
            if operation == "__ddl__":
                if record["kind"] == "create_table":
                    schema = TableSchema.from_dict(record["schema"])
                    self._tables[schema.name] = Table(schema)
                elif record["kind"] == "drop_table":
                    self._tables.pop(record["table"], None)
                continue
            if operation == "__repl_ack__":
                # Follower bookkeeping: the batch journaled on this line
                # was shipped replication traffic; the ack is atomic with
                # the data it acknowledges.
                self.replication_offset = int(record.get("lsn", 0))
                continue
            table = self._tables[record["table"]]
            if operation == "insert":
                table.restore(record["rowid"], record["row"])
            elif operation == "update":
                table.update(record["rowid"], record["changes"])
            elif operation == "delete":
                table.delete(record["rowid"])
        if snapshot is not None or replayed:
            self.obs.event(
                "info", "metadb", "wal.recovered",
                f"database {self.name!r} recovered from WAL",
                db=self.name, snapshot=snapshot is not None,
                records_replayed=replayed, tables=len(self._tables),
            )

    def checkpoint(self) -> None:
        """Write a snapshot and truncate the journal."""
        with self._lock:
            self._require_open()
            if self._journal is None:
                return
            snapshot = {
                "tables": {
                    name: {
                        "schema": table.schema.to_dict(),
                        "rows": {rowid: table.row(rowid) for rowid in table.rowids()},
                    }
                    for name, table in self._tables.items()
                }
            }
            self._journal.checkpoint(snapshot)

    # -- DDL --------------------------------------------------------------------

    def create_table(self, schema: TableSchema) -> None:
        with self._lock:
            self._require_open()
            if schema.name in self._tables:
                raise SchemaError(f"table {schema.name!r} already exists")
            for fk in schema.foreign_keys:
                if fk.ref_table != schema.name and fk.ref_table not in self._tables:
                    raise SchemaError(
                        f"foreign key references unknown table {fk.ref_table!r}"
                    )
            self._tables[schema.name] = Table(schema)
            if self._journal is not None:
                self._journal.append_ddl(
                    {"kind": "create_table", "schema": schema.to_dict()}
                )

    def drop_table(self, name: str) -> None:
        with self._lock:
            self._require_open()
            if name not in self._tables:
                raise SchemaError(f"unknown table {name!r}")
            for other in self._tables.values():
                if other.name == name:
                    continue
                for fk in other.schema.foreign_keys:
                    if fk.ref_table == name:
                        raise SchemaError(
                            f"cannot drop {name!r}: referenced by {other.name!r}"
                        )
            del self._tables[name]
            if self._journal is not None:
                self._journal.append_ddl({"kind": "drop_table", "table": name})

    def table(self, name: str) -> Table:
        with self._lock:
            self._require_open()
            if name not in self._tables:
                raise SchemaError(f"unknown table {name!r}")
            return self._tables[name]

    def table_names(self) -> list[str]:
        with self._lock:
            self._require_open()
            return sorted(self._tables)

    def has_table(self, name: str) -> bool:
        with self._lock:
            return name in self._tables

    # -- id allocation --------------------------------------------------------------

    def allocate_id(self, table: str, column: str) -> int:
        """Atomically allocate the next integer id for ``table.column``.

        Safe across every component sharing this database instance (the
        multi-DM-node configuration of §7.3): the counter is seeded from
        the column maximum once, then incremented under the database
        lock.
        """
        with self._lock:
            self._require_open()
            key = (table, column)
            if key not in self._sequences:
                current_max = 0
                for row in self.table(table).rows():
                    value = row.get(column)
                    if isinstance(value, int) and value > current_max:
                        current_max = value
                self._sequences[key] = current_max
            self._sequences[key] += 1
            return self._sequences[key]

    # -- transactions -------------------------------------------------------------

    def begin(self) -> Transaction:
        with self._lock:
            self._require_open()
            tx = Transaction(self._next_tx_id)
            self._next_tx_id += 1
            return tx

    def commit(self, tx: Transaction) -> None:
        with self._lock:
            self._require_open()
            tx.mark_committed()
            if self._journal is not None and tx.redo:
                self._journal.append_transaction(tx.tx_id, tx.redo)
            self.stats.transactions_committed += 1
            if tx.redo and self._commit_listeners:
                for listener in self._commit_listeners:
                    listener(tx.tx_id, tx.redo)

    def add_commit_listener(self, listener: Any) -> None:
        """Register ``fn(tx_id, redo_records)`` called after each durable
        commit with a non-empty redo — the replication log-shipping hook.

        Fired under the database lock, after the WAL append: what the
        listener sees is exactly what recovery would replay.
        """
        with self._lock:
            self._commit_listeners.append(listener)

    # -- replication (follower side) ---------------------------------------------

    def apply_redo(self, records: list[dict[str, Any]], tx_id: int = 0,
                   lsn: Optional[int] = None) -> bool:
        """Apply shipped redo records — a replication follower's write path.

        Rows arrive as final images carrying their primary-side rowids, so
        application bypasses normalization and FK checks (the primary
        already enforced both).  With ``lsn`` the batch is idempotent: a
        batch at or below :attr:`replication_offset` is a duplicate ship
        (a lost ack) and is skipped, and the offset advance is journaled
        in the same WAL line as the batch, so a crash can never leave the
        ack ahead of the data or the data ahead of the ack.  Returns
        ``True`` if the batch was applied, ``False`` if deduplicated.
        """
        with self._lock:
            self._require_open()
            if lsn is not None and lsn <= self.replication_offset:
                return False
            for record in records:
                self._apply_redo_record(record)
            if lsn is not None:
                self.replication_offset = lsn
            if self._journal is not None:
                journaled = list(records)
                if lsn is not None:
                    journaled.append({"op": "__repl_ack__", "lsn": lsn})
                if journaled:
                    self._journal.append_transaction(tx_id, journaled)
            return True

    def set_replication_offset(self, lsn: int) -> None:
        """Force the follower offset (used when a copy is re-synced out of
        band, e.g. after anti-entropy repair or a cross-restart bootstrap,
        where the shipped-log LSNs restart)."""
        with self._lock:
            self._require_open()
            self.replication_offset = lsn
            if self._journal is not None:
                self._journal.append_transaction(0, [{"op": "__repl_ack__", "lsn": lsn}])

    def _apply_redo_record(self, record: dict[str, Any]) -> None:
        operation = record["op"]
        if operation == "__ddl__":
            if record["kind"] == "create_table":
                schema = TableSchema.from_dict(record["schema"])
                if schema.name not in self._tables:
                    self._tables[schema.name] = Table(schema)
            elif record["kind"] == "drop_table":
                self._tables.pop(record["table"], None)
            return
        table = self._tables[record["table"]]
        if operation == "insert":
            table.restore(record["rowid"], dict(record["row"]))
            self.stats.rows_written += 1
        elif operation == "update":
            table.update(record["rowid"], record["changes"])
            self.stats.rows_written += 1
        elif operation == "delete":
            table.delete(record["rowid"])
            self.stats.rows_written += 1
        else:
            raise SchemaError(f"cannot apply redo record {record!r}")

    def rollback(self, tx: Transaction) -> None:
        with self._lock:
            self._require_open()
            for entry in tx.undo_operations():
                operation, table_name = entry[0], entry[1]
                table = self._tables[table_name]
                if operation == "insert":
                    table.delete(entry[2])
                elif operation == "update":
                    rowid, old_row = entry[2], entry[3]
                    table.delete(rowid)
                    table.restore(rowid, old_row)
                elif operation == "delete":
                    table.restore(entry[2], entry[3])
            tx.mark_rolled_back()
            self.stats.transactions_rolled_back += 1

    # -- FK enforcement ------------------------------------------------------------

    def _check_fk_on_write(self, table: Table, row: dict[str, Any]) -> None:
        for fk in table.schema.foreign_keys:
            value = row.get(fk.column)
            if value is None:
                continue
            ref_table = self._tables.get(fk.ref_table)
            if ref_table is None or not ref_table.exists_value(fk.ref_column, value):
                raise IntegrityError(
                    f"foreign key violation: {table.name}.{fk.column}={value!r} "
                    f"has no match in {fk.ref_table}.{fk.ref_column}"
                )

    def _check_fk_on_delete(self, table: Table, row: dict[str, Any]) -> None:
        for other in self._tables.values():
            for fk in other.schema.foreign_keys:
                if fk.ref_table != table.name:
                    continue
                value = row.get(fk.ref_column)
                if value is None:
                    continue
                if other.exists_value(fk.column, value):
                    raise IntegrityError(
                        f"restrict violation: {other.name}.{fk.column} still "
                        f"references {table.name}.{fk.ref_column}={value!r}"
                    )

    # -- execution -----------------------------------------------------------------

    def execute(
        self,
        statement: Union[Statement, str],
        tx: Optional[Transaction] = None,
    ) -> Any:
        """Execute a collection-object statement or SQL text.

        SELECT returns a list of row dicts.  INSERT returns the new rowid.
        UPDATE/DELETE return the affected row count.  Without ``tx`` the
        statement autocommits.
        """
        if isinstance(statement, str):
            statement = parse(statement)
        obs = self.obs
        slow_threshold = obs.slowlog.threshold_for("metadb.execute")
        if not obs.enabled and slow_threshold is None:
            fire_fault("metadb.statement")
            return self._execute_statement(statement, tx)
        op = type(statement).__name__.lower()
        # The clock starts before fire_fault so injected stalls show up in
        # the slow log like any other slow statement would.
        started = time.perf_counter()
        with obs.span("metadb.execute", db=self.name, op=op, table=statement.table):
            fire_fault("metadb.statement")
            result = self._execute_statement(statement, tx)
            elapsed = time.perf_counter() - started
            if obs.enabled:
                obs.observe("metadb.query_s", elapsed, db=self.name, op=op)
            if slow_threshold is not None and elapsed >= slow_threshold:
                self._record_slow(statement, op, elapsed, slow_threshold)
        return result

    def execute_batch(
        self,
        statements: list[Union[Statement, str]],
        tx: Optional[Transaction] = None,
    ) -> list[Any]:
        """Execute several statements in one client round trip.

        The batch entry point the DM's page fetch uses (paper §7.2's
        seven-query page collapsed into grouped round trips): one lock
        acquisition covers the whole batch, so the results are a
        consistent snapshot, and a remote deployment pays one network
        round trip instead of ``len(statements)``.  Results come back in
        statement order, with each entry exactly what :meth:`execute`
        would have returned.
        """
        if not statements:
            return []
        with self._lock:
            results = [self.execute(statement, tx=tx) for statement in statements]
        obs = self.obs
        if obs.enabled:
            obs.count("metadb.batch.round_trips", db=self.name)
            obs.count("metadb.batch.statements", len(statements), db=self.name)
        return results

    def _record_slow(self, statement: Statement, op: str, elapsed_s: float,
                     threshold_s: float) -> None:
        """Attach the statement text — and, for SELECTs, the chosen access
        plan — to a slow-log entry so the operator sees *why* it was slow."""
        detail: dict[str, Any] = {"db": self.name, "op": op}
        try:
            detail["statement"] = to_sql(statement)
        except Exception:
            detail["statement"] = repr(statement)
        if isinstance(statement, (Select, Explain)):
            try:
                detail["plan"] = self.explain_plan(statement)
            except Exception:
                pass
        where = getattr(statement, "where", None)
        if where is not None:
            detail["predicate"] = str(where)
        self.obs.slow_op("metadb.execute", elapsed_s, threshold_s, **detail)

    def _count_access_path(self, plan: Plan) -> None:
        counter = self._plan_counters.get(plan.access)
        if counter is None:
            counter = self.obs.counter(
                "metadb.access_path", db=self.name, access=plan.access
            )
            self._plan_counters[plan.access] = counter
        counter.inc()

    def _count_columnar_scan(self, table: Table) -> None:
        """Publish the columnar store's last-scan statistics as
        ``metadb.columnar.*`` counters."""
        store = table._columnar_store
        last = store.last_scan if store is not None else None
        if last is None:
            return
        amounts = {
            "metadb.columnar.segments_scanned": last["segments_scanned"],
            "metadb.columnar.segments_pruned": last["segments_pruned"],
            "metadb.columnar.rows_matched": last["rows_matched"],
            "metadb.columnar.rebuilds": 1 if last["rebuilt"] else 0,
        }
        for name, amount in amounts.items():
            if not amount:
                continue
            counter = self._columnar_counters.get(name)
            if counter is None:
                counter = self.obs.counter(name, db=self.name)
                self._columnar_counters[name] = counter
            counter.inc(amount)

    def _execute_statement(self, statement: Statement, tx: Optional[Transaction]) -> Any:
        with self._lock:
            self._require_open()
            if tx is not None and tx.state is not TxState.ACTIVE:
                raise TransactionError("transaction is not active")
            if isinstance(statement, Explain):
                select = statement.select
                if select.table not in self._tables:
                    raise SchemaError(f"unknown table {select.table!r}")
                plan = plan_select(self._tables[select.table], select)
                return [{"table": select.table, **plan.to_dict()}]
            if isinstance(statement, Select):
                table = self._tables.get(statement.table)
                if table is None:
                    raise SchemaError(f"unknown table {statement.table!r}")
                plan = plan_select(table, statement)
                self._count_access_path(plan)
                rows = execute_select(self._tables, statement, plan=plan)
                if plan.access == "columnar_scan":
                    self._count_columnar_scan(table)
                self.stats.selects += 1
                self.stats.rows_read += len(rows)
                return rows
            autocommit = tx is None
            local_tx = tx or self.begin()
            try:
                result = self._execute_mutation(statement, local_tx)
            except Exception:
                if autocommit:
                    self.rollback(local_tx)
                raise
            if autocommit:
                self.commit(local_tx)
            return result

    def _execute_mutation(self, statement: Statement, tx: Transaction) -> Any:
        if isinstance(statement, Insert):
            table = self.table(statement.table)
            row = table.schema.normalize_row(statement.values)
            self._check_fk_on_write(table, row)
            rowid = table.insert(statement.values)
            tx.log_insert(table.name, rowid, table.row(rowid))
            self.stats.inserts += 1
            self.stats.rows_written += 1
            return rowid
        if isinstance(statement, Update):
            table = self.table(statement.table)
            where = statement.where
            matcher = where.compile() if where is not None else None
            target_rowids = [
                rowid
                for rowid in table.rowids()
                if matcher is None or matcher(table.row(rowid))
            ]
            preview = table.schema.normalize_row(statement.changes, for_update=True)
            for rowid in target_rowids:
                merged = {**table.row(rowid), **preview}
                self._check_fk_on_write(table, merged)
                old_row = table.update(rowid, statement.changes)
                tx.log_update(table.name, rowid, old_row, statement.changes)
            self.stats.updates += 1
            self.stats.rows_written += len(target_rowids)
            return len(target_rowids)
        if isinstance(statement, Delete):
            table = self.table(statement.table)
            where = statement.where
            matcher = where.compile() if where is not None else None
            target_rowids = [
                rowid
                for rowid in table.rowids()
                if matcher is None or matcher(table.row(rowid))
            ]
            for rowid in target_rowids:
                self._check_fk_on_delete(table, table.row(rowid))
                old_row = table.delete(rowid)
                tx.log_delete(table.name, rowid, old_row)
            self.stats.deletes += 1
            self.stats.rows_written += len(target_rowids)
            return len(target_rowids)
        raise SchemaError(f"cannot execute {statement!r}")

    def explain(self, select: Union[Select, str]) -> str:
        """EXPLAIN: describe the access path the planner would choose."""
        return self.explain_plan(select)["description"]

    def explain_plan(self, select: Union[Select, Explain, str]) -> dict[str, Any]:
        """Full EXPLAIN output: access path, cardinality estimate against
        current table statistics, and executor strategy flags
        (``limit_pushdown``, ``topn``)."""
        if isinstance(select, str):
            select = parse(select)
        if isinstance(select, Explain):
            select = select.select
        if not isinstance(select, Select):
            raise SchemaError("explain only applies to SELECT")
        with self._lock:
            table = self.table(select.table)
            return {"table": select.table, **plan_select(table, select).to_dict()}
