"""Primary/replica database replication.

The paper's scaling discussion (§7.3) ends with: "Further scalability
can be achieved by replicating the database using standard techniques."
This module provides those standard techniques for the embedded engine:

* :func:`clone_database` — snapshot an existing database into a fresh
  replica (schema + rows, preserving rowids);
* :class:`ReplicatedDatabase` — a drop-in ``execute()`` target that
  applies writes synchronously to the primary and every replica (eager,
  single-writer replication) and serves reads round-robin across all
  copies.

Because it quacks like a :class:`Database` for ``execute``/``begin``/
``commit``/``rollback``, the DM's I/O layer can sit on top of it
unchanged — replication slots in "without system downtime" exactly as
the paper's change-absorption story requires.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Optional, Union

from ..obs import Observability, resolve as resolve_obs
from ..resil.breaker import BreakerOpen, BreakerState, CircuitBreaker
from ..resil.faults import fire as fire_fault
from ..resil.policies import TRANSIENT_ERRORS
from .database import Database, DatabaseStats
from .errors import SchemaError, TransactionError
from .query import Delete, Insert, Select, Update
from .schema import TableSchema
from .sql import Statement, parse
from .transactions import Transaction


def clone_database(source: Database, name: str = "replica") -> Database:
    """Snapshot ``source`` into a new in-memory database.

    Rowids are preserved so later replicated mutations stay aligned.
    """
    replica = Database(name=name)
    # Create tables in foreign-key dependency order (fixpoint pass).
    pending = list(source.table_names())
    while pending:
        progressed = False
        for table_name in list(pending):
            schema = source.table(table_name).schema
            targets = {fk.ref_table for fk in schema.foreign_keys} - {table_name}
            if all(replica.has_table(target) for target in targets):
                replica.create_table(TableSchema.from_dict(schema.to_dict()))
                pending.remove(table_name)
                progressed = True
        if not progressed:
            raise SchemaError(f"circular foreign keys among {pending}")
    for table_name in source.table_names():
        table = source.table(table_name)
        replica_table = replica.table(table_name)
        for rowid in table.rowids():
            replica_table.restore(rowid, dict(table.row(rowid)))
    return replica


class _ReplicatedTransaction:
    """Groups one logical transaction's per-copy transactions."""

    def __init__(self, parts: list[tuple[Database, Transaction]]):
        self.parts = parts
        self.state = parts[0][1].state

    @property
    def primary_tx(self) -> Transaction:
        return self.parts[0][1]


class ReplicatedDatabase:
    """One primary plus N replicas behind a single execute() interface.

    Writes go to every copy inside the same logical transaction (eager
    replication — all copies stay identical).  Reads rotate across all
    copies, multiplying read capacity.
    """

    def __init__(self, primary: Database, obs: Optional[Observability] = None,
                 breaker_cooldown_s: float = 5.0):
        self.primary = primary
        self.replicas: list[Database] = []
        self._read_cursor = 0
        self._lock = threading.Lock()
        self.stats = DatabaseStats()
        self.obs = resolve_obs(obs)
        self.breaker_cooldown_s = breaker_cooldown_s
        self.breakers: dict[str, CircuitBreaker] = {}
        self.reads_by_copy: dict[str, int] = {primary.name: 0}

    @property
    def name(self) -> str:
        return self.primary.name

    def _breaker_for(self, copy: Database) -> CircuitBreaker:
        breaker = self.breakers.get(copy.name)
        if breaker is None:
            breaker = CircuitBreaker(
                name=f"metadb.copy.{copy.name}",
                window=10,
                min_calls=3,
                failure_rate=0.5,
                cooldown_s=self.breaker_cooldown_s,
                obs=self.obs,
            )
            self.breakers[copy.name] = breaker
        return breaker

    # -- topology ------------------------------------------------------------

    def add_replica(self, replica: Optional[Database] = None) -> Database:
        """Attach a replica; by default a fresh clone of the primary."""
        if replica is None:
            replica = clone_database(
                self.primary, name=f"{self.primary.name}-r{len(self.replicas) + 1}"
            )
        with self._lock:
            self.replicas.append(replica)
            self.reads_by_copy[replica.name] = 0
        self.obs.set_gauge("metadb.replication.replicas", len(self.replicas),
                           db=self.primary.name)
        return replica

    def remove_replica(self, replica: Database) -> None:
        with self._lock:
            self.replicas.remove(replica)
        self.obs.set_gauge("metadb.replication.replicas", len(self.replicas),
                           db=self.primary.name)

    @property
    def n_copies(self) -> int:
        return 1 + len(self.replicas)

    def _copies(self) -> list[Database]:
        return [self.primary, *self.replicas]

    # -- Database-compatible interface ------------------------------------------

    def has_table(self, name: str) -> bool:
        return self.primary.has_table(name)

    def table_names(self) -> list[str]:
        return self.primary.table_names()

    def table(self, name: str):
        return self.primary.table(name)

    def create_table(self, schema: TableSchema) -> None:
        for copy in self._copies():
            copy.create_table(schema)

    def explain(self, select) -> str:
        return self.primary.explain(select)

    def allocate_id(self, table: str, column: str) -> int:
        return self.primary.allocate_id(table, column)

    def begin(self) -> _ReplicatedTransaction:
        return _ReplicatedTransaction([(copy, copy.begin()) for copy in self._copies()])

    def commit(self, tx: _ReplicatedTransaction) -> None:
        for copy, part in tx.parts:
            copy.commit(part)
        self.stats.transactions_committed += 1

    def rollback(self, tx: _ReplicatedTransaction) -> None:
        for copy, part in tx.parts:
            copy.rollback(part)
        self.stats.transactions_rolled_back += 1

    def execute(
        self,
        statement: Union[Statement, str],
        tx: Optional[_ReplicatedTransaction] = None,
    ) -> Any:
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, Select):
            return self._read_with_failover(statement)
        if isinstance(tx, Transaction):
            raise TransactionError(
                "a replicated database needs transactions from its own begin()"
            )
        if isinstance(statement, Insert):
            # Materialise callable column defaults (e.g. created_at
            # timestamps) ONCE, so every copy stores identical rows.
            full_row = self.primary.table(statement.table).schema.normalize_row(
                statement.values
            )
            statement = Insert(statement.table, full_row)
        autocommit = tx is None
        local_tx = tx or self.begin()
        result: Any = None
        try:
            primary_done = None
            for copy, part in local_tx.parts:
                result = copy.execute(statement, tx=part)
                if primary_done is None:
                    primary_done = time.perf_counter()
            if self.replicas and primary_done is not None:
                # Eager replication: "lag" is how long the replicas trail
                # the primary within one synchronous write.
                lag_s = time.perf_counter() - primary_done
                self.obs.observe("metadb.replication.apply_s", lag_s,
                                 db=self.primary.name)
                self.obs.set_gauge("metadb.replication.lag_s", lag_s,
                                   db=self.primary.name)
                self.obs.count("metadb.replication.writes", db=self.primary.name)
        except Exception:
            if autocommit:
                self.rollback(local_tx)
            raise
        if autocommit:
            self.commit(local_tx)
        if isinstance(statement, Insert):
            self.stats.inserts += 1
            self.stats.rows_written += 1
        elif isinstance(statement, Update):
            self.stats.updates += 1
            self.stats.rows_written += int(result or 0)
        elif isinstance(statement, Delete):
            self.stats.deletes += 1
            self.stats.rows_written += int(result or 0)
        return result

    def _read_with_failover(self, statement: Select) -> list[dict[str, Any]]:
        """Serve a read from the next healthy copy.

        The happy path is the same round-robin rotation as before: one
        cursor increment per logical read, so read load stays perfectly
        balanced.  When a copy raises a transient error (or its breaker
        is open) the read fails over to the next copy; only transient
        errors count against a copy's breaker, so a bad query never
        trips a circuit.
        """
        with self._lock:
            copies = self._copies()
            start = self._read_cursor
            self._read_cursor += 1
        # Open-breaker copies leave the rotation entirely *before* any
        # attempt is made, instead of burning a failover hop (and a
        # breaker rejection) per read that lands on them.  The breaker's
        # half-open probe budget is still consumed only by allow() right
        # before a real attempt, so probes are never leaked on filtering.
        eligible: list[Database] = []
        for copy in copies:
            if self._breaker_for(copy).state is BreakerState.OPEN:
                self.obs.count("metadb.replication.skipped_open",
                               db=self.primary.name, copy=copy.name)
            else:
                eligible.append(copy)
        last_transient: Optional[BaseException] = None
        for offset in range(len(eligible)):
            copy = eligible[(start + offset) % len(eligible)]
            breaker = self._breaker_for(copy)
            if not breaker.allow():
                continue
            self.obs.count("metadb.replication.read_attempts",
                           db=self.primary.name, copy=copy.name)
            try:
                fire_fault(f"metadb.replica.{copy.name}")
                rows = copy.execute(statement)
            except TRANSIENT_ERRORS as exc:
                breaker.record_failure()
                last_transient = exc
                self.obs.count("metadb.replication.failovers",
                               db=self.primary.name, copy=copy.name)
                continue
            breaker.record_success()
            with self._lock:
                self.stats.selects += 1
                self.stats.rows_read += len(rows)
                self.reads_by_copy[copy.name] += 1
            return rows
        if last_transient is not None:
            raise last_transient
        raise BreakerOpen(
            f"metadb.{self.primary.name}.reads",
            min(b.retry_after_s() for b in self.breakers.values()),
        )

    # -- verification --------------------------------------------------------------

    def verify_consistency(self) -> bool:
        """True when every replica matches the primary row-for-row."""
        for replica in self.replicas:
            if replica.table_names() != self.primary.table_names():
                return False
            for table_name in self.primary.table_names():
                primary_table = self.primary.table(table_name)
                replica_table = replica.table(table_name)
                if len(primary_table) != len(replica_table):
                    return False
                for rowid in primary_table.rowids():
                    try:
                        if replica_table.row(rowid) != primary_table.row(rowid):
                            return False
                    except KeyError:
                        return False
        return True
