"""A small SQL dialect: tokenizer, parser and generator.

HEDC supports two SQL paths that this module covers:

* advanced users may submit *their own SQL queries* (paper §1), which we
  parse into :mod:`repro.metadb.query` collection objects; and
* the DM translates collection objects *into* SQL for the target database
  (paper §5.4), which :func:`to_sql` implements, so tests can assert the
  round trip ``parse(to_sql(q))`` is semantics-preserving.

Supported grammar (case-insensitive keywords)::

    SELECT select_list FROM table [WHERE pred] [GROUP BY cols]
        [ORDER BY col [ASC|DESC], ...] [LIMIT n [OFFSET m]]
    INSERT INTO table (cols) VALUES (vals)
    UPDATE table SET col = val, ... [WHERE pred]
    DELETE FROM table [WHERE pred]
    EXPLAIN SELECT ...                (returns the chosen plan, not rows)

    select_list := * | expr, ...        expr := col | FUNC(col|*) [AS alias]
    pred := disjunction of conjunctions of comparisons, BETWEEN, IN,
            LIKE, IS [NOT] NULL, parentheses, NOT
"""

from __future__ import annotations

import re
from typing import Any, Optional, Union

from .errors import QueryError
from .predicate import (
    And,
    Between,
    Comparison,
    In,
    IsNull,
    Like,
    Not,
    Or,
    Predicate,
)
from .query import Aggregate, Delete, Explain, Insert, Select, Update

Statement = Union[Select, Insert, Update, Delete, Explain]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+(?:[eE][+-]?\d+)?|-?\d+)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),;*])
      | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "limit", "offset",
    "insert", "into", "values", "update", "set", "delete", "and", "or",
    "not", "between", "in", "like", "is", "null", "asc", "desc", "as",
    "true", "false", "explain",
}


class _Token:
    __slots__ = ("kind", "value")

    def __init__(self, kind: str, value: Any):
        self.kind = kind
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if not match:
            if text[position:].strip() == "":
                break
            raise QueryError(f"cannot tokenize SQL at: {text[position:position + 20]!r}")
        position = match.end()
        if match.group("string") is not None:
            literal = match.group("string")[1:-1].replace("''", "'")
            tokens.append(_Token("string", literal))
        elif match.group("number") is not None:
            raw = match.group("number")
            value = float(raw) if any(ch in raw for ch in ".eE") else int(raw)
            tokens.append(_Token("number", value))
        elif match.group("op") is not None:
            operator = match.group("op")
            tokens.append(_Token("op", "!=" if operator == "<>" else operator))
        elif match.group("punct") is not None:
            tokens.append(_Token("punct", match.group("punct")))
        else:
            name = match.group("name")
            lowered = name.lower()
            if lowered in _KEYWORDS:
                tokens.append(_Token("keyword", lowered))
            else:
                tokens.append(_Token("name", lowered))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> Optional[_Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise QueryError("unexpected end of SQL")
        self._position += 1
        return token

    def _accept(self, kind: str, value: Any = None) -> Optional[_Token]:
        token = self._peek()
        if token is not None and token.kind == kind and (value is None or token.value == value):
            self._position += 1
            return token
        return None

    def _expect(self, kind: str, value: Any = None) -> _Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise QueryError(f"expected {value or kind}, got {actual!r}")
        return token

    # -- statements --------------------------------------------------------

    def statement(self) -> Statement:
        token = self._peek()
        if token is None:
            raise QueryError("empty SQL statement")
        if token.kind == "keyword" and token.value == "explain":
            self._next()
            inner = self.statement()
            if not isinstance(inner, Select):
                raise QueryError("EXPLAIN only applies to SELECT")
            return Explain(inner)
        if token.kind == "keyword" and token.value == "select":
            return self._select()
        if token.kind == "keyword" and token.value == "insert":
            return self._insert()
        if token.kind == "keyword" and token.value == "update":
            return self._update()
        if token.kind == "keyword" and token.value == "delete":
            return self._delete()
        raise QueryError(f"unsupported statement start: {token!r}")

    def _select(self) -> Select:
        self._expect("keyword", "select")
        columns: Optional[list[str]] = None
        aggregates: list[Aggregate] = []
        if self._accept("punct", "*"):
            columns = None
        else:
            columns = []
            while True:
                item_columns, item_aggregate = self._select_item()
                if item_aggregate is not None:
                    aggregates.append(item_aggregate)
                else:
                    columns.append(item_columns)
                if not self._accept("punct", ","):
                    break
            if aggregates and not columns:
                columns = None
        self._expect("keyword", "from")
        table = self._expect("name").value
        where = None
        if self._accept("keyword", "where"):
            where = self._predicate()
        group_by: list[str] = []
        if self._accept("keyword", "group"):
            self._expect("keyword", "by")
            group_by.append(self._expect("name").value)
            while self._accept("punct", ","):
                group_by.append(self._expect("name").value)
        order_by: list[tuple[str, str]] = []
        if self._accept("keyword", "order"):
            self._expect("keyword", "by")
            while True:
                column = self._expect("name").value
                direction = "asc"
                if self._accept("keyword", "desc"):
                    direction = "desc"
                elif self._accept("keyword", "asc"):
                    direction = "asc"
                order_by.append((column, direction))
                if not self._accept("punct", ","):
                    break
        limit = None
        offset = 0
        if self._accept("keyword", "limit"):
            limit = int(self._expect("number").value)
            if self._accept("keyword", "offset"):
                offset = int(self._expect("number").value)
        self._accept("punct", ";")
        if self._peek() is not None:
            raise QueryError(f"trailing tokens after statement: {self._peek()!r}")
        if group_by and columns:
            # GROUP BY keys are implicitly projected; plain columns beyond
            # the keys are not allowed in this dialect.
            extra = [column for column in columns if column not in group_by]
            if extra:
                raise QueryError(f"non-grouped columns in aggregate query: {extra}")
            columns = None
        return Select(
            table,
            columns=columns,
            where=where,
            order_by=order_by,
            limit=limit,
            offset=offset,
            group_by=group_by,
            aggregates=aggregates,
        )

    def _select_item(self) -> tuple[Optional[str], Optional[Aggregate]]:
        token = self._next()
        if token.kind != "name":
            raise QueryError(f"expected column or aggregate, got {token!r}")
        name = token.value
        if self._accept("punct", "("):
            func = name
            if self._accept("punct", "*"):
                column = "*"
            else:
                column = self._expect("name").value
            self._expect("punct", ")")
            alias = f"{func}_{column if column != '*' else 'all'}"
            if self._accept("keyword", "as"):
                alias = self._expect("name").value
            return None, Aggregate(func, column, alias)
        return name, None

    def _insert(self) -> Insert:
        self._expect("keyword", "insert")
        self._expect("keyword", "into")
        table = self._expect("name").value
        self._expect("punct", "(")
        columns = [self._expect("name").value]
        while self._accept("punct", ","):
            columns.append(self._expect("name").value)
        self._expect("punct", ")")
        self._expect("keyword", "values")
        self._expect("punct", "(")
        values = [self._literal()]
        while self._accept("punct", ","):
            values.append(self._literal())
        self._expect("punct", ")")
        self._accept("punct", ";")
        if len(columns) != len(values):
            raise QueryError("INSERT column/value count mismatch")
        return Insert(table, dict(zip(columns, values)))

    def _update(self) -> Update:
        self._expect("keyword", "update")
        table = self._expect("name").value
        self._expect("keyword", "set")
        changes: dict[str, Any] = {}
        while True:
            column = self._expect("name").value
            self._expect("op", "=")
            changes[column] = self._literal()
            if not self._accept("punct", ","):
                break
        where = None
        if self._accept("keyword", "where"):
            where = self._predicate()
        self._accept("punct", ";")
        return Update(table, changes, where)

    def _delete(self) -> Delete:
        self._expect("keyword", "delete")
        self._expect("keyword", "from")
        table = self._expect("name").value
        where = None
        if self._accept("keyword", "where"):
            where = self._predicate()
        self._accept("punct", ";")
        return Delete(table, where)

    # -- predicates ---------------------------------------------------------

    def _predicate(self) -> Predicate:
        return self._disjunction()

    def _disjunction(self) -> Predicate:
        left = self._conjunction()
        operands = [left]
        while self._accept("keyword", "or"):
            operands.append(self._conjunction())
        return operands[0] if len(operands) == 1 else Or(operands)

    def _conjunction(self) -> Predicate:
        left = self._term()
        operands = [left]
        while self._accept("keyword", "and"):
            operands.append(self._term())
        return operands[0] if len(operands) == 1 else And(operands)

    def _term(self) -> Predicate:
        if self._accept("keyword", "not"):
            return Not(self._term())
        if self._accept("punct", "("):
            inner = self._disjunction()
            self._expect("punct", ")")
            return inner
        column = self._expect("name").value
        if self._accept("keyword", "between"):
            low = self._literal()
            self._expect("keyword", "and")
            high = self._literal()
            return Between(column, low, high)
        if self._accept("keyword", "in"):
            self._expect("punct", "(")
            values = [self._literal()]
            while self._accept("punct", ","):
                values.append(self._literal())
            self._expect("punct", ")")
            return In(column, values)
        if self._accept("keyword", "like"):
            pattern = self._expect("string").value
            return Like(column, pattern)
        if self._accept("keyword", "is"):
            negated = bool(self._accept("keyword", "not"))
            self._expect("keyword", "null")
            return IsNull(column, negated=negated)
        operator = self._expect("op").value
        value = self._literal()
        return Comparison(column, operator, value)

    def _literal(self) -> Any:
        token = self._next()
        if token.kind in ("string", "number"):
            return token.value
        if token.kind == "keyword" and token.value == "null":
            return None
        if token.kind == "keyword" and token.value in ("true", "false"):
            return token.value == "true"
        raise QueryError(f"expected literal, got {token!r}")


def parse(sql: str) -> Statement:
    """Parse one SQL statement into a query collection object."""
    return _Parser(_tokenize(sql)).statement()


# -- SQL generation ----------------------------------------------------------


def _quote(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    raise QueryError(f"cannot render literal {value!r} as SQL")


def _predicate_sql(predicate: Predicate) -> str:
    if isinstance(predicate, Comparison):
        return f"{predicate.column} {predicate.op} {_quote(predicate.value)}"
    if isinstance(predicate, Between):
        return f"{predicate.column} BETWEEN {_quote(predicate.low)} AND {_quote(predicate.high)}"
    if isinstance(predicate, In):
        rendered = ", ".join(_quote(value) for value in sorted(predicate.values, key=repr))
        return f"{predicate.column} IN ({rendered})"
    if isinstance(predicate, Like):
        return f"{predicate.column} LIKE {_quote(predicate.pattern)}"
    if isinstance(predicate, IsNull):
        return f"{predicate.column} IS {'NOT ' if predicate.negated else ''}NULL"
    if isinstance(predicate, And):
        return "(" + " AND ".join(_predicate_sql(operand) for operand in predicate.operands) + ")"
    if isinstance(predicate, Or):
        return "(" + " OR ".join(_predicate_sql(operand) for operand in predicate.operands) + ")"
    if isinstance(predicate, Not):
        return f"NOT ({_predicate_sql(predicate.operand)})"
    raise QueryError(f"cannot render predicate {predicate!r} as SQL")


def to_sql(statement: Statement) -> str:
    """Render a collection object back to SQL text."""
    if isinstance(statement, Explain):
        return "EXPLAIN " + to_sql(statement.select)
    if isinstance(statement, Select):
        parts = []
        if statement.aggregates or statement.group_by:
            items = list(statement.group_by)
            for aggregate in statement.aggregates:
                items.append(f"{aggregate.func}({aggregate.column}) AS {aggregate.alias}")
            parts.append("SELECT " + ", ".join(items))
        elif statement.columns:
            parts.append("SELECT " + ", ".join(statement.columns))
        else:
            parts.append("SELECT *")
        parts.append(f"FROM {statement.table}")
        if statement.where is not None:
            parts.append("WHERE " + _predicate_sql(statement.where))
        if statement.group_by:
            parts.append("GROUP BY " + ", ".join(statement.group_by))
        if statement.order_by:
            rendered = ", ".join(
                f"{column} {direction.upper()}" for column, direction in statement.order_by
            )
            parts.append("ORDER BY " + rendered)
        if statement.limit is not None:
            parts.append(f"LIMIT {statement.limit}")
            if statement.offset:
                parts.append(f"OFFSET {statement.offset}")
        return " ".join(parts)
    if isinstance(statement, Insert):
        columns = ", ".join(statement.values)
        values = ", ".join(_quote(value) for value in statement.values.values())
        return f"INSERT INTO {statement.table} ({columns}) VALUES ({values})"
    if isinstance(statement, Update):
        sets = ", ".join(f"{column} = {_quote(value)}" for column, value in statement.changes.items())
        sql = f"UPDATE {statement.table} SET {sets}"
        if statement.where is not None:
            sql += " WHERE " + _predicate_sql(statement.where)
        return sql
    if isinstance(statement, Delete):
        sql = f"DELETE FROM {statement.table}"
        if statement.where is not None:
            sql += " WHERE " + _predicate_sql(statement.where)
        return sql
    raise QueryError(f"cannot render {statement!r} as SQL")
