"""The DM's process layer (paper §5.2).

Combines I/O-layer operations with semantic-layer services into named
workflows: raw data preparation, event filtering, entity association,
catalog generation, physical archive relocation and recalibration — each
with the "compensating actions ... if failures occur" the paper calls
out, and each leaving log and lineage records behind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional

from ..fits import read as read_fits
from ..metadb import Aggregate, Comparison, Insert, Select, Update
from ..rhessi import (
    CalibrationHistory,
    DetectedEvent,
    EventDetector,
    PhotonList,
    RawDataUnit,
)
from ..security import User
from ..wavelets import RangePartitionedView
from .io_layer import IoLayer
from .semantic import SemanticLayer


class WorkflowError(Exception):
    """A process-layer workflow failed (after compensation)."""


@dataclass
class LoadReport:
    """Outcome of loading one raw data unit."""

    unit_id: str
    n_photons: int
    n_events: int
    hle_ids: list[int] = field(default_factory=list)
    view_bytes: int = 0
    analyses_triggered: int = 0


class ProcessLayer:
    """Workflow engine over the I/O and semantic layers."""

    def __init__(
        self,
        io: IoLayer,
        semantic: SemanticLayer,
        import_user: User,
        detector: Optional[EventDetector] = None,
        view_bin_s: float = 4.0,
        view_partition_length: int = 512,
    ):
        self.io = io
        self.semantic = semantic
        self.import_user = import_user
        self.detector = detector or EventDetector()
        self.view_bin_s = view_bin_s
        self.view_partition_length = view_partition_length
        self.calibration = CalibrationHistory()
        #: In-memory cache of wavelet views keyed by (unit_id, signal);
        #: the encoded bytes also live in the file store.
        self.views: dict[tuple[str, str], RangePartitionedView] = {}
        #: Monotonic invalidation epoch for derived-product caches.
        #: Write-path workflows that change what an analysis *would*
        #: compute (recalibration, new calibration versions) or where its
        #: inputs live (archive relocation) bump it; cached products
        #: stamped with an older epoch are stale from then on.
        self.cache_epoch = 0

    def bump_cache_epoch(self, reason: str) -> int:
        self.cache_epoch += 1
        self.io.obs.set_gauge("dm.cache_epoch", self.cache_epoch)
        self.io.obs.event("info", "dm", "cache_epoch.bumped",
                          f"cache epoch -> {self.cache_epoch} ({reason})",
                          epoch=self.cache_epoch, reason=reason)
        self.io.log("process", f"cache epoch -> {self.cache_epoch} ({reason})")
        return self.cache_epoch

    # -- raw data preparation ----------------------------------------------------

    def load_raw_unit(
        self,
        unit: RawDataUnit,
        archive_id: str,
        standard_catalog_id: Optional[int] = None,
        build_views: bool = True,
    ) -> LoadReport:
        """The full data-loading pipeline for one unit (paper §2.2, §4.1).

        Stores the FITS file, registers the unit, detects events, creates
        HLE tuples for them, associates them with the standard catalog,
        and pre-computes the wavelet-compressed range-partitioned view.
        """
        payload = unit.path.read_bytes()
        rel_path = f"raw/{unit.unit_id}.fits.gz"
        item_id = f"unit:{unit.unit_id}"
        stored = self.io.store_payload(rel_path, payload, prefer_archive=archive_id)
        tx = self.io.begin()
        try:
            self.io.execute(
                Insert(
                    "raw_units",
                    {
                        "unit_id": unit.unit_id,
                        "item_id": item_id,
                        "start_time": unit.start,
                        "end_time": unit.end,
                        "n_photons": unit.n_photons,
                        "bytes_on_disk": stored.size,
                        "calibration_version": unit.calibration_version,
                    },
                ),
                tx=tx,
            )
            self.io.names.register_file(
                item_id, stored.archive_id, stored.rel_path, role="data",
                size_bytes=stored.size, checksum=stored.checksum, compressed=True, tx=tx,
            )
            self.io.names.register_url(
                item_id, f"https://hedc.example/download/{unit.unit_id}.fits.gz",
                transform="gunzip", tx=tx,
            )
        except Exception:
            self.io.rollback(tx)
            # Compensation: remove the stored file so no orphan remains.
            self.io.storage.archive(stored.archive_id).remove(stored.rel_path)
            raise
        self.io.commit(tx)

        photons = PhotonList.from_fits(read_fits(unit.path))
        events = self.detector.detect(photons)
        report = LoadReport(unit.unit_id, len(photons), len(events))
        for event in events:
            if event.kind == "data_gap":
                continue
            hle_id = self._create_hle_for_event(unit, event)
            report.hle_ids.append(hle_id)
            if standard_catalog_id is not None:
                self.semantic.add_to_catalog(self.import_user, standard_catalog_id, hle_id)
        if build_views:
            report.view_bytes = self._build_views(unit, photons)
        self.io.log("process", f"loaded unit {unit.unit_id}: {len(events)} events")
        return report

    def _create_hle_for_event(self, unit: RawDataUnit, event: DetectedEvent) -> int:
        """Entity association: one HLE tuple per detected event."""
        hle_id = self.semantic.insert_hle(
            self.import_user,
            {
                "public": True,
                "kind": event.kind,
                "title": f"{event.kind} at t={event.peak_time:.0f}s",
                "start_time": event.start,
                "end_time": event.end,
                "peak_time": event.peak_time,
                "peak_rate": event.peak_rate,
                "total_counts": event.total_counts,
                "mean_energy_kev": event.mean_energy_kev,
                "significance": event.significance,
                "calibration_version": unit.calibration_version,
                "source_unit": unit.unit_id,
                "detector_mask": "1" * 9,
            },
        )
        return hle_id

    # -- wavelet view construction -----------------------------------------------

    def _build_views(self, unit: RawDataUnit, photons: PhotonList) -> int:
        """Pre-process the unit into range-partitioned wavelet views (§3.4)."""
        edges, counts = photons.bin_counts(self.view_bin_s)
        view = RangePartitionedView(
            counts.astype(float),
            domain_start=float(edges[0]),
            domain_step=self.view_bin_s,
            partition_length=self.view_partition_length,
        )
        self.views[(unit.unit_id, "counts")] = view
        encoded = view.total_encoded_bytes
        view_id = self.semantic._next_id("views", "view_id")
        self.io.execute(
            Insert(
                "views",
                {
                    "view_id": view_id,
                    "item_id": f"view:{unit.unit_id}:counts",
                    "unit_id": unit.unit_id,
                    "signal": "counts",
                    "domain_start": float(edges[0]),
                    "domain_step": self.view_bin_s,
                    "n_partitions": len(view.partitions),
                    "encoded_bytes": encoded,
                },
            )
        )
        return encoded

    def get_view(self, unit_id: str, signal: str = "counts") -> RangePartitionedView:
        key = (unit_id, signal)
        if key not in self.views:
            raise WorkflowError(f"no {signal!r} view for unit {unit_id!r}")
        return self.views[key]

    # -- raw data access ------------------------------------------------------------

    def load_photons(self, unit_id: str) -> PhotonList:
        """Fetch and decode the photon list of a loaded unit."""
        names = self.io.names.resolve_files(f"unit:{unit_id}", role="data")
        if not names:
            raise WorkflowError(f"unit {unit_id!r} has no data file")
        path = self.io.local_path(names[0])
        return PhotonList.from_fits(read_fits(path))

    def units_covering(self, start: float, end: float) -> list[dict]:
        """Raw units overlapping a time window."""
        rows = self.io.execute(
            Select("raw_units", where=Comparison("start_time", "<", end))
        )
        return [row for row in rows if row["end_time"] > start]

    # -- archive relocation -----------------------------------------------------------

    def relocate_archive(self, from_id: str, to_id: str) -> int:
        """Physical archive relocation (the §5.2 example workflow).

        "First, tuples referenced or referencing an entity are queried and
        altered, then the corresponding files are copied, compensating
        actions are taken if failures occur, and finally logs are
        generated."  Returns the number of items moved.
        """
        references = self.io.execute(
            Select("loc_files", where=Comparison("archive_id", "=", from_id))
        )
        moved = 0
        for reference in references:
            rel_path = reference["rel_path"]
            try:
                self.io.storage.migrate(rel_path, from_id, to_id)
            except Exception as exc:
                self.io.log(
                    "process",
                    f"relocation of {rel_path} failed: {exc}; compensated",
                    level="error",
                )
                raise WorkflowError(f"relocation failed at {rel_path!r}") from exc
            self.io.execute(
                Update(
                    "loc_files",
                    {"archive_id": to_id},
                    Comparison("file_id", "=", reference["file_id"]),
                )
            )
            self._record_lineage("migration", f"{from_id}:{rel_path}", f"{to_id}:{rel_path}")
            moved += 1
        self.io.log("process", f"relocated {moved} items {from_id} -> {to_id}")
        if moved:
            self.bump_cache_epoch(f"relocate_archive {from_id}->{to_id}")
        return moved

    # -- recalibration -------------------------------------------------------------------

    def publish_calibration(self, gains, offsets, note: str = "") -> int:
        """Publish a new calibration version and record it in the schema."""
        calibration = self.calibration.publish(gains, offsets, note)
        self.io.execute(
            Insert(
                "calibrations",
                {
                    "version": calibration.version,
                    "gains": ",".join(f"{gain:g}" for gain in calibration.gains),
                    "offsets": ",".join(f"{offset:g}" for offset in calibration.offsets),
                    "note": note,
                },
            )
        )
        self.bump_cache_epoch(f"publish_calibration v{calibration.version}")
        return calibration.version

    def recalibrate_unit(self, unit_id: str, archive_id: str) -> str:
        """Re-derive a unit under the current calibration (paper §3.1).

        The superseded unit's tuple gains a ``superseded_by`` pointer; a
        lineage record ties old to new.
        """
        rows = self.io.execute(
            Select("raw_units", where=Comparison("unit_id", "=", unit_id))
        )
        if not rows:
            raise WorkflowError(f"unknown unit {unit_id!r}")
        row = rows[0]
        target_version = self.calibration.current_version
        if row["calibration_version"] == target_version:
            return unit_id
        photons = self.load_photons(unit_id)
        corrected, record = self.calibration.recalibrate(
            photons, unit_id, from_version=row["calibration_version"]
        )
        from ..rhessi.telemetry import package_units  # local import avoids a cycle

        scratch = self.io.storage.scratch_path("recalibration")
        new_units = package_units(
            corrected, scratch, unit_target_photons=len(corrected) + 1,
            calibration_version=target_version, prefix=f"{unit_id}_v{target_version}",
        )
        new_unit = new_units[0]
        report = self.load_raw_unit(new_unit, archive_id, build_views=False)
        self.io.execute(
            Update(
                "raw_units",
                {"superseded_by": new_unit.unit_id},
                Comparison("unit_id", "=", unit_id),
            )
        )
        self._record_lineage(
            "recalibration",
            f"unit:{unit_id}@v{record.from_version}",
            f"unit:{new_unit.unit_id}@v{record.to_version}",
            detail=f"{record.n_photons} photons",
        )
        self.bump_cache_epoch(f"recalibrate_unit {unit_id}")
        return new_unit.unit_id

    # -- catalog generation ----------------------------------------------------------------

    def generate_catalog(
        self, name: str, where, description: str = "", public: bool = True
    ) -> int:
        """Build a catalog of all visible HLEs matching a predicate."""
        catalog_id = self.semantic.create_catalog(
            self.import_user, name, description=description,
            criteria=str(where), public=public,
        )
        for hle in self.semantic.find_hles(self.import_user, where=where):
            self.semantic.add_to_catalog(self.import_user, catalog_id, hle["hle_id"])
        self.io.log("process", f"generated catalog {name!r}")
        return catalog_id

    # -- lineage --------------------------------------------------------------------------

    def _record_lineage(self, kind: str, source: str, target: str, detail: str = "") -> None:
        rows = self.io.execute(
            Select("ops_lineage", aggregates=[Aggregate("max", "lineage_id", "m")])
        )
        self.io.execute(
            Insert(
                "ops_lineage",
                {
                    "lineage_id": (rows[0]["m"] or 0) + 1,
                    "kind": kind,
                    "source_ref": source,
                    "target_ref": target,
                    "detail": detail,
                },
            )
        )

    def sync_archive_status(self) -> None:
        """Refresh the operational archive-status table (§4.1)."""
        for status in self.io.storage.total_status():
            existing = self.io.execute(
                Select("ops_archives",
                       where=Comparison("archive_id", "=", status["archive_id"]))
            )
            fields = {
                "kind": status["kind"],
                "online": status["online"],
                "bytes_stored": status["bytes_stored"],
                "capacity_left": status["capacity_left"],
                "checked_at": time.time(),
            }
            if existing:
                self.io.execute(
                    Update("ops_archives", fields,
                           Comparison("archive_id", "=", status["archive_id"]))
                )
            else:
                self.io.execute(
                    Insert("ops_archives", {"archive_id": status["archive_id"], **fields})
                )
