"""DM call redirection (paper §5.4).

"The system has been designed to run either on a single node, or
distributed across a cluster ... there is the possibility of redirecting
calls from one DM component to another."  The router holds several DM
nodes; per-call it either executes locally, forwards to a peer (chosen
round-robin or by load), enqueues for asynchronous execution on a worker
pool, or honours a force-local overwrite.
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Any, Callable, Optional

DmCall = Callable[["object"], Any]  # receives the target DataManager


@dataclass
class NodeStats:
    calls: int = 0
    errors: int = 0
    in_flight: int = 0


class DmRouter:
    """Routes DM API calls across one or more DM nodes."""

    def __init__(self, async_workers: int = 2):
        self._nodes: list = []
        self._stats: dict[int, NodeStats] = {}
        self._round_robin = 0
        self._lock = threading.Lock()
        self._queue: "queue.Queue[tuple[DmCall, Future]]" = queue.Queue()
        self._workers: list[threading.Thread] = []
        self._shutdown = False
        for worker_index in range(async_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"dm-worker-{worker_index}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    # -- topology ------------------------------------------------------------

    def add_node(self, dm) -> int:
        """Register a DM node; returns its node index."""
        with self._lock:
            self._nodes.append(dm)
            index = len(self._nodes) - 1
            self._stats[index] = NodeStats()
            return index

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def node(self, index: int):
        return self._nodes[index]

    def stats(self, index: int) -> NodeStats:
        return self._stats[index]

    # -- routing ---------------------------------------------------------------

    def _pick_node(self) -> int:
        """Least-loaded, ties broken round-robin."""
        with self._lock:
            minimum = min(self._stats[index].in_flight for index in range(len(self._nodes)))
            candidates = [
                index
                for index in range(len(self._nodes))
                if self._stats[index].in_flight == minimum
            ]
            self._round_robin = (self._round_robin + 1) % len(candidates)
            return candidates[self._round_robin]

    def call(self, fn: DmCall, force_local: bool = False, local_index: int = 0) -> Any:
        """Execute synchronously on a routed node.

        "The calling methods do not know where the code is actually
        executed, but can use overwrites to force local execution."
        """
        if not self._nodes:
            raise RuntimeError("router has no DM nodes")
        index = local_index if force_local else self._pick_node()
        stats = self._stats[index]
        with self._lock:
            stats.calls += 1
            stats.in_flight += 1
        try:
            return fn(self._nodes[index])
        except Exception:
            with self._lock:
                stats.errors += 1
            raise
        finally:
            with self._lock:
                stats.in_flight -= 1

    def submit(self, fn: DmCall) -> Future:
        """Enqueue for asynchronous execution on the worker pool."""
        future: Future = Future()
        self._queue.put((fn, future))
        return future

    def _worker_loop(self) -> None:
        while True:
            fn, future = self._queue.get()
            if self._shutdown:
                future.cancel()
                continue
            try:
                future.set_result(self.call(fn))
            except Exception as exc:
                future.set_exception(exc)
            finally:
                self._queue.task_done()

    def drain(self) -> None:
        """Wait for all queued asynchronous calls to finish."""
        self._queue.join()

    def close(self) -> None:
        self._shutdown = True
