"""Dynamic name mapping (paper §4.3).

Every data item is located by *constructing* a name of the form
``[type][root][path][item_id]`` at request time:

1. the domain tuple carries an ``item_id``;
2. querying the location tables with it (one indexed query) yields the
   entries — name type plus archive id — associated with the tuple;
3. querying the archive table with the archive id (second indexed query)
   yields the current archive kind and root path.

"The cost of this dynamic name construction is two extra database
queries on an indexed field"; the payoff is that administrators relocate
files by updating location tuples only, at run time, without touching
the domain schema — which :meth:`NameMapper.relocate_archive` does.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..metadb import Comparison, Insert, Select, Update
from ..obs import Observability, resolve as resolve_obs


class NameMappingError(Exception):
    """Item or archive could not be resolved."""


@dataclass(frozen=True)
class ResolvedName:
    """One constructed name."""

    name_type: str    # "filename" | "tuple" | "url"
    root: str
    path: str
    item_id: str
    role: str = "data"
    compressed: bool = False
    #: Registered content checksum — doubles as a strong ETag for the
    #: web tier's conditional GETs, with no payload read required.
    checksum: Optional[str] = None

    @property
    def full(self) -> str:
        if self.name_type == "filename":
            return str(Path(self.root) / self.path)
        if self.name_type == "url":
            return self.root + self.path
        return f"{self.root}:{self.path}"


class NameMapper:
    """Name construction and location-table maintenance.

    ``executor`` is anything with ``execute(statement, tx=None)`` — a
    :class:`~repro.metadb.Database` directly, or the DM's I/O layer so
    that name-construction queries are counted as DM queries (they are
    the "two extra database queries" of §4.3).
    """

    def __init__(self, executor, obs: Optional[Observability] = None):
        self._db = executor
        self.obs = resolve_obs(obs)
        self._lookup_counters = {
            kind: self.obs.counter("dm.name_mapping.lookups", kind=kind)
            for kind in ("file", "tuple", "url")
        }

    def _allocate(self, table: str, column: str) -> int:
        # IoLayer exposes database_for; a bare Database allocates directly.
        database = (
            self._db.database_for(table)
            if hasattr(self._db, "database_for")
            else self._db
        )
        return database.allocate_id(table, column)

    # -- registration -----------------------------------------------------

    def register_archive(self, archive_id: str, root_path: str, kind: str = "disk") -> None:
        existing = self._db.execute(
            Select("loc_archives", where=Comparison("archive_id", "=", archive_id))
        )
        if existing:
            raise NameMappingError(f"archive {archive_id!r} already registered")
        self._db.execute(
            Insert(
                "loc_archives",
                {"archive_id": archive_id, "kind": kind, "root_path": root_path},
            )
        )

    def ensure_archive(self, archive_id: str, root_path: str, kind: str = "disk") -> None:
        """Register an archive, or repoint an existing registration —
        idempotent, for reopening persistent repositories."""
        existing = self._db.execute(
            Select("loc_archives", where=Comparison("archive_id", "=", archive_id))
        )
        if existing:
            if existing[0]["root_path"] != root_path:
                self.relocate_archive(archive_id, root_path)
            return
        self.register_archive(archive_id, root_path, kind=kind)

    def register_file(
        self,
        item_id: str,
        archive_id: str,
        rel_path: str,
        role: str = "data",
        size_bytes: Optional[int] = None,
        checksum: Optional[str] = None,
        compressed: bool = False,
        tx=None,
    ) -> int:
        file_id = self._allocate("loc_files", "file_id")
        self._db.execute(
            Insert(
                "loc_files",
                {
                    "file_id": file_id,
                    "item_id": item_id,
                    "archive_id": archive_id,
                    "rel_path": rel_path,
                    "role": role,
                    "size_bytes": size_bytes,
                    "checksum": checksum,
                    "compressed": compressed,
                },
            ),
            tx=tx,
        )
        return file_id

    def register_tuple(self, tuple_ref: str, item_id: str, table_name: str, tx=None) -> None:
        self._db.execute(
            Insert(
                "loc_tuples",
                {"tuple_ref": tuple_ref, "item_id": item_id, "table_name": table_name},
            ),
            tx=tx,
        )

    def register_url(self, item_id: str, url: str, transform: Optional[str] = None, tx=None) -> int:
        url_id = self._allocate("loc_urls", "url_id")
        self._db.execute(
            Insert("loc_urls", {"url_id": url_id, "item_id": item_id, "url": url,
                                "transform": transform}),
            tx=tx,
        )
        return url_id

    # -- name construction --------------------------------------------------

    def resolve_files(self, item_id: str, role: Optional[str] = None) -> list[ResolvedName]:
        """Construct filenames for an item — the two indexed queries."""
        self._lookup_counters["file"].inc()
        obs = self.obs
        threshold = obs.slowlog.threshold_for("dm.name_mapping")
        if threshold is None:
            with obs.span("dm.name_mapping", item=item_id):
                return self._resolve_files(item_id, role)
        started = time.perf_counter()
        with obs.span("dm.name_mapping", item=item_id):
            try:
                resolved = self._resolve_files(item_id, role)
            except NameMappingError as exc:
                elapsed = time.perf_counter() - started
                if elapsed >= threshold:
                    obs.slow_op("dm.name_mapping", elapsed, threshold,
                                item_id=item_id, role=role, resolved=0,
                                miss=str(exc))
                raise
            elapsed = time.perf_counter() - started
            if elapsed >= threshold:
                detail: dict = {"item_id": item_id, "role": role,
                                "resolved": len(resolved)}
                if not resolved:
                    detail["miss"] = "no file entries for item"
                obs.slow_op("dm.name_mapping", elapsed, threshold, **detail)
            return resolved

    def _resolve_files(self, item_id: str, role: Optional[str]) -> list[ResolvedName]:
        entries = self._db.execute(
            Select("loc_files", where=Comparison("item_id", "=", item_id))
        )
        if role is not None:
            entries = [entry for entry in entries if entry["role"] == role]
        resolved: list[ResolvedName] = []
        for entry in entries:
            archives = self._db.execute(
                Select("loc_archives", where=Comparison("archive_id", "=", entry["archive_id"]))
            )
            if not archives:
                raise NameMappingError(f"unknown archive {entry['archive_id']!r}")
            archive = archives[0]
            resolved.append(
                ResolvedName(
                    name_type="filename",
                    root=archive["root_path"],
                    path=entry["rel_path"],
                    item_id=item_id,
                    role=entry["role"],
                    compressed=bool(entry["compressed"]),
                    checksum=entry.get("checksum"),
                )
            )
        return resolved

    def resolve_from_rows(
        self,
        item_id: str,
        file_rows: list[dict],
        archive_rows: list[dict],
        role: Optional[str] = None,
    ) -> list[ResolvedName]:
        """Construct names from pre-fetched location rows.

        The batched page fetch retrieves ``loc_files`` and
        ``loc_archives`` rows inside its grouped round trips; this builds
        the same :class:`ResolvedName` list :meth:`resolve_files` would,
        without issuing the two extra queries again.  Counted as a file
        lookup so the §7 usage analytics see one name construction either
        way.
        """
        self._lookup_counters["file"].inc()
        archives = {row["archive_id"]: row for row in archive_rows}
        resolved: list[ResolvedName] = []
        for entry in file_rows:
            if role is not None and entry["role"] != role:
                continue
            archive = archives.get(entry["archive_id"])
            if archive is None:
                raise NameMappingError(f"unknown archive {entry['archive_id']!r}")
            resolved.append(
                ResolvedName(
                    name_type="filename",
                    root=archive["root_path"],
                    path=entry["rel_path"],
                    item_id=item_id,
                    role=entry["role"],
                    compressed=bool(entry["compressed"]),
                    checksum=entry.get("checksum"),
                )
            )
        return resolved

    def resolve_tuple(self, item_id: str) -> list[ResolvedName]:
        self._lookup_counters["tuple"].inc()
        entries = self._db.execute(
            Select("loc_tuples", where=Comparison("item_id", "=", item_id))
        )
        return [
            ResolvedName("tuple", entry["database_name"], entry["table_name"], item_id)
            for entry in entries
        ]

    def resolve_urls(self, item_id: str) -> list[ResolvedName]:
        self._lookup_counters["url"].inc()
        entries = self._db.execute(
            Select("loc_urls", where=Comparison("item_id", "=", item_id))
        )
        return [
            ResolvedName("url", entry["url"], "", item_id, role=entry.get("transform") or "plain")
            for entry in entries
        ]

    # -- relocation ----------------------------------------------------------

    def relocate_archive(self, archive_id: str, new_root: str) -> int:
        """Point an archive at a new root — run-time, no downtime (§4.3).

        Every file hosted by the archive resolves to the new location on
        its next name construction.  Returns the number of affected file
        references.
        """
        updated = self._db.execute(
            Update(
                "loc_archives",
                {"root_path": new_root},
                Comparison("archive_id", "=", archive_id),
            )
        )
        if not updated:
            raise NameMappingError(f"unknown archive {archive_id!r}")
        affected = self._db.execute(
            Select("loc_files", where=Comparison("archive_id", "=", archive_id))
        )
        return len(affected)

    def move_file(self, item_id: str, rel_path: str, to_archive: str) -> None:
        """Re-home one file reference after a physical migration."""
        entries = self._db.execute(
            Select("loc_files", where=Comparison("item_id", "=", item_id))
        )
        for entry in entries:
            if entry["rel_path"] == rel_path:
                self._db.execute(
                    Update(
                        "loc_files",
                        {"archive_id": to_archive},
                        Comparison("file_id", "=", entry["file_id"]),
                    )
                )
                return
        raise NameMappingError(f"no file reference {item_id!r}/{rel_path!r}")
