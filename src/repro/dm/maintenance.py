"""Data refresh and purging rules (§4.1).

The administrative configuration carries "data refresh and purging
rules"; this service stores them (section ``rule`` of ``admin_config``)
and applies them: expired *private* derived data is deleted — public
catalog products are never purged — and raw units superseded by a
recalibration can be demoted to a cold archive.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from typing import Optional

from ..metadb import Aggregate, And, Comparison, Delete, Insert, Select
from .io_layer import IoLayer
from .semantic import SemanticLayer


@dataclass(frozen=True)
class PurgeRule:
    """Delete private ANA tuples (and their files) older than a cutoff."""

    name: str
    max_age_s: float
    algorithm: Optional[str] = None   # None = all algorithms

    def to_json(self) -> str:
        return json.dumps(
            {"max_age_s": self.max_age_s, "algorithm": self.algorithm}
        )

    @classmethod
    def from_row(cls, row: dict) -> "PurgeRule":
        payload = json.loads(row["value"])
        return cls(row["key"], payload["max_age_s"], payload.get("algorithm"))


@dataclass
class PurgeReport:
    rule: str
    analyses_deleted: int = 0
    files_deleted: int = 0
    bytes_reclaimed: int = 0


class MaintenanceService:
    """Applies the stored refresh/purge rules."""

    def __init__(self, io: IoLayer, semantic: SemanticLayer):
        self.io = io
        self.semantic = semantic

    # -- rule storage ----------------------------------------------------------

    def add_purge_rule(self, rule: PurgeRule) -> None:
        rows = self.io.execute(
            Select("admin_config", aggregates=[Aggregate("max", "config_id", "m")])
        )
        self.io.execute(
            Insert(
                "admin_config",
                {
                    "config_id": (rows[0]["m"] or 0) + 1,
                    "section": "rule",
                    "key": rule.name,
                    "value": rule.to_json(),
                    "description": f"purge private analyses after {rule.max_age_s}s",
                },
            )
        )

    def purge_rules(self) -> list[PurgeRule]:
        rows = self.io.execute(
            Select("admin_config", where=Comparison("section", "=", "rule"))
        )
        return [PurgeRule.from_row(row) for row in rows]

    # -- application ---------------------------------------------------------------

    def apply_purge_rules(self, now: Optional[float] = None) -> list[PurgeReport]:
        """Run every stored rule; returns one report per rule.

        Only *private* analyses are eligible — published results are part
        of the shared record (§3.5) and never purged automatically.
        """
        now = time.time() if now is None else now
        reports = []
        for rule in self.purge_rules():
            reports.append(self._apply_one(rule, now))
        return reports

    def _apply_one(self, rule: PurgeRule, now: float) -> PurgeReport:
        report = PurgeReport(rule.name)
        cutoff = now - rule.max_age_s
        conjuncts = [
            Comparison("public", "=", False),
            Comparison("created_at", "<", cutoff),
        ]
        if rule.algorithm is not None:
            conjuncts.append(Comparison("algorithm", "=", rule.algorithm))
        victims = self.io.execute(Select("ana", where=And(conjuncts)))
        for victim in victims:
            file_refs = self.io.execute(
                Select("loc_files", where=Comparison("item_id", "=", victim["item_id"]))
            )
            tx = self.io.begin()
            try:
                self.io.execute(
                    Delete("loc_files", Comparison("item_id", "=", victim["item_id"])),
                    tx=tx,
                )
                self.io.execute(
                    Delete("ana", Comparison("ana_id", "=", victim["ana_id"])), tx=tx
                )
            except Exception:
                self.io.rollback(tx)
                raise
            self.io.commit(tx)
            # Files last: a crash here leaves only orphan files, which a
            # scrub reclaims — never dangling metadata (§4.1 invariant).
            for reference in file_refs:
                archive = self.io.storage.archive(reference["archive_id"])
                if archive.exists(reference["rel_path"]):
                    report.bytes_reclaimed += archive.remove(reference["rel_path"])
                    report.files_deleted += 1
            report.analyses_deleted += 1
        if report.analyses_deleted:
            self.io.log(
                "maintenance",
                f"rule {rule.name!r} purged {report.analyses_deleted} analyses "
                f"({report.bytes_reclaimed} bytes)",
            )
        return report

    # -- scrubbing -------------------------------------------------------------------

    def scrub_orphan_files(self, archive_id: str) -> int:
        """Remove files with no metadata reference (the §4.1 rule that
        data is only reachable through metadata, enforced in reverse)."""
        archive = self.io.storage.archive(archive_id)
        referenced = {
            row["rel_path"]
            for row in self.io.execute(
                Select("loc_files", where=Comparison("archive_id", "=", archive_id))
            )
        }
        removed = 0
        for rel_path in archive.list_items():
            if rel_path not in referenced:
                archive.remove(rel_path)
                removed += 1
        if removed:
            self.io.log("maintenance", f"scrubbed {removed} orphans from {archive_id}")
        return removed
