"""The Data Management component facade.

One :class:`DataManager` is one DM node (paper §2.3): it binds the I/O,
semantic and process layers over a database and a storage manager, owns
the session cache, and authenticates callers.  Several DataManagers can
share one database through a :class:`~repro.dm.redirect.DmRouter` — the
configuration the scalability experiment of §7.3 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Union

from ..cache import cache_report
from ..filestore import DiskArchive, StorageManager
from ..metadb import Aggregate, Between, Comparison, Database, In, Select
from ..obs import Observability, resolve as resolve_obs, runtime_report
from ..resil import breaker_report, get_default_injector
from ..schema import install_all
from ..security import User, UserManager, scoped_where
from .io_layer import IoLayer
from .naming import ResolvedName
from .maintenance import MaintenanceService
from .process import ProcessLayer
from .reports import PredefinedQueries, Reports
from .semantic import SemanticLayer
from .sessions import SessionCache


@dataclass
class HlePage:
    """Everything the §7.2 HLE detail page renders, fetched as one unit."""

    hle: dict[str, Any]
    analyses: list[dict[str, Any]]
    n_analyses: int
    n_catalogs: int
    similar: list[dict[str, Any]]
    neighbours: list[dict[str, Any]]
    files: list[ResolvedName] = field(default_factory=list)
    #: Whether the grouped-round-trip path produced this page.
    batched: bool = True


class DataManager:
    """One DM node."""

    def __init__(
        self,
        database: Database,
        storage: StorageManager,
        node_name: str = "dm0",
        install_schema: bool = True,
        pool_open_cost_s: float = 0.0,
        batched_pages: bool = True,
        obs: Optional[Observability] = None,
    ):
        self.node_name = node_name
        self.obs = obs if obs is not None else resolve_obs(getattr(database, "obs", None))
        if install_schema:
            install_all(database)
        self.io = IoLayer(database, storage, pool_open_cost_s=pool_open_cost_s,
                          obs=self.obs)
        self.users = UserManager(database)
        self.import_user = self.users.ensure_import_user()
        self.semantic = SemanticLayer(self.io)
        self.process = ProcessLayer(self.io, self.semantic, self.import_user)
        self.sessions = SessionCache(obs=self.obs)
        self.queries = PredefinedQueries(self.io)
        self.reports = Reports(self.io)
        self.maintenance = MaintenanceService(self.io, self.semantic)
        #: When True, :meth:`fetch_page` groups the page's seven logical
        #: queries into three DM↔DBMS round trips; False replays the
        #: historical one-query-per-trip sequence.
        self.batched_pages = batched_pages

    # -- construction helpers ------------------------------------------------

    @classmethod
    def standalone(
        cls,
        data_dir: Union[str, Path],
        node_name: str = "dm0",
        persistent: bool = False,
        obs: Optional[Observability] = None,
    ) -> "DataManager":
        """A self-contained node: one disk archive, fresh database.

        This is also how the StreamCorder builds its local clone (§6.2) —
        "every installation of the StreamCorder is, in fact, a clone of
        the HEDC server".
        """
        data_dir = Path(data_dir)
        database = Database(data_dir / "db" if persistent else None, name=node_name,
                            obs=obs)
        storage = StorageManager(scratch_dir=data_dir / "scratch")
        archive = DiskArchive("main", data_dir / "archive")
        storage.register(archive)
        dm = cls(database, storage, node_name=node_name, obs=obs)
        dm.io.names.ensure_archive("main", str(archive.root))
        return dm

    # -- authentication -------------------------------------------------------

    def authenticate(self, login: str, password: str) -> User:
        return self.users.authenticate(login, password)

    def open_session(self, user: User, kind: str, client_ip: str = "127.0.0.1",
                     cookie: Optional[str] = None):
        return self.sessions.get_or_create(user, kind, client_ip, cookie)

    # -- page multi-get -------------------------------------------------------

    def fetch_page(self, user: Optional[User], hle_id: int,
                   batched: Optional[bool] = None) -> HlePage:
        """Fetch the §7.2 HLE detail page's seven logical queries.

        Batched (the default), the sequence collapses into three round
        trips: the HLE tuple itself (PK probe — also the visibility
        gate), then every point lookup keyed by ids already in hand
        (analyses, both counts, file references), then the secondary
        index sweeps plus one ``IN``-probe resolving every referenced
        archive at once.  Unbatched replays the historical
        one-query-per-trip order, so the two paths are differentially
        testable — identical rows, identical page bytes.
        """
        if batched is None:
            batched = self.batched_pages
        io = self.io
        # Round trip 1 — the HLE tuple.
        hle = self.semantic.get_hle(user, hle_id)
        rate = hle.get("peak_rate") or 0.0
        analyses_q = Select(
            "ana", where=scoped_where(user, Comparison("hle_id", "=", hle_id)),
            order_by=[("ana_id", "asc")],
        )
        n_analyses_q = Select(
            "ana", where=Comparison("hle_id", "=", hle_id),
            aggregates=[Aggregate("count", "*", "n")],
        )
        n_catalogs_q = Select(
            "catalog_members", where=Comparison("hle_id", "=", hle_id),
            aggregates=[Aggregate("count", "*", "n")],
        )
        similar_q = Select(
            "hle",
            where=scoped_where(user, Between("peak_rate", rate * 0.5, rate * 1.5)),
            order_by=[("peak_rate", "desc")], limit=40,
        )
        neighbours_q = Select(
            "hle",
            where=scoped_where(
                user,
                Between("start_time", hle["start_time"] - 3600,
                        hle["start_time"] + 3600)),
            order_by=[("start_time", "asc")], limit=40,
        )
        if not batched:
            analyses = io.execute(analyses_q)
            n_analyses = io.execute(n_analyses_q)[0]["n"]
            n_catalogs = io.execute(n_catalogs_q)[0]["n"]
            similar = io.execute(similar_q)
            files = io.names.resolve_files(hle["item_id"])
            neighbours = io.execute(neighbours_q)
            return HlePage(hle, analyses, n_analyses, n_catalogs, similar,
                           neighbours, files, batched=False)
        # Round trip 2 — point lookups, batched.
        files_q = Select("loc_files",
                         where=Comparison("item_id", "=", hle["item_id"]))
        analyses, n_ana_rows, n_cat_rows, file_rows = io.execute_batch(
            [analyses_q, n_analyses_q, n_catalogs_q, files_q]
        )
        # Round trip 3 — index sweeps plus the archive IN-probe.
        secondary = [similar_q, neighbours_q]
        archive_ids = sorted({row["archive_id"] for row in file_rows})
        if archive_ids:
            secondary.append(
                Select("loc_archives", where=In("archive_id", archive_ids))
            )
        results = io.execute_batch(secondary)
        similar, neighbours = results[0], results[1]
        archive_rows = results[2] if archive_ids else []
        files = io.names.resolve_from_rows(hle["item_id"], file_rows, archive_rows)
        return HlePage(hle, analyses, n_ana_rows[0]["n"], n_cat_rows[0]["n"],
                       similar, neighbours, files, batched=True)

    # -- statistics --------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "node": self.node_name,
            "io": self.io.stats.snapshot(),
            "db": self.io.default_database.stats.snapshot(),
            "sessions": {
                "size": self.sessions.size,
                "hits": self.sessions.hits,
                "misses": self.sessions.misses,
            },
        }

    def telemetry_report(self) -> dict:
        """The admin's instrument panel: per-tier highlights computed
        from the obs registry, plus the full metric snapshot."""
        registry = self.obs.registry

        def _quantiles(name: str, **labels) -> dict:
            histogram = registry.get(name, **labels)
            if histogram is None or not getattr(histogram, "count", 0):
                return {"count": 0, "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0}
            return {
                "count": histogram.count,
                "p50_s": histogram.quantile(0.50),
                "p95_s": histogram.quantile(0.95),
                "p99_s": histogram.quantile(0.99),
            }

        pool_waits = {
            pool.name: {
                "acquisitions": pool.acquisitions,
                "waits": pool.waits,
            }
            for pool in (self.io.pools.queries, self.io.pools.updates,
                         self.io.pools.auth)
        }
        # Duck-typed: present exactly when the default database is a
        # ShardedDatabase (repro.shard), so the DM has no shard import.
        shard_reporter = getattr(self.io.default_database, "shard_report", None)
        repl_reporter = getattr(self.io.default_database, "repl_report", None)
        return {
            "node": self.node_name,
            "tracing_enabled": self.obs.enabled,
            "db": {
                "queries": self.io.default_database.stats.queries,
                "latency": _quantiles("metadb.query_s",
                                      db=self.io.default_database.name, op="select"),
                "wal_fsyncs": registry.value("metadb.wal.fsyncs"),
            },
            "shard": shard_reporter() if shard_reporter is not None else None,
            "replication": repl_reporter() if repl_reporter is not None else None,
            "pools": pool_waits,
            "sessions": {
                "size": self.sessions.size,
                "hit_ratio": self.sessions.hit_ratio,
                "creations": self.sessions.creations,
            },
            "name_mapping": {
                "lookups": registry.family_total("dm.name_mapping.lookups"),
            },
            "caches": cache_report(self.obs),
            "resilience": {
                "breakers": breaker_report(self.obs),
                "faults": get_default_injector().report(),
            },
            "diagnostics": {
                "events": self.obs.events.total_emitted,
                "slow_ops": self.obs.slowlog.total_recorded,
                "profiler_running": self.obs.profiler.running,
            },
            "runtime": runtime_report(self.obs),
            "io": self.io.stats.snapshot(),
            "metrics": registry.snapshot(),
        }
