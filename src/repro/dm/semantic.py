"""The DM's semantic layer (paper §5.2).

Sits between the I/O layer and the process layer: enforces access rules,
ensures referential consistency, determines data dependencies, and
implements the entity services — HLE/ANA/catalog insertion and deletion
with their file references handled transactionally ("transactional
properties around entities such as an HLE and its related analysis
tuples and their references to data files", §4.4).
"""

from __future__ import annotations

import json
import time
from typing import Any, Optional, Sequence

from ..analysis import AnalysisProduct
from ..metadb import (
    Aggregate,
    And,
    Comparison,
    Delete,
    Insert,
    Select,
    Update,
)
from ..security import (
    ConstraintViolation,
    User,
    check_can_edit,
    check_no_dependencies,
    check_right,
    scoped_where,
)
from .io_layer import IoLayer


class EntityNotFound(Exception):
    """Lookup for a missing HLE/ANA/catalog."""


class SemanticLayer:
    """Entity services with constraints."""

    def __init__(self, io: IoLayer):
        self.io = io

    # -- id allocation ------------------------------------------------------

    def _next_id(self, table: str, column: str) -> int:
        # Atomic in the shared database, so several DM nodes on one
        # resource tier (§7.3) never allocate colliding ids.
        return self.io.database_for(table).allocate_id(table, column)

    # -- HLE services -----------------------------------------------------------

    def insert_hle(self, user: User, fields: dict[str, Any], tx=None) -> int:
        """Create an HLE tuple plus its tuple reference, atomically."""
        check_right(user, "upload")
        hle_id = self._next_id("hle", "hle_id")
        item_id = fields.get("item_id") or f"hle:{hle_id}"
        row = {
            **fields,
            "hle_id": hle_id,
            "item_id": item_id,
            "owner_id": user.user_id,
        }
        own_tx = tx is None
        local_tx = tx or self.io.begin()
        try:
            self.io.execute(Insert("hle", row), tx=local_tx)
            self.io.names.register_tuple(f"tuple:hle:{hle_id}", item_id, "hle", tx=local_tx)
        except Exception:
            if own_tx:
                self.io.rollback(local_tx)
            raise
        if own_tx:
            self.io.commit(local_tx)
        return hle_id

    def get_hle(self, user: Optional[User], hle_id: int) -> dict[str, Any]:
        rows = self.io.execute(
            Select("hle", where=scoped_where(user, Comparison("hle_id", "=", hle_id)))
        )
        if not rows:
            raise EntityNotFound(f"HLE {hle_id} not found or not visible")
        return rows[0]

    def find_hles(
        self,
        user: Optional[User],
        where=None,
        order_by: Sequence[tuple[str, str]] = (),
        limit: Optional[int] = None,
    ) -> list[dict[str, Any]]:
        """Visibility-scoped HLE search (the §5.5 appended-user-id rule)."""
        return self.io.execute(
            Select("hle", where=scoped_where(user, where), order_by=order_by, limit=limit)
        )

    def publish_hle(self, user: User, hle_id: int) -> None:
        row = self.get_hle(user, hle_id)
        check_can_edit(user, row)
        self.io.execute(
            Update("hle", {"public": True, "updated_at": time.time()},
                   Comparison("hle_id", "=", hle_id))
        )

    def delete_hle(self, user: User, hle_id: int) -> None:
        """Integrity constraint: an HLE with analyses may not be deleted."""
        row = self.get_hle(user, hle_id)
        check_can_edit(user, row)
        dependents = self.io.execute(
            Select("ana", where=Comparison("hle_id", "=", hle_id),
                   aggregates=[Aggregate("count", "*", "n")])
        )
        check_no_dependencies(dependents[0]["n"], f"HLE {hle_id}")
        members = self.io.execute(
            Select("catalog_members", where=Comparison("hle_id", "=", hle_id),
                   aggregates=[Aggregate("count", "*", "n")])
        )
        check_no_dependencies(members[0]["n"], f"HLE {hle_id} (catalog membership)")
        tx = self.io.begin()
        try:
            self.io.execute(
                Delete("loc_files", Comparison("item_id", "=", row["item_id"])), tx=tx
            )
            self.io.execute(
                Delete("loc_tuples", Comparison("item_id", "=", row["item_id"])), tx=tx
            )
            self.io.execute(Delete("hle", Comparison("hle_id", "=", hle_id)), tx=tx)
        except Exception:
            self.io.rollback(tx)
            raise
        self.io.commit(tx)

    # -- analysis services ----------------------------------------------------------

    def import_analysis(
        self,
        user: User,
        hle_id: int,
        product: AnalysisProduct,
        fields: dict[str, Any],
        archive_hint: Optional[str] = None,
    ) -> int:
        """Import an analysis: files plus metadata tuples, atomically (§4.1).

        Stores the product bundle (parameters, log, images) in the file
        store, then inserts the ANA tuple and its file references in one
        transaction, and bumps the parent HLE's analysis counter.
        """
        check_right(user, "analyze")
        parent = self.get_hle(user, hle_id)
        ana_id = self._next_id("ana", "ana_id")
        item_id = f"ana:{ana_id}"
        stem = f"ana/{ana_id:08d}"
        # File writes first: file data is read-only and orphan files are
        # reclaimed by scrubbing, whereas dangling tuples would violate
        # the "data only reachable through metadata" invariant (§4.1).
        stored = []
        payloads = [
            (f"{stem}/params.json",
             json.dumps({"algorithm": product.algorithm,
                          "parameters": product.parameters,
                          "summary": product.summary}, sort_keys=True).encode()),
            (f"{stem}/process.log", "\n".join(product.log_lines).encode()),
        ]
        payloads.extend(
            (f"{stem}/image_{index:02d}.pgm", payload)
            for index, payload in enumerate(product.image_payloads)
        )
        for rel_path, payload in payloads:
            stored.append((rel_path, self.io.store_payload(rel_path, payload, archive_hint)))
        tx = self.io.begin()
        try:
            row = {
                **fields,
                "ana_id": ana_id,
                "item_id": item_id,
                "hle_id": hle_id,
                "owner_id": user.user_id,
                "algorithm": product.algorithm,
                "n_images": len(product.image_payloads),
                "output_bytes": sum(item.size for _path, item in stored),
            }
            self.io.execute(Insert("ana", row), tx=tx)
            for rel_path, item in stored:
                role = "image" if rel_path.endswith(".pgm") else (
                    "params" if rel_path.endswith(".json") else "log")
                self.io.names.register_file(
                    item_id, item.archive_id, item.rel_path, role=role,
                    size_bytes=item.size, checksum=item.checksum, tx=tx,
                )
            self.io.execute(
                Update(
                    "hle",
                    {"n_analyses": parent["n_analyses"] + 1, "updated_at": time.time()},
                    Comparison("hle_id", "=", hle_id),
                ),
                tx=tx,
            )
        except Exception:
            self.io.rollback(tx)
            raise
        self.io.commit(tx)
        return ana_id

    def get_analysis(self, user: Optional[User], ana_id: int) -> dict[str, Any]:
        rows = self.io.execute(
            Select("ana", where=scoped_where(user, Comparison("ana_id", "=", ana_id)))
        )
        if not rows:
            raise EntityNotFound(f"analysis {ana_id} not found or not visible")
        return rows[0]

    def analyses_for_hle(self, user: Optional[User], hle_id: int) -> list[dict[str, Any]]:
        return self.io.execute(
            Select(
                "ana",
                where=scoped_where(user, Comparison("hle_id", "=", hle_id)),
                order_by=[("ana_id", "asc")],
            )
        )

    def find_existing_analysis(
        self, user: Optional[User], hle_id: int, algorithm: str, parameters_where=None
    ) -> Optional[dict[str, Any]]:
        """Redundant-work avoidance (§3.5): an equivalent prior analysis."""
        where = And([
            Comparison("hle_id", "=", hle_id),
            Comparison("algorithm", "=", algorithm),
        ])
        if parameters_where is not None:
            where = And([where, parameters_where])
        rows = self.io.execute(Select("ana", where=scoped_where(user, where)))
        return rows[0] if rows else None

    def publish_analysis(self, user: User, ana_id: int) -> None:
        row = self.get_analysis(user, ana_id)
        check_can_edit(user, row)
        self.io.execute(
            Update("ana", {"public": True}, Comparison("ana_id", "=", ana_id))
        )

    def delete_analysis(self, user: User, ana_id: int) -> None:
        row = self.get_analysis(user, ana_id)
        check_can_edit(user, row)
        tx = self.io.begin()
        try:
            self.io.execute(
                Delete("loc_files", Comparison("item_id", "=", row["item_id"])), tx=tx
            )
            self.io.execute(Delete("ana", Comparison("ana_id", "=", ana_id)), tx=tx)
            parent = self.io.execute(
                Select("hle", where=Comparison("hle_id", "=", row["hle_id"]))
            )
            if parent:
                self.io.execute(
                    Update(
                        "hle",
                        {"n_analyses": max(0, parent[0]["n_analyses"] - 1)},
                        Comparison("hle_id", "=", row["hle_id"]),
                    ),
                    tx=tx,
                )
        except Exception:
            self.io.rollback(tx)
            raise
        self.io.commit(tx)

    # -- catalog services --------------------------------------------------------------

    def create_catalog(self, user: User, name: str, description: str = "",
                       criteria: str = "", public: bool = False) -> int:
        check_right(user, "upload")
        catalog_id = self._next_id("catalogs", "catalog_id")
        self.io.execute(
            Insert(
                "catalogs",
                {
                    "catalog_id": catalog_id,
                    "item_id": f"cat:{catalog_id}",
                    "owner_id": user.user_id,
                    "public": public,
                    "name": name,
                    "description": description,
                    "criteria": criteria,
                },
            )
        )
        return catalog_id

    def add_to_catalog(self, user: User, catalog_id: int, hle_id: int) -> None:
        catalog = self._get_catalog(user, catalog_id)
        check_can_edit(user, catalog)
        self.get_hle(user, hle_id)  # visibility check
        member_id = self._next_id("catalog_members", "member_id")
        tx = self.io.begin()
        try:
            self.io.execute(
                Insert(
                    "catalog_members",
                    {"member_id": member_id, "catalog_id": catalog_id, "hle_id": hle_id},
                ),
                tx=tx,
            )
            self.io.execute(
                Update(
                    "catalogs",
                    {"n_members": catalog["n_members"] + 1},
                    Comparison("catalog_id", "=", catalog_id),
                ),
                tx=tx,
            )
        except Exception:
            self.io.rollback(tx)
            raise
        self.io.commit(tx)

    def _get_catalog(self, user: Optional[User], catalog_id: int) -> dict[str, Any]:
        rows = self.io.execute(
            Select("catalogs",
                   where=scoped_where(user, Comparison("catalog_id", "=", catalog_id)))
        )
        if not rows:
            raise EntityNotFound(f"catalog {catalog_id} not found or not visible")
        return rows[0]

    def get_catalog(self, user: Optional[User], catalog_id: int) -> dict[str, Any]:
        return self._get_catalog(user, catalog_id)

    def list_catalogs(self, user: Optional[User]) -> list[dict[str, Any]]:
        return self.io.execute(
            Select("catalogs", where=scoped_where(user, None), order_by=[("catalog_id", "asc")])
        )

    def catalog_hles(self, user: Optional[User], catalog_id: int) -> list[dict[str, Any]]:
        self._get_catalog(user, catalog_id)
        members = self.io.execute(
            Select("catalog_members", where=Comparison("catalog_id", "=", catalog_id))
        )
        hles = []
        for member in members:
            try:
                hles.append(self.get_hle(user, member["hle_id"]))
            except EntityNotFound:
                continue  # private member of a shared catalog
        return hles
