"""Predefined queries and operational reports.

The administrative schema section stores "predefined queries and
reports" (§4.1) and the operational section accumulates "monitoring
information such as usage statistics or audit trails".  This module is
the service layer over both: named queries any user can run (with
visibility enforced), and the reports an operator reads.
"""

from __future__ import annotations

from typing import Any, Optional

from ..metadb import Aggregate, Comparison, Insert, QueryError, Select, parse
from ..security import User, scoped_where
from .io_layer import IoLayer

#: Domain tables predefined queries may target (visibility applies).
QUERYABLE_TABLES = ("hle", "ana", "catalogs")


class PredefinedQueries:
    """Named, stored SELECTs over the domain tables (§4.1).

    Queries are stored as SQL text in ``admin_config`` (section
    ``query``) so they can be added, fixed and tuned at run time —
    "queries may be adapted and optimized without system downtime"
    (§5.4).
    """

    def __init__(self, io: IoLayer):
        self.io = io

    def register(self, name: str, sql: str, description: str = "") -> None:
        statement = parse(sql)
        if not isinstance(statement, Select):
            raise QueryError("predefined queries must be SELECTs")
        if statement.table not in QUERYABLE_TABLES:
            raise QueryError(
                f"predefined queries may only target {QUERYABLE_TABLES}"
            )
        next_id = self._next_config_id()
        self.io.execute(
            Insert(
                "admin_config",
                {
                    "config_id": next_id,
                    "section": "query",
                    "key": name,
                    "value": sql,
                    "description": description,
                },
            )
        )

    def _next_config_id(self) -> int:
        rows = self.io.execute(
            Select("admin_config", aggregates=[Aggregate("max", "config_id", "m")])
        )
        return (rows[0]["m"] or 0) + 1

    def names(self) -> list[str]:
        rows = self.io.execute(
            Select("admin_config", where=Comparison("section", "=", "query"))
        )
        return sorted(row["key"] for row in rows)

    def describe(self, name: str) -> dict[str, Any]:
        rows = self.io.execute(
            Select(
                "admin_config",
                where=(Comparison("section", "=", "query") & Comparison("key", "=", name)),
            )
        )
        if not rows:
            raise KeyError(f"no predefined query named {name!r}")
        return {"name": name, "sql": rows[0]["value"],
                "description": rows[0]["description"]}

    def run(self, name: str, user: Optional[User] = None) -> list[dict[str, Any]]:
        """Execute a stored query with the caller's visibility applied."""
        stored = self.describe(name)
        statement = parse(stored["sql"])
        statement.where = scoped_where(user, statement.where)
        return self.io.execute(statement)

    def update(self, name: str, sql: str) -> None:
        """Re-tune a stored query at run time (no downtime, §5.4)."""
        statement = parse(sql)
        if not isinstance(statement, Select) or statement.table not in QUERYABLE_TABLES:
            raise QueryError("replacement query is not allowed")
        from ..metadb import Update

        updated = self.io.execute(
            Update(
                "admin_config",
                {"value": sql},
                (Comparison("section", "=", "query") & Comparison("key", "=", name)),
            )
        )
        if not updated:
            raise KeyError(f"no predefined query named {name!r}")


class Reports:
    """Operator reports over the operational schema section."""

    def __init__(self, io: IoLayer):
        self.io = io

    def usage_summary(self) -> list[dict[str, Any]]:
        """Operations ranked by frequency with mean duration."""
        return self.io.execute(
            Select(
                "ops_usage",
                group_by=["operation"],
                aggregates=[
                    Aggregate("count", "*", "n"),
                    Aggregate("avg", "duration_ms", "avg_ms"),
                ],
            )
        )

    def top_users(self, limit: int = 10) -> list[dict[str, Any]]:
        rows = self.io.execute(
            Select(
                "ops_usage",
                group_by=["user_id"],
                aggregates=[Aggregate("count", "*", "n")],
            )
        )
        rows.sort(key=lambda row: -row["n"])
        return rows[:limit]

    def archive_status(self) -> list[dict[str, Any]]:
        """The §4.1 'status of archives' view."""
        return self.io.execute(
            Select("ops_archives", order_by=[("archive_id", "asc")])
        )

    def lineage_for(self, ref: str) -> list[dict[str, Any]]:
        """Audit trail: every lineage record touching ``ref``."""
        rows = self.io.execute(
            Select("ops_lineage", where=Comparison("source_ref", "=", ref))
        )
        rows += self.io.execute(
            Select("ops_lineage", where=Comparison("target_ref", "=", ref))
        )
        rows.sort(key=lambda row: row["at"])
        return rows

    def repository_totals(self) -> dict[str, int]:
        """Headline counts: events, analyses, catalogs, raw units."""
        totals = {}
        for table in ("hle", "ana", "catalogs", "raw_units"):
            rows = self.io.execute(
                Select(table, aggregates=[Aggregate("count", "*", "n")])
            )
            totals[table] = rows[0]["n"]
        return totals
