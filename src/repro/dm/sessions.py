"""Sessions and the session cache (paper §5.3).

"Creating database connections and user sessions are the two most
expensive parts of request processing" — so the DM caches up to three
sessions per user (one each for analyses, HLEs and catalogues), matching
clients to sessions by network IP and cookie.

Storage, eviction and statistics are delegated to the unified
:class:`repro.cache.Cache` core; this module keeps only the session
*semantics*: the IP/cookie match, the idle-TTL rule, and the per-user
eviction unit (a user's three kinds leave together).  The core's
``on_evict`` hook keeps the cookie reverse map in lockstep with the
session store, closing the historical leak where evicted or expired
sessions lingered in ``_by_cookie`` forever.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..cache import Cache, CacheStats
from ..obs import Observability, resolve as resolve_obs
from ..security import User

SESSION_KINDS = ("hle", "ana", "catalog")


@dataclass
class Session:
    """One cached user session: profile, status and a temporary view."""

    session_id: str
    user: User
    kind: str                       # hle | ana | catalog
    client_ip: str
    cookie: str
    created_at: float = field(default_factory=time.time)
    last_used_at: float = field(default_factory=time.time)
    #: "a temporary view (to speed up subsequent data access)" — cached
    #: rows keyed by a query fingerprint.
    view: dict[str, Any] = field(default_factory=dict)
    requests_served: int = 0

    def touch(self) -> None:
        self.last_used_at = time.time()
        self.requests_served += 1

    def cache_view(self, key: str, rows: list[dict]) -> None:
        self.view[key] = rows

    def cached_view(self, key: str) -> Optional[list[dict]]:
        return self.view.get(key)


class SessionCache:
    """Per-user session cache, three kinds per user, LRU-evicted."""

    def __init__(self, max_users: int = 256, ttl_s: float = 3600.0,
                 obs: Optional[Observability] = None):
        self.max_users = max_users
        self.ttl_s = ttl_s
        self.obs = resolve_obs(obs)
        self.creations = 0
        self._by_cookie: dict[str, tuple[int, str]] = {}
        # Metric names predate the unified core; keep them stable.
        self.stats = CacheStats("dm.sessions", obs=self.obs,
                                metric_prefix="dm.sessions", labels={})
        # max_entries is None: the capacity unit is *users*, enforced in
        # create(); the core handles storage, stats and cookie cleanup.
        self._cache: Cache = Cache(
            "dm.sessions", policy="lru", obs=self.obs, stats=self.stats,
            on_evict=self._on_removed,
        )
        self._creations_counter = self.obs.counter("dm.sessions.creations")
        self._size_gauge = self.obs.gauge("dm.sessions.size")

    # -- unified-stats views (legacy attribute names) ------------------------

    @property
    def hits(self) -> int:
        return self.stats.hits

    @property
    def misses(self) -> int:
        return self.stats.misses

    @property
    def hit_ratio(self) -> float:
        return self.stats.hit_rate

    @property
    def size(self) -> int:
        return len(self._cache)

    def _on_removed(self, key: tuple[int, str], session: Session,
                    reason: str) -> None:
        """Every removal path — eviction, expiry, invalidation, overwrite
        — drops the session's cookie, so ``_by_cookie`` can never outgrow
        the live session set."""
        self._by_cookie.pop(session.cookie, None)

    def _miss(self) -> None:
        self.stats.record_miss()
        self._size_gauge.set(len(self._cache))

    def _hit(self) -> None:
        self.stats.record_hit()
        self._size_gauge.set(len(self._cache))

    def _expired(self, session: Session) -> bool:
        return time.time() - session.last_used_at > self.ttl_s

    def lookup(self, user: User, kind: str, client_ip: str, cookie: str) -> Optional[Session]:
        """Match a client to its session via IP and cookie (§5.3)."""
        key = (user.user_id, kind)
        session = self._cache.peek(key, touch=True)
        if session is None or self._expired(session):
            if session is not None:
                self._cache.invalidate(key)
            self._miss()
            return None
        if session.client_ip != client_ip or session.cookie != cookie:
            self._miss()
            return None
        self._hit()
        session.touch()
        return session

    def create(self, user: User, kind: str, client_ip: str) -> Session:
        if kind not in SESSION_KINDS:
            raise ValueError(f"unknown session kind {kind!r}")
        self._evict_if_needed(user)
        cookie = os.urandom(8).hex()
        session = Session(
            session_id=f"s-{user.user_id}-{kind}-{cookie[:6]}",
            user=user,
            kind=kind,
            client_ip=client_ip,
            cookie=cookie,
        )
        # An overwrite removes the old session first (reason "replaced"),
        # which clears its cookie via _on_removed.
        self._cache.put((user.user_id, kind), session)
        self._by_cookie[cookie] = (user.user_id, kind)
        self.creations += 1
        self._creations_counter.inc()
        self._size_gauge.set(len(self._cache))
        return session

    def get_or_create(self, user: User, kind: str, client_ip: str,
                      cookie: Optional[str] = None) -> Session:
        if cookie is not None:
            session = self.lookup(user, kind, client_ip, cookie)
            if session is not None:
                return session
        else:
            self._miss()
        return self.create(user, kind, client_ip)

    def by_cookie(self, cookie: str) -> Optional[Session]:
        key = self._by_cookie.get(cookie)
        if key is None:
            return None
        session = self._cache.peek(key)
        if session is None or session.cookie != cookie:
            return None
        if self._expired(session):
            self._cache.invalidate(key)
            return None
        return session

    def invalidate_user(self, user_id: int) -> int:
        """Drop all of a user's sessions (logout / deactivation)."""
        dropped = 0
        for kind in SESSION_KINDS:
            if self._cache.invalidate((user_id, kind)):
                dropped += 1
        self._size_gauge.set(len(self._cache))
        return dropped

    def prune_expired(self) -> int:
        """Sweep idle-expired sessions out of the store (and so out of
        the cookie map) without waiting for them to be observed."""
        dropped = 0
        for key in self._cache.keys():
            session = self._cache.peek(key)
            if session is not None and self._expired(session):
                if self._cache.invalidate(key):
                    dropped += 1
        self._size_gauge.set(len(self._cache))
        return dropped

    def _evict_if_needed(self, user: User) -> None:
        active_users = {user_id for user_id, _kind in self._cache.keys()}
        if user.user_id in active_users or len(active_users) < self.max_users:
            return
        oldest: Optional[Session] = None
        for key in self._cache.keys():
            session = self._cache.peek(key)
            if session is None:
                continue
            if oldest is None or session.last_used_at < oldest.last_used_at:
                oldest = session
        if oldest is not None:
            self.invalidate_user(oldest.user.user_id)
