"""Sessions and the session cache (paper §5.3).

"Creating database connections and user sessions are the two most
expensive parts of request processing" — so the DM caches up to three
sessions per user (one each for analyses, HLEs and catalogues), matching
clients to sessions by network IP and cookie.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Optional

from ..obs import Observability, resolve as resolve_obs
from ..security import User

SESSION_KINDS = ("hle", "ana", "catalog")


@dataclass
class Session:
    """One cached user session: profile, status and a temporary view."""

    session_id: str
    user: User
    kind: str                       # hle | ana | catalog
    client_ip: str
    cookie: str
    created_at: float = field(default_factory=time.time)
    last_used_at: float = field(default_factory=time.time)
    #: "a temporary view (to speed up subsequent data access)" — cached
    #: rows keyed by a query fingerprint.
    view: dict[str, Any] = field(default_factory=dict)
    requests_served: int = 0

    def touch(self) -> None:
        self.last_used_at = time.time()
        self.requests_served += 1

    def cache_view(self, key: str, rows: list[dict]) -> None:
        self.view[key] = rows

    def cached_view(self, key: str) -> Optional[list[dict]]:
        return self.view.get(key)


class SessionCache:
    """Per-user session cache, three kinds per user, LRU-evicted."""

    def __init__(self, max_users: int = 256, ttl_s: float = 3600.0,
                 obs: Optional[Observability] = None):
        self._sessions: dict[tuple[int, str], Session] = {}
        self._by_cookie: dict[str, tuple[int, str]] = {}
        self.max_users = max_users
        self.ttl_s = ttl_s
        self.obs = resolve_obs(obs)
        self.hits = 0
        self.misses = 0
        self.creations = 0
        self._event_counters = {
            event: self.obs.counter(f"dm.sessions.{event}")
            for event in ("hits", "misses", "creations")
        }
        self._size_gauge = self.obs.gauge("dm.sessions.size")

    def _record(self, event: str) -> None:
        self._event_counters[event].inc()
        self._size_gauge.set(len(self._sessions))

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def _expired(self, session: Session) -> bool:
        return time.time() - session.last_used_at > self.ttl_s

    def lookup(self, user: User, kind: str, client_ip: str, cookie: str) -> Optional[Session]:
        """Match a client to its session via IP and cookie (§5.3)."""
        key = (user.user_id, kind)
        session = self._sessions.get(key)
        if session is None or self._expired(session):
            self.misses += 1
            self._record("misses")
            return None
        if session.client_ip != client_ip or session.cookie != cookie:
            self.misses += 1
            self._record("misses")
            return None
        self.hits += 1
        self._record("hits")
        session.touch()
        return session

    def create(self, user: User, kind: str, client_ip: str) -> Session:
        if kind not in SESSION_KINDS:
            raise ValueError(f"unknown session kind {kind!r}")
        self._evict_if_needed()
        cookie = os.urandom(8).hex()
        session = Session(
            session_id=f"s-{user.user_id}-{kind}-{cookie[:6]}",
            user=user,
            kind=kind,
            client_ip=client_ip,
            cookie=cookie,
        )
        self._sessions[(user.user_id, kind)] = session
        self._by_cookie[cookie] = (user.user_id, kind)
        self.creations += 1
        self._record("creations")
        return session

    def get_or_create(self, user: User, kind: str, client_ip: str,
                      cookie: Optional[str] = None) -> Session:
        if cookie is not None:
            session = self.lookup(user, kind, client_ip, cookie)
            if session is not None:
                return session
        else:
            self.misses += 1
            self._record("misses")
        return self.create(user, kind, client_ip)

    def by_cookie(self, cookie: str) -> Optional[Session]:
        key = self._by_cookie.get(cookie)
        if key is None:
            return None
        session = self._sessions.get(key)
        if session is None or session.cookie != cookie or self._expired(session):
            return None
        return session

    def invalidate_user(self, user_id: int) -> int:
        """Drop all of a user's sessions (logout / deactivation)."""
        dropped = 0
        for kind in SESSION_KINDS:
            session = self._sessions.pop((user_id, kind), None)
            if session is not None:
                self._by_cookie.pop(session.cookie, None)
                dropped += 1
        return dropped

    def _evict_if_needed(self) -> None:
        active_users = {user_id for user_id, _kind in self._sessions}
        if len(active_users) < self.max_users:
            return
        oldest = min(self._sessions.values(), key=lambda session: session.last_used_at)
        self.invalidate_user(oldest.user.user_id)

    @property
    def size(self) -> int:
        return len(self._sessions)
