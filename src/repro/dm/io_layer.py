"""The DM's I/O layer (paper §5.2).

"The I/O layer abstracts from the actual storage type and location.  All
data accesses happen through this layer."  It owns:

* the database adapter — collection objects in, SQL out (§5.4: "the DM
  API has no provisions for regular SQL calls ... objects are parsed,
  analyzed, verified and transformed into regular SQL queries");
* vertical partition routing — "data requests for certain parts of a
  database schema are routed to a different DBMS";
* the filesystem adapter over the hierarchical storage manager;
* dynamic name construction;
* connection pooling and the query/edit counters the evaluation reports.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Any, Optional, Union

from ..filestore import ChecksumError, StorageManager
from ..obs import Observability, resolve as resolve_obs
from ..metadb import (
    Database,
    Delete,
    Insert,
    LockTimeout,
    PoolSet,
    Select,
    Update,
    parse as parse_sql,
    to_sql,
)
from ..resil import Deadline, InjectedFault, RetryPolicy
from .naming import NameMapper, ResolvedName

Statement = Union[Select, Insert, Update, Delete]


class IoStats:
    """Query/edit counters (the figures of the paper's Tables 2 and 3)."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.queries = 0
        self.edits = 0
        self.files_read = 0
        self.files_written = 0
        self.bytes_read = 0
        self.bytes_written = 0
        # DM↔DBMS round trips: one per execute(), one per executed batch.
        # ``queries`` keeps counting logical statements (the paper's
        # "seven DM queries" stays seven); this measures what batching
        # actually saves — trips over the wire.
        self.round_trips = 0

    def snapshot(self) -> dict[str, int]:
        return {
            "queries": self.queries,
            "edits": self.edits,
            "round_trips": self.round_trips,
            "files_read": self.files_read,
            "files_written": self.files_written,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
        }


class IoLayer:
    """Storage-type-independent access to databases and archives."""

    def __init__(
        self,
        default_db: Database,
        storage: StorageManager,
        pool_open_cost_s: float = 0.0,
        translate_through_sql: bool = True,
        obs: Optional[Observability] = None,
    ):
        self._databases: dict[str, Database] = {"default": default_db}
        self._routes: dict[str, str] = {}  # table name -> database key
        self.storage = storage
        self.obs = resolve_obs(obs)
        self.pools = PoolSet(default_db, open_cost_s=pool_open_cost_s, obs=self.obs)
        self.stats = IoStats()
        #: When True, collection objects are rendered to SQL text and
        #: re-parsed before execution — the faithful §5.4 pipeline.  The
        #: round trip is semantics-preserving (tested) and lets query
        #: rewriting happen "without system downtime".
        self.translate_through_sql = translate_through_sql
        #: Idempotent reads (autocommit SELECTs, archive retrievals) are
        #: retried through this policy; writes are never retried here.
        self.read_retry = RetryPolicy(
            name="dm.read",
            max_attempts=3,
            base_delay_s=0.001,
            max_delay_s=0.05,
            seed=7,
            retryable=(InjectedFault, LockTimeout, ChecksumError, OSError,
                       TimeoutError),
            obs=self.obs,
        )
        # Last: the mapper issues counted queries through this layer.
        self.names = NameMapper(self, obs=self.obs)
        self.stats.reset()

    # -- partitioning ------------------------------------------------------

    def attach_database(self, key: str, database: Database) -> None:
        if key in self._databases:
            raise ValueError(f"database key {key!r} already attached")
        self._databases[key] = database

    def route_table(self, table: str, database_key: str) -> None:
        """Vertical partition: send requests for ``table`` elsewhere."""
        if database_key not in self._databases:
            raise ValueError(f"unknown database key {database_key!r}")
        self._routes[table] = database_key

    def database_for(self, table: str) -> Database:
        return self._databases[self._routes.get(table, "default")]

    @property
    def default_database(self) -> Database:
        return self._databases["default"]

    # -- database adapter -----------------------------------------------------

    def execute(self, statement: Statement, tx=None) -> Any:
        """Run a collection-object statement through the adapter."""
        if isinstance(statement, str):
            raise TypeError(
                "the DM API has no provisions for regular SQL calls (paper §5.4); "
                "pass a Select/Insert/Update/Delete collection object"
            )
        Deadline.check_current("dm.execute")
        database = self.database_for(statement.table)
        if self.translate_through_sql and tx is None and self._translatable(statement):
            statement = parse_sql(to_sql(statement))
        if isinstance(statement, Select):
            self.stats.queries += 1
            kind = "query"
        else:
            self.stats.edits += 1
            kind = "edit"
        self.stats.round_trips += 1
        # Autocommit SELECTs are idempotent — safe to retry on transient
        # failures.  Anything in a transaction or mutating runs exactly once.
        if kind == "query" and tx is None:
            def run():
                return self.read_retry.call(database.execute, statement)
        else:
            def run():
                return database.execute(statement, tx=tx)
        obs = self.obs
        if not obs.enabled:
            return run()
        started = time.perf_counter()
        with obs.span("dm.query", table=statement.table, kind=kind):
            result = run()
        obs.observe("dm.query_s", time.perf_counter() - started, kind=kind)
        return result

    def execute_batch(self, statements: list[Select]) -> list[Any]:
        """Run several autocommit SELECTs in grouped round trips.

        The multi-get behind :meth:`~repro.dm.dm.DataManager.fetch_page`:
        statements destined for the same database travel together through
        its ``execute_batch`` entry point (one round trip, one retry
        scope), falling back to per-statement execution for backends
        without one (sharded/replicated stacks route per statement
        anyway).  Results come back in statement order.  Reads only —
        writes keep their exactly-once path through :meth:`execute`.
        """
        if not statements:
            return []
        for statement in statements:
            if not isinstance(statement, Select):
                raise TypeError(
                    "execute_batch carries reads only; "
                    f"got {type(statement).__name__}"
                )
        Deadline.check_current("dm.execute_batch")
        prepared: list[Select] = []
        for statement in statements:
            if self.translate_through_sql and self._translatable(statement):
                statement = parse_sql(to_sql(statement))
            prepared.append(statement)
        self.stats.queries += len(prepared)
        self.stats.round_trips += 1
        # Group consecutive statements sharing a database so routed
        # (vertically partitioned) tables still batch with their kin.
        runs: list[tuple[Database, list[Select]]] = []
        for statement in prepared:
            database = self.database_for(statement.table)
            if runs and runs[-1][0] is database:
                runs[-1][1].append(statement)
            else:
                runs.append((database, [statement]))

        def run() -> list[Any]:
            results: list[Any] = []
            for database, group in runs:
                batch = getattr(database, "execute_batch", None)
                if batch is not None and len(group) > 1:
                    results.extend(batch(group))
                else:
                    results.extend(database.execute(s) for s in group)
            return results

        obs = self.obs
        if not obs.enabled:
            return self.read_retry.call(run)
        started = time.perf_counter()
        with obs.span("dm.batch", statements=len(prepared)):
            result = self.read_retry.call(run)
        obs.observe("dm.batch_s", time.perf_counter() - started)
        return result

    @staticmethod
    def _translatable(statement: Statement) -> bool:
        """SQL text cannot carry joins/blobs; those execute natively."""
        if isinstance(statement, Select):
            return statement.join is None
        if isinstance(statement, (Insert, Update)):
            values = statement.values if isinstance(statement, Insert) else statement.changes
            return all(not isinstance(value, (bytes, bytearray)) for value in values.values())
        return True

    def begin(self, table: str = "hle"):
        return self.database_for(table).begin()

    def commit(self, tx, table: str = "hle") -> None:
        self.database_for(table).commit(tx)

    def rollback(self, tx, table: str = "hle") -> None:
        self.database_for(table).rollback(tx)

    # -- filesystem adapter ------------------------------------------------------

    def store_payload(
        self, rel_path: str, payload: bytes, prefer_archive: Optional[str] = None
    ):
        with self.obs.span("dm.io.write", path=rel_path):
            item = self.storage.place(rel_path, payload, prefer=prefer_archive)
        self.stats.files_written += 1
        self.stats.bytes_written += len(payload)
        self.obs.count("dm.io.files_written")
        self.obs.count("dm.io.bytes_written", len(payload))
        return item

    def read_item(self, resolved: ResolvedName) -> bytes:
        """Read bytes for a constructed filename."""
        archive_id = self._archive_for_root(resolved.root)
        with self.obs.span("dm.io.read", path=resolved.path):
            # Retried: a ChecksumError here means the *read* was corrupt
            # (flaky controller), and a re-read can come back clean.
            payload = self.read_retry.call(
                self.storage.retrieve, archive_id, resolved.path
            )
        self.stats.files_read += 1
        self.stats.bytes_read += len(payload)
        self.obs.count("dm.io.files_read")
        self.obs.count("dm.io.bytes_read", len(payload))
        return payload

    def local_path(self, resolved: ResolvedName) -> Path:
        """Direct path for external programs (the §4.2 'copy files' path)."""
        archive_id = self._archive_for_root(resolved.root)
        return self.storage.local_path(archive_id, resolved.path)

    def _archive_for_root(self, root: str) -> str:
        for archive_id in self.storage.archive_ids():
            if str(self.storage.archive(archive_id).root) == root:
                return archive_id
        raise KeyError(f"no registered archive with root {root!r}")

    # -- logging -------------------------------------------------------------------

    def log(self, component: str, message: str, level: str = "info",
            user_id: Optional[int] = None) -> None:
        database = self.database_for("ops_log")
        next_id = database.allocate_id("ops_log", "log_id")
        database.execute(
            Insert(
                "ops_log",
                {"log_id": next_id, "level": level, "component": component,
                 "message": message, "user_id": user_id},
            )
        )
