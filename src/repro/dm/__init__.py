"""The Data Management (DM) component: I/O, semantic and process layers,
sessions, name mapping and call redirection (paper §4-§5)."""

from .dm import DataManager, HlePage
from .io_layer import IoLayer, IoStats
from .maintenance import MaintenanceService, PurgeReport, PurgeRule
from .naming import NameMapper, NameMappingError, ResolvedName
from .process import LoadReport, ProcessLayer, WorkflowError
from .redirect import DmRouter, NodeStats
from .reports import PredefinedQueries, Reports
from .semantic import EntityNotFound, SemanticLayer
from .sessions import SESSION_KINDS, Session, SessionCache

__all__ = [
    "DataManager",
    "DmRouter",
    "EntityNotFound",
    "HlePage",
    "IoLayer",
    "IoStats",
    "LoadReport",
    "MaintenanceService",
    "NameMapper",
    "NameMappingError",
    "NodeStats",
    "PredefinedQueries",
    "ProcessLayer",
    "PurgeReport",
    "PurgeRule",
    "Reports",
    "ResolvedName",
    "SESSION_KINDS",
    "SemanticLayer",
    "Session",
    "SessionCache",
    "WorkflowError",
]
