"""The PL frontend (paper §5.1).

"Primary controller of sessions and requests, dispatch and scheduling of
requests to processing subsystems.  There is one instance of this
service."  The front end interprets abstract requests: it looks up the
request type's strategy, runs the four phases in order, honours priority
scheduling, bounds the number of in-flight requests (the paper's
processing tests keep "no more than 20 requests in the system at any
given time"), and supports cancellation with per-phase cleanup.
"""

from __future__ import annotations

import contextvars
import heapq
import itertools
import threading
import time
from typing import Optional

from ..obs import Observability, resolve as resolve_obs
from ..resil import BreakerState, Deadline
from .animation import AnimationStrategy
from .directory import GlobalDirectory
from .manager import IdlServerManager
from .product_cache import ProductCache, fingerprint
from .requests import (
    AnalysisRequest,
    AnalysisStrategy,
    DEFAULT_STRATEGIES,
    Phase,
    RequestCancelled,
    RequestFailed,
    StrategyContext,
)


class UnknownRequestType(Exception):
    """No strategy registered for the request's algorithm."""


class Frontend:
    """Interpreter and scheduler of abstract analysis requests."""

    #: When less than this fraction of the ambient deadline budget is
    #: left at execute time, the request degrades to a cheaper
    #: approximation instead of blowing the budget mid-computation.
    degrade_fraction = 0.5

    #: Resolution caps applied to a degraded request's parameters.
    degraded_parameters = {
        "n_pixels": 16,
        "n_bins": 16,
        "n_energy_bins": 8,
        "n_frames": 1,
    }

    def __init__(
        self,
        dm,
        idl_manager: IdlServerManager,
        directory: Optional[GlobalDirectory] = None,
        node_name: str = "server",
        max_in_flight: int = 20,
        n_workers: int = 0,
        obs: Optional[Observability] = None,
        product_cache: Optional[ProductCache] = None,
        cache_products: bool = True,
    ):
        self.dm = dm
        self.obs = obs if obs is not None else resolve_obs(getattr(dm, "obs", None))
        #: Derived-product memoization: repeat-identical requests are
        #: served in O(lookup) with zero IDL invocations (§3.5, §5.3).
        #: ``cache_products=False`` gives an uncached frontend (workload
        #: characterization runs that must exercise the full pipeline).
        if cache_products:
            self.product_cache: Optional[ProductCache] = (
                product_cache if product_cache is not None
                else ProductCache(dm, obs=self.obs)
            )
        else:
            self.product_cache = None
        self.context = StrategyContext(dm, idl_manager, node_name=node_name)
        self.directory = directory or GlobalDirectory()
        self.directory.register(f"frontend:{node_name}", "frontend", node_name)
        self.strategies: dict[str, AnalysisStrategy] = dict(DEFAULT_STRATEGIES)
        self.strategies[AnimationStrategy.algorithm] = AnimationStrategy()
        self.max_in_flight = max_in_flight
        self._queue: list[
            tuple[int, int, AnalysisRequest, Optional[contextvars.Context]]
        ] = []
        self._ticket = itertools.count()
        self._queue_lock = threading.Lock()
        self._queue_ready = threading.Condition(self._queue_lock)
        self._in_flight = 0
        self.completed: list[AnalysisRequest] = []
        self._workers: list[threading.Thread] = []
        self._shutdown = False
        for worker_index in range(n_workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"pl-worker-{worker_index}", daemon=True
            )
            thread.start()
            self._workers.append(thread)

    # -- strategy registry -----------------------------------------------------

    def register_strategy(self, strategy: AnalysisStrategy) -> None:
        """Incorporate a new request type (new processing environment,
        §5.1: "defining the strategy that extends the existing framework")."""
        self.strategies[strategy.algorithm] = strategy

    def _strategy_for(self, request: AnalysisRequest) -> AnalysisStrategy:
        strategy = self.strategies.get(request.algorithm)
        if strategy is None:
            raise UnknownRequestType(request.algorithm)
        return strategy

    # -- synchronous path ---------------------------------------------------------

    def estimate(self, request: AnalysisRequest) -> AnalysisRequest:
        """Run only the estimation phase; returns immediately."""
        strategy = self._strategy_for(request)
        request.plan = strategy.estimate(request, self.context)
        request.phase = Phase.ESTIMATED
        return request

    def run(self, request: AnalysisRequest, estimate: bool = False) -> AnalysisRequest:
        """Run the phases in order, synchronously."""
        started = time.perf_counter()
        with self.obs.span("pl.run", algorithm=request.algorithm) as span:
            result = self._run_or_serve(request, estimate)
            span.set_tag("phase", result.phase.name.lower())
            elapsed = time.perf_counter() - started
            self.obs.observe("pl.request_s", elapsed,
                             algorithm=request.algorithm)
            threshold = self.obs.slowlog.threshold_for("pl.run")
            if threshold is not None and elapsed >= threshold:
                self.obs.slow_op(
                    "pl.run", elapsed, threshold,
                    algorithm=request.algorithm,
                    phase=result.phase.name.lower(),
                    fingerprint=fingerprint(request.algorithm, request.hle_id,
                                            request.parameters),
                )
        self.obs.count("pl.requests", algorithm=request.algorithm,
                       phase=result.phase.name.lower())
        return result

    def _run_or_serve(self, request: AnalysisRequest, estimate: bool) -> AnalysisRequest:
        """Product-cache front door around the four phases.

        Fresh hit → serve in O(lookup).  Miss with the IDL breaker open →
        serve a *stale* entry with ``degraded=True`` if one survives
        (stale-while-degraded).  Otherwise run the phases under
        singleflight, so N concurrent identical submits execute once and
        the followers are served from the entry the leader committed.
        """
        cache = self.product_cache
        if cache is None or request.parameters.get("force"):
            return self._run_phases(request, estimate)
        key = fingerprint(request.algorithm, request.hle_id, request.parameters)
        entry = cache.lookup(request.user, key)
        if entry is not None:
            self.obs.count("pl.product_cache.hits", algorithm=request.algorithm)
            return self._serve_from_cache(request, entry)
        self.obs.count("pl.product_cache.misses", algorithm=request.algorithm)
        breaker = getattr(self.context.idl, "breaker", None)
        if breaker is not None and breaker.state is BreakerState.OPEN:
            stale = cache.lookup_stale(request.user, key)
            if stale is not None:
                self.obs.count("pl.product_cache.stale_served",
                               algorithm=request.algorithm)
                return self._serve_from_cache(request, stale, degraded=True)

        def _lead() -> AnalysisRequest:
            result = self._run_phases(request, estimate)
            if (result.phase is Phase.COMMITTED and result.product is not None
                    and result.ana_id is not None):
                cache.store(key, request.algorithm, result.product, result.ana_id)
            return result

        result, leading = cache.flight.do(key, _lead)
        if leading:
            return result
        # Follower: the leader ran the phases on its *own* request; this
        # one gets the committed entry — or its own full run if the
        # leader failed (no entry to share).
        entry = cache.lookup(request.user, key)
        if entry is not None:
            self.obs.count("pl.product_cache.coalesced",
                           algorithm=request.algorithm)
            return self._serve_from_cache(request, entry)
        return self._run_phases(request, estimate)

    def _serve_from_cache(self, request: AnalysisRequest, entry,
                          degraded: bool = False) -> AnalysisRequest:
        request.product = entry.product
        request.ana_id = entry.ana_id
        request.parameters["served_from_cache"] = True
        if degraded:
            request.parameters["degraded"] = True
        request.phase = Phase.COMMITTED
        request.completed_at = time.monotonic()
        self.completed.append(request)
        return request

    def _run_phases(self, request: AnalysisRequest, estimate: bool) -> AnalysisRequest:
        strategy = self._strategy_for(request)
        try:
            if estimate:
                request.check_cancelled()
                request.plan = strategy.estimate(request, self.context)
                request.phase = Phase.ESTIMATED
                if not request.plan.feasible:
                    raise RequestFailed(f"infeasible: {request.plan.reason}")
            request.check_cancelled()
            self._maybe_degrade(request)
            request.raw_result = strategy.execute(request, self.context)
            request.phase = Phase.EXECUTED
            request.check_cancelled()
            request.product = strategy.deliver(request, self.context)
            request.phase = Phase.DELIVERED
            request.check_cancelled()
            request.ana_id = strategy.commit(request, self.context)
            request.phase = Phase.COMMITTED
        except RequestCancelled:
            strategy.cleanup(request, self.context)
            request.phase = Phase.CANCELLED
        except Exception as exc:
            strategy.cleanup(request, self.context)
            request.phase = Phase.FAILED
            request.error = str(exc)
        request.completed_at = time.monotonic()
        self.completed.append(request)
        return request

    def _maybe_degrade(self, request: AnalysisRequest) -> None:
        """Graceful degradation against the ambient :class:`Deadline`.

        A blown budget fails fast (the raise is caught by the phase
        runner, producing a FAILED request).  A nearly-spent budget caps
        the resolution parameters to a cheap approximation and marks the
        result ``degraded`` so the client can see it got the fallback.
        """
        deadline = Deadline.current()
        if deadline is None:
            return
        deadline.check(f"pl.execute({request.algorithm})")
        if deadline.fraction_remaining() >= self.degrade_fraction:
            return
        for parameter, cap in self.degraded_parameters.items():
            value = request.parameters.get(parameter)
            if isinstance(value, int) and value > cap:
                request.parameters[parameter] = cap
        request.parameters["degraded"] = True
        self.obs.count("pl.degraded", algorithm=request.algorithm)

    # -- queued/asynchronous path ----------------------------------------------------

    def submit(self, request: AnalysisRequest) -> AnalysisRequest:
        """Enqueue under priority scheduling (needs worker threads).

        The submitter's tracing context rides along, so a ``pl.run`` span
        executed on a worker thread nests under the span (web request,
        batch job) that submitted it.
        """
        if not self._workers:
            raise RuntimeError("frontend has no workers; use run() or pass n_workers")
        # The context carries the tracing span AND any ambient Deadline
        # onto the worker thread.
        copy_needed = self.obs.enabled or Deadline.current() is not None
        ctx = contextvars.copy_context() if copy_needed else None
        with self._queue_ready:
            heapq.heappush(
                self._queue, (request.priority, next(self._ticket), request, ctx)
            )
            self.obs.set_gauge("pl.queue_depth", len(self._queue))
            self._queue_ready.notify()
        return request

    def _worker_loop(self) -> None:
        while True:
            with self._queue_ready:
                while not self._queue or self._in_flight >= self.max_in_flight:
                    if self._shutdown:
                        return
                    self._queue_ready.wait(timeout=0.5)
                _priority, _ticket, request, ctx = heapq.heappop(self._queue)
                self._in_flight += 1
                self.obs.set_gauge("pl.queue_depth", len(self._queue))
                self.obs.set_gauge("pl.in_flight", self._in_flight)
            try:
                if ctx is not None:
                    ctx.run(self.run, request)
                else:
                    self.run(request)
            finally:
                with self._queue_ready:
                    self._in_flight -= 1
                    self.obs.set_gauge("pl.in_flight", self._in_flight)
                    self._queue_ready.notify_all()

    def drain(self, timeout_s: float = 60.0) -> None:
        """Wait until the queue is empty and nothing is in flight."""
        deadline = time.monotonic() + timeout_s
        with self._queue_ready:
            while self._queue or self._in_flight:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError("frontend drain timed out")
                self._queue_ready.wait(timeout=min(0.5, remaining))

    def close(self) -> None:
        with self._queue_ready:
            self._shutdown = True
            self._queue_ready.notify_all()

    # -- statistics ---------------------------------------------------------------------

    def stats(self) -> dict:
        committed = [r for r in self.completed if r.phase is Phase.COMMITTED]
        sojourns = [r.sojourn_s for r in committed if r.sojourn_s is not None]
        return {
            "completed": len(self.completed),
            "committed": len(committed),
            "failed": sum(1 for r in self.completed if r.phase is Phase.FAILED),
            "cancelled": sum(1 for r in self.completed if r.phase is Phase.CANCELLED),
            "queries": self.context.queries,
            "edits": self.context.edits,
            "avg_sojourn_s": sum(sojourns) / len(sojourns) if sojourns else 0.0,
        }
