"""The PL's global directory service (paper §5.1).

"Provides a directory of all services related to the processing logic.
There is one instance of this service."  Server managers register here
with heartbeats; interactions are self-recovering — stale registrations
are purged, and lookups only return live services, so "IDL server
managers can be dynamically added and removed as needed without halting
the system".
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional


@dataclass
class ServiceRecord:
    service_id: str
    kind: str                 # "idl_manager" | "frontend" | ...
    location: str             # node name
    capacity: int = 1
    registered_at: float = field(default_factory=time.monotonic)
    heartbeat_at: float = field(default_factory=time.monotonic)

    def alive(self, timeout_s: float) -> bool:
        return time.monotonic() - self.heartbeat_at <= timeout_s


class GlobalDirectory:
    """Registry of PL services with heartbeat-based liveness."""

    def __init__(self, heartbeat_timeout_s: float = 30.0):
        self._records: dict[str, ServiceRecord] = {}
        self._lock = threading.Lock()
        self.heartbeat_timeout_s = heartbeat_timeout_s

    def register(self, service_id: str, kind: str, location: str, capacity: int = 1) -> None:
        with self._lock:
            self._records[service_id] = ServiceRecord(service_id, kind, location, capacity)

    def deregister(self, service_id: str) -> None:
        with self._lock:
            self._records.pop(service_id, None)

    def heartbeat(self, service_id: str) -> None:
        with self._lock:
            record = self._records.get(service_id)
            if record is not None:
                record.heartbeat_at = time.monotonic()

    def lookup(self, kind: str) -> list[ServiceRecord]:
        """All live services of a kind; purges dead registrations."""
        with self._lock:
            dead = [
                service_id
                for service_id, record in self._records.items()
                if not record.alive(self.heartbeat_timeout_s)
            ]
            for service_id in dead:
                del self._records[service_id]
            return [record for record in self._records.values() if record.kind == kind]

    def get(self, service_id: str) -> Optional[ServiceRecord]:
        with self._lock:
            return self._records.get(service_id)

    @property
    def size(self) -> int:
        with self._lock:
            return len(self._records)
