"""Video-animation analysis — an absorbed change (§3.1).

The paper lists "producing video animation rather than just still
images" among the changes HEDC absorbed after going operational.  In the
strategy framework that is exactly one new strategy: an imaging run per
time sub-window, delivered as a multi-frame product (frame PGMs plus a
manifest), committed through the unchanged DM services.
"""

from __future__ import annotations

import json
from typing import Any

import numpy as np

from ..analysis import AnalysisProduct, back_projection, render_pgm
from .requests import AnalysisRequest, AnalysisStrategy, RequestFailed, StrategyContext


class AnimationStrategy(AnalysisStrategy):
    """Back-projection movie: one frame per time slice of the event."""

    algorithm = "animation"

    def execute(self, request: AnalysisRequest, context: StrategyContext) -> list[np.ndarray]:
        hle = context.fetch_hle(request.user, request.hle_id)
        request.hle_row = hle
        photons = context.load_photons_for(hle)
        context.check_existing(request.user, request.hle_id, self.algorithm)
        n_frames = int(request.parameters.get("n_frames", 6))
        n_pixels = int(request.parameters.get("n_pixels", 16))
        if n_frames < 2:
            raise RequestFailed("an animation needs at least 2 frames")
        if len(photons) == 0:
            raise RequestFailed("no photons in the event window")
        center = (
            float(hle.get("position_x_arcsec") or 0.0),
            float(hle.get("position_y_arcsec") or 0.0),
        )
        edges = np.linspace(photons.start, photons.end, n_frames + 1)
        frames: list[np.ndarray] = []
        for frame_index in range(n_frames):
            request.check_cancelled()  # frames are a natural cancel point
            window = photons.select_time(edges[frame_index], edges[frame_index + 1])
            image = back_projection(
                window, n_pixels=n_pixels, source_position=center,
                center_arcsec=center,
            )
            frames.append(image.image)
        request.parameters["n_photons_used"] = len(photons)
        return frames

    def deliver(self, request: AnalysisRequest, context: StrategyContext) -> AnalysisProduct:
        frames: list[np.ndarray] = request.raw_result
        product = AnalysisProduct(self.algorithm, dict(request.parameters))
        # Shared grayscale range across frames so the movie doesn't flicker.
        low = min(float(frame.min()) for frame in frames)
        high = max(float(frame.max()) for frame in frames)
        span = (high - low) or 1.0
        for frame in frames:
            normalized = (frame - low) / span
            product.add_image(render_pgm(normalized))
        manifest = {
            "frames": len(frames),
            "n_pixels": int(frames[0].shape[0]),
            "value_range": [low, high],
        }
        product.summary = manifest
        product.log(f"animation {request.request_id}: {json.dumps(manifest)}")
        return product

    def commit_fields(self, request: AnalysisRequest, hle: dict) -> dict[str, Any]:
        fields = super().commit_fields(request, hle)
        frames: list[np.ndarray] = request.raw_result
        fields.update(
            {
                "n_pixels": int(frames[0].shape[0]),
                "n_bins": len(frames),  # frame count rides the bin column
                "n_photons_used": request.parameters.get("n_photons_used"),
                "notes": f"animation, {len(frames)} frames",
            }
        )
        return fields
