"""User-submitted analysis routines (§3.3).

"There is also the possibility for users to submit analysis routines
that can be included into the system and made available to other users."

A submitted routine is IDL source defining one function.  The library
validates it (it must parse, define exactly the declared function, and
pass a smoke execution in a sandboxed interpreter with a tight step
budget), stores the source through the DM (file + metadata, like any
derived data), and — once published — every IDL server loads it at
start/restart, so the new routine becomes part of the system without
halting anything.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..idl import IdlResourceError, IdlRuntimeError, IdlSyntaxError, Interpreter
from ..idl.ast_nodes import ProcedureDef
from ..idl.parser import parse as parse_idl
from ..metadb import Aggregate, Comparison, Insert, Select, Update
from ..security import User, check_right

#: Step budget for validation runs: user code must terminate quickly on
#: the smoke input or it is rejected outright.
_VALIDATION_BUDGET = 200_000


class RoutineRejected(Exception):
    """Submitted source failed validation."""


@dataclass(frozen=True)
class Routine:
    name: str
    owner_id: int
    source: str
    description: str
    public: bool


class RoutineLibrary:
    """Stores, validates and serves user-submitted IDL routines."""

    def __init__(self, dm):
        self.dm = dm

    # -- validation -------------------------------------------------------------

    @staticmethod
    def validate(name: str, source: str) -> None:
        """Reject source that does not safely define function ``name``."""
        try:
            nodes = parse_idl(source)
        except IdlSyntaxError as exc:
            raise RoutineRejected(f"does not parse: {exc}") from exc
        definitions = [node for node in nodes if isinstance(node, ProcedureDef)]
        if len(definitions) != len(nodes):
            raise RoutineRejected("only PRO/FUNCTION definitions are allowed")
        functions = [node for node in definitions if node.is_function]
        if [node.name for node in functions] != [name.lower()]:
            raise RoutineRejected(
                f"source must define exactly one function named {name!r}"
            )
        # Smoke execution on a small array with a tight step budget.
        sandbox = Interpreter(step_budget=_VALIDATION_BUDGET)
        sandbox.run(source)
        arity = len(functions[0].params)
        smoke_args = [np.arange(16, dtype=float)] + [1.0] * (arity - 1)
        try:
            sandbox.call(name, *smoke_args[:arity])
        except IdlResourceError as exc:
            raise RoutineRejected(f"routine does not terminate quickly: {exc}") from exc
        except IdlRuntimeError as exc:
            raise RoutineRejected(f"routine fails on smoke input: {exc}") from exc

    # -- submission --------------------------------------------------------------

    def submit(self, user: User, name: str, source: str,
               description: str = "") -> Routine:
        """Validate and store a routine (requires the upload right)."""
        check_right(user, "upload")
        name = name.lower()
        if self._find_row(name) is not None:
            raise RoutineRejected(f"a routine named {name!r} already exists")
        self.validate(name, source)
        item_id = f"routine:{name}"
        stored = self.dm.io.store_payload(f"routines/{name}.pro", source.encode())
        tx = self.dm.io.begin()
        try:
            rows = self.dm.io.execute(
                Select("admin_config", aggregates=[Aggregate("max", "config_id", "m")]),
            )
            self.dm.io.execute(
                Insert(
                    "admin_config",
                    {
                        "config_id": (rows[0]["m"] or 0) + 1,
                        "section": "routine",
                        "key": name,
                        "value": f"{user.user_id}:0",  # owner:public flag
                        "description": description,
                    },
                ),
                tx=tx,
            )
            self.dm.io.names.register_file(
                item_id, stored.archive_id, stored.rel_path, role="data",
                size_bytes=stored.size, checksum=stored.checksum, tx=tx,
            )
        except Exception:
            self.dm.io.rollback(tx)
            self.dm.io.storage.archive(stored.archive_id).remove(stored.rel_path)
            raise
        self.dm.io.commit(tx)
        return Routine(name, user.user_id, source, description, public=False)

    def publish(self, user: User, name: str) -> None:
        """Make a routine available to every user (and every server)."""
        row = self._find_row(name)
        if row is None:
            raise KeyError(f"no routine named {name!r}")
        owner_id = int(row["value"].split(":", 1)[0])
        if not (user.is_admin or user.user_id == owner_id):
            from ..security import ConstraintViolation

            raise ConstraintViolation("only the owner may publish a routine")
        self.dm.io.execute(
            Update(
                "admin_config",
                {"value": f"{owner_id}:1"},
                (Comparison("section", "=", "routine") & Comparison("key", "=", name)),
            )
        )

    # -- lookup ---------------------------------------------------------------------

    def _find_row(self, name: str) -> Optional[dict]:
        rows = self.dm.io.execute(
            Select(
                "admin_config",
                where=(Comparison("section", "=", "routine")
                       & Comparison("key", "=", name.lower())),
            )
        )
        return rows[0] if rows else None

    def get(self, name: str) -> Routine:
        row = self._find_row(name)
        if row is None:
            raise KeyError(f"no routine named {name!r}")
        owner_raw, public_raw = row["value"].split(":", 1)
        names = self.dm.io.names.resolve_files(f"routine:{row['key']}")
        source = self.dm.io.read_item(names[0]).decode()
        return Routine(
            row["key"], int(owner_raw), source, row["description"] or "",
            public=public_raw == "1",
        )

    def published(self) -> list[Routine]:
        rows = self.dm.io.execute(
            Select("admin_config", where=Comparison("section", "=", "routine"))
        )
        return [
            self.get(row["key"])
            for row in rows
            if row["value"].endswith(":1")
        ]

    # -- server integration ------------------------------------------------------------

    def load_into(self, interpreter: Interpreter) -> int:
        """Load every published routine into an interpreter session."""
        count = 0
        for routine in self.published():
            interpreter.run(routine.source)
            count += 1
        return count


class UserRoutineStrategy:
    """Runs a published user routine over an event's photons.

    A thin strategy (§5.1) so user-submitted routines slot into the same
    four-phase request model as the built-in analyses: the request's
    ``routine`` parameter names the function; it is applied to the bound
    photon energies (the most common submitted-analysis shape).
    """

    algorithm = "user_routine"

    def estimate(self, request, context):
        from .requests import AnalysisStrategy

        return AnalysisStrategy.estimate(self, request, context)

    def execute(self, request, context):
        from .requests import RequestFailed

        routine_name = request.parameters.get("routine")
        if not routine_name:
            raise RequestFailed("parameter 'routine' is required")
        hle = context.fetch_hle(request.user, request.hle_id)
        request.hle_row = hle
        photons = context.load_photons_for(hle)
        context.check_existing(request.user, request.hle_id, self.algorithm)
        source = f"result = {routine_name.lower()}(ph_energies)\nresult"
        outcome = context.idl.invoke(source, photons=photons)
        if not outcome.ok:
            raise RequestFailed(f"user routine failed: {outcome.error}")
        request.parameters["n_photons_used"] = len(photons)
        return outcome.value

    def deliver(self, request, context):
        from ..analysis import AnalysisProduct, render_series_pgm

        value = request.raw_result
        product = AnalysisProduct(self.algorithm, dict(request.parameters))
        series = np.atleast_1d(np.asarray(value, dtype=float))
        product.add_image(render_series_pgm(np.abs(series) + 1e-12))
        product.summary = {"routine": request.parameters.get("routine"),
                           "n_values": int(series.size)}
        product.log(f"user routine {request.parameters.get('routine')!r}")
        return product

    def commit(self, request, context):
        from .requests import AnalysisStrategy

        return AnalysisStrategy.commit(self, request, context)

    def commit_fields(self, request, hle):
        from .requests import AnalysisStrategy

        fields = AnalysisStrategy.commit_fields(self, request, hle)
        fields["notes"] = f"user routine: {request.parameters.get('routine')}"
        fields["n_photons_used"] = request.parameters.get("n_photons_used")
        return fields

    def cleanup(self, request, context):
        request.raw_result = None
        request.product = None
