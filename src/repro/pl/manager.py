"""The IDL server manager (paper §5.1).

"Multiple native IDL interpreters are managed (start, stop, restart).
It provides the possibility to invoke IDL routines synchronously and
asynchronously and implements error handling (timeout, resource drain).
Every processing client executes one instance of this service."
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import Future
from typing import Callable, Optional

from ..idl import IdlServer, InvocationResult, ServerState
from ..obs import Observability, resolve as resolve_obs
from ..resil import CircuitBreaker, RetryPolicy
from ..rhessi import PhotonList
from .directory import GlobalDirectory


class NoServerAvailable(Exception):
    """All managed IDL servers are busy or crashed."""


class _ServerCrashed(Exception):
    """Internal retry signal: the serving interpreter crashed mid-call."""

    def __init__(self, result: InvocationResult):
        super().__init__(result.error or "server crashed")
        self.result = result


class IdlServerManager:
    """Manages a pool of IDL servers on one processing node."""

    def __init__(
        self,
        node_name: str = "server",
        n_servers: int = 1,
        directory: Optional[GlobalDirectory] = None,
        default_timeout_s: Optional[float] = None,
        fault_hook: Optional[Callable[[], None]] = None,
        routine_library=None,
        obs: Optional[Observability] = None,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        if n_servers < 1:
            raise ValueError("need at least one IDL server")
        self.node_name = node_name
        self.obs = resolve_obs(obs)
        #: Backoff/classification for crash-retried invocations; the
        #: per-call ``retries`` argument overrides ``max_attempts``.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=2,
            base_delay_s=0.0,
            jitter=0.0,
            name=f"pl.{node_name}",
            obs=self.obs,
        )
        #: Outcome-window breaker over the whole pool: a persistently
        #: failing IDL tier trips it open, letting callers (the frontend's
        #: stale-while-degraded path, the web tier's load shedding) fail
        #: over instead of queueing on a dead dependency.  Only *final*
        #: outcomes are recorded — crashes absorbed by the retry/restart
        #: machinery stay invisible, so transient chaos does not trip it.
        self.breaker = breaker or CircuitBreaker(
            f"pl.idl.{node_name}",
            window=20,
            min_calls=10,
            failure_rate=0.6,
            cooldown_s=2.0,
            obs=resolve_obs(obs),
        )
        self.routine_library = routine_library
        on_start = None
        if routine_library is not None:
            on_start = routine_library.load_into
        self._on_start = on_start
        self._servers = [
            IdlServer(
                name=f"{node_name}/idl{index}",
                default_timeout_s=default_timeout_s,
                fault_hook=fault_hook,
                on_start=on_start,
                obs=self.obs,
            )
            for index in range(n_servers)
        ]
        self._lock = threading.Lock()
        self.directory = directory
        if directory is not None:
            directory.register(
                f"idl_manager:{node_name}", "idl_manager", node_name, capacity=n_servers
            )
        self.recoveries = 0

    # -- lifecycle ------------------------------------------------------------

    def start_all(self) -> None:
        for server in self._servers:
            server.start()
        self._heartbeat()

    def stop_all(self) -> None:
        for server in self._servers:
            server.stop()
        if self.directory is not None:
            self.directory.deregister(f"idl_manager:{self.node_name}")

    def add_server(self) -> IdlServer:
        """Dynamically grow capacity without halting the system (§5.1)."""
        with self._lock:
            server = IdlServer(
                name=f"{self.node_name}/idl{len(self._servers)}",
                on_start=self._on_start,
                obs=self.obs,
            )
            server.start()
            self._servers.append(server)
            self._update_directory_capacity()
            return server

    def remove_server(self) -> None:
        with self._lock:
            if len(self._servers) <= 1:
                raise ValueError("cannot remove the last server")
            server = self._servers.pop()
            server.stop()
            self._update_directory_capacity()

    def _update_directory_capacity(self) -> None:
        if self.directory is not None:
            self.directory.register(
                f"idl_manager:{self.node_name}", "idl_manager", self.node_name,
                capacity=len(self._servers),
            )
        self.obs.set_gauge("pl.servers", len(self._servers), node=self.node_name)

    def _record_recovery(self) -> None:
        """One crash-recovery: count it and refresh the GlobalDirectory
        registration (capacity + heartbeat) so the entry never goes stale
        while the manager self-heals (§5.1)."""
        self.recoveries += 1
        self.obs.count("pl.recoveries", node=self.node_name)
        self._update_directory_capacity()
        if self.directory is not None:
            self.directory.heartbeat(f"idl_manager:{self.node_name}")

    def broadcast_source(self, source: str) -> int:
        """Run IDL source on every READY server — hot-loading a newly
        published routine without halting the system (§5.1)."""
        loaded = 0
        with self._lock:
            servers = list(self._servers)
        for server in servers:
            if server.available:
                result = server.invoke(source)
                if result.ok:
                    loaded += 1
        return loaded

    def _heartbeat(self) -> None:
        if self.directory is not None:
            self.directory.heartbeat(f"idl_manager:{self.node_name}")

    @property
    def n_servers(self) -> int:
        return len(self._servers)

    @property
    def n_available(self) -> int:
        return sum(1 for server in self._servers if server.available)

    # -- acquisition ----------------------------------------------------------

    def _acquire(self) -> IdlServer:
        """A READY server; crashed servers are restarted on the way
        (self-recovering interactions, §5.1)."""
        with self._lock:
            for server in self._servers:
                if server.state is ServerState.CRASHED:
                    server.restart()
                    self._record_recovery()
            for server in self._servers:
                if server.available:
                    return server
        self.obs.count("pl.no_server_available", node=self.node_name)
        raise NoServerAvailable(f"no IDL server available on {self.node_name}")

    # -- invocation --------------------------------------------------------------

    def invoke(
        self,
        source: str,
        photons: Optional[PhotonList] = None,
        timeout_s: Optional[float] = None,
        retries: int = 1,
    ) -> InvocationResult:
        """Run IDL source synchronously, restarting and retrying on crash.

        Raises :class:`~repro.resil.BreakerOpen` without touching a
        server while the pool breaker is open.
        """
        self.breaker.check()
        self._heartbeat()
        started = time.perf_counter()
        try:
            with self.obs.span("pl.invoke", node=self.node_name):
                result = self._invoke_with_retries(source, photons, timeout_s, retries)
        except Exception:
            # NoServerAvailable / exhausted restart budgets: the final
            # outcome is a failure.
            self.breaker.record_failure()
            raise
        elapsed = time.perf_counter() - started
        self.obs.observe("pl.invoke_s", elapsed, node=self.node_name)
        threshold = self.obs.slowlog.threshold_for("pl.invoke")
        if threshold is not None and elapsed >= threshold:
            head = " ".join(source.split())[:120]
            self.obs.slow_op("pl.invoke", elapsed, threshold,
                             node=self.node_name, ok=result.ok, source=head)
        if not result.ok and result.error and "resource drain" in result.error:
            self.obs.count("pl.resource_drains", node=self.node_name)
        if result.ok:
            self.breaker.record_success()
        else:
            self.breaker.record_failure()
        return result

    def _invoke_with_retries(
        self,
        source: str,
        photons: Optional[PhotonList],
        timeout_s: Optional[float],
        retries: int,
    ) -> InvocationResult:
        """One invocation under :class:`RetryPolicy`.

        A crash restarts the server (bounded: at most ``2 * n_servers``
        restarts per invocation, so a persistently crashing routine cannot
        spin the pool forever) and retries up to ``retries`` more times.
        :class:`NoServerAvailable` is never retried — a drained pool is
        surfaced to the caller immediately.
        """
        restart_budget = max(2, 2 * len(self._servers))
        restarts = 0

        def attempt_once() -> InvocationResult:
            nonlocal restarts
            server = self._acquire()
            if photons is not None:
                server.bind_photons(photons)
            result = server.invoke(source, timeout_s=timeout_s)
            if result.ok or server.state is not ServerState.CRASHED:
                return result
            if restarts >= restart_budget:
                self.obs.count("pl.no_server_available", node=self.node_name)
                raise NoServerAvailable(
                    f"restart budget ({restart_budget}) exhausted on "
                    f"{self.node_name}: {result.error}"
                )
            server.restart()
            restarts += 1
            self._record_recovery()
            raise _ServerCrashed(result)

        policy = self.retry_policy.replace(
            max_attempts=max(1, retries + 1), retryable=(_ServerCrashed,)
        )
        try:
            return policy.call(attempt_once)
        except _ServerCrashed as exc:
            # Retries exhausted: the request failed, the system is healthy
            # again (the last restart already happened above).
            return exc.result

    def invoke_async(
        self,
        source: str,
        photons: Optional[PhotonList] = None,
        timeout_s: Optional[float] = None,
    ) -> "Future[InvocationResult]":
        future: Future = Future()
        ctx = contextvars.copy_context()

        def worker() -> None:
            try:
                future.set_result(
                    ctx.run(self.invoke, source, photons=photons, timeout_s=timeout_s)
                )
            except Exception as exc:
                future.set_exception(exc)

        threading.Thread(target=worker, daemon=True, name=f"{self.node_name}-invoke").start()
        return future

    def stats(self) -> dict:
        return {
            "node": self.node_name,
            "servers": len(self._servers),
            "available": self.n_available,
            "invocations": sum(server.invocations for server in self._servers),
            "failures": sum(server.failures for server in self._servers),
            "restarts": sum(server.restarts for server in self._servers),
            "recoveries": self.recoveries,
        }
