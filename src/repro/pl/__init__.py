"""The Processing Logic (PL) component (paper §5.1): frontend, IDL server
manager, global directory, and the four-phase request/strategy framework."""

from .animation import AnimationStrategy
from .directory import GlobalDirectory, ServiceRecord
from .routines import Routine, RoutineLibrary, RoutineRejected, UserRoutineStrategy
from .frontend import Frontend, UnknownRequestType
from .manager import IdlServerManager, NoServerAvailable
from .product_cache import CachedProduct, ProductCache, fingerprint
from .requests import (
    DEFAULT_STRATEGIES,
    AnalysisRequest,
    AnalysisStrategy,
    ExecutionPlan,
    HistogramStrategy,
    ImagingStrategy,
    LightcurveStrategy,
    Phase,
    RequestCancelled,
    RequestFailed,
    SpectrogramStrategy,
    StrategyContext,
)

__all__ = [
    "AnalysisRequest",
    "AnimationStrategy",
    "AnalysisStrategy",
    "CachedProduct",
    "DEFAULT_STRATEGIES",
    "ProductCache",
    "fingerprint",
    "ExecutionPlan",
    "Frontend",
    "GlobalDirectory",
    "HistogramStrategy",
    "IdlServerManager",
    "ImagingStrategy",
    "LightcurveStrategy",
    "NoServerAvailable",
    "Phase",
    "RequestCancelled",
    "RequestFailed",
    "Routine",
    "RoutineLibrary",
    "RoutineRejected",
    "ServiceRecord",
    "UserRoutineStrategy",
    "SpectrogramStrategy",
    "StrategyContext",
    "UnknownRequestType",
]
