"""The abstract request model and its four phases (paper §5.1).

Every analysis follows the same workflow:

* **Estimation** — optional; "determines the feasibility and availability
  of resources ... a simple predictor informs the user about the duration
  of the subsequent execution phase.  The result of this phase is an
  execution plan.  This phase returns immediately."
* **Execution** — the actual processing (sync or async).
* **Delivery** — results are made available.
* **Commit** — results are written back into HEDC through the DM.

"Phases must be executed in order, and not all phases are mandatory.
Requests can be canceled at any time and induce the cleanup for the
current phase."  Request types are implemented as *strategies* — one
method per phase — so incorporating a new processing environment means
writing a new strategy, not touching the frontend.

DM-interaction accounting: each analysis touches the data management
subsystem 3 times for queries (HLE lookup, redundancy check, data-file
name resolution) and 2 times for edits (analysis import, usage record) —
the per-analysis figures of the paper's Tables 2 and 3.
"""

from __future__ import annotations

import enum
import itertools
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from ..analysis import (
    AnalysisProduct,
    predict as predict_cost,
    render_pgm,
    render_series_pgm,
)
from ..metadb import Comparison, Insert, Select
from ..rhessi import PhotonList
from ..security import User
from .manager import IdlServerManager


class RequestCancelled(Exception):
    """Raised inside phase execution when the request was cancelled."""


class RequestFailed(Exception):
    """A phase failed irrecoverably."""


class Phase(enum.Enum):
    CREATED = "created"
    ESTIMATED = "estimated"
    EXECUTED = "executed"
    DELIVERED = "delivered"
    COMMITTED = "committed"
    CANCELLED = "cancelled"
    FAILED = "failed"


@dataclass(frozen=True)
class ExecutionPlan:
    """The estimation phase's output."""

    algorithm: str
    node: str
    input_mb: float
    predicted_seconds: float
    feasible: bool = True
    reason: str = ""


_request_ids = itertools.count(1)


@dataclass
class AnalysisRequest:
    """One request travelling through the four phases."""

    user: User
    hle_id: int
    algorithm: str
    parameters: dict[str, Any] = field(default_factory=dict)
    priority: int = 5              # lower = more urgent
    request_id: str = field(default_factory=lambda: f"req-{next(_request_ids):06d}")
    phase: Phase = Phase.CREATED
    plan: Optional[ExecutionPlan] = None
    hle_row: Optional[dict] = None
    raw_result: Any = None
    product: Optional[AnalysisProduct] = None
    ana_id: Optional[int] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.monotonic)
    completed_at: Optional[float] = None
    _cancelled: bool = field(default=False, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def cancel(self) -> None:
        with self._lock:
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        with self._lock:
            return self._cancelled

    def check_cancelled(self) -> None:
        if self.cancelled:
            raise RequestCancelled(self.request_id)

    @property
    def sojourn_s(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.submitted_at


class StrategyContext:
    """What a strategy needs: the DM, an IDL manager, and counters."""

    def __init__(self, dm, idl_manager: IdlServerManager, node_name: str = "server"):
        self.dm = dm
        self.idl = idl_manager
        self.node_name = node_name
        self.queries = 0
        self.edits = 0

    # -- counted DM interactions -------------------------------------------

    def fetch_hle(self, user: User, hle_id: int) -> dict:
        self.queries += 1
        return self.dm.semantic.get_hle(user, hle_id)

    def check_existing(self, user: User, hle_id: int, algorithm: str) -> Optional[dict]:
        self.queries += 1
        return self.dm.semantic.find_existing_analysis(user, hle_id, algorithm)

    def load_photons_for(self, hle: dict) -> PhotonList:
        """Photons of the HLE's window, via dynamic name resolution."""
        self.queries += 1
        unit_id = hle.get("source_unit")
        if unit_id:
            photons = self.dm.process.load_photons(unit_id)
        else:
            units = self.dm.process.units_covering(hle["start_time"], hle["end_time"])
            if not units:
                raise RequestFailed(f"no raw data covers HLE {hle['hle_id']}")
            parts = [self.dm.process.load_photons(unit["unit_id"]) for unit in units]
            photons = parts[0]
            for part in parts[1:]:
                photons = photons.concat(part)
        photons = photons.select_time(hle["start_time"], hle["end_time"])
        low = hle.get("energy_low_kev")
        high = hle.get("energy_high_kev")
        if low is not None and high is not None:
            photons = photons.select_energy(low, high)
        return photons

    def commit_product(self, user: User, hle_id: int, product: AnalysisProduct,
                       fields: dict) -> int:
        self.edits += 1
        return self.dm.semantic.import_analysis(user, hle_id, product, fields)

    def record_usage(self, user: User, operation: str, target: str,
                     duration_ms: float) -> None:
        self.edits += 1
        usage_id = self.dm.io.database_for("ops_usage").allocate_id(
            "ops_usage", "usage_id"
        )
        self.dm.io.execute(
            Insert(
                "ops_usage",
                {
                    "usage_id": usage_id,
                    "user_id": user.user_id,
                    "operation": operation,
                    "target": target,
                    "duration_ms": duration_ms,
                },
            )
        )


class AnalysisStrategy:
    """Base strategy: one method per phase, plus cleanup."""

    algorithm = "abstract"

    #: IDL source template run in the execution phase; strategies fill in
    #: parameters.  The PL ships source to the IDL server — the server
    #: knows nothing about request types.
    idl_template = ""

    #: Requests predicted to run longer than this are declared infeasible
    #: at estimation time (the §5.1 feasibility check); interactive users
    #: should use an approximated view instead (§6.3).
    max_predicted_seconds: float = 3600.0

    def estimate(self, request: AnalysisRequest, context: StrategyContext) -> ExecutionPlan:
        hle = context.fetch_hle(request.user, request.hle_id)
        # Rough input size: photon records are 14 bytes (8 time + 4 energy
        # + 2 detector).
        n_photons = hle.get("total_counts") or 10_000
        input_mb = n_photons * 14 / 1e6
        predicted = predict_cost(self.algorithm, input_mb, on_server=True)
        feasible = True
        reason = ""
        if context.idl.n_available == 0 and context.idl.n_servers == 0:
            feasible = False
            reason = "no IDL servers configured on this node"
        elif predicted > self.max_predicted_seconds:
            feasible = False
            reason = (
                f"predicted {predicted:.0f}s exceeds the {self.max_predicted_seconds:.0f}s "
                "ceiling; run on an approximated view (§6.3)"
            )
        return ExecutionPlan(
            algorithm=self.algorithm,
            node=context.node_name,
            input_mb=input_mb,
            predicted_seconds=predicted,
            feasible=feasible,
            reason=reason,
        )

    def execute(self, request: AnalysisRequest, context: StrategyContext) -> Any:
        raise NotImplementedError

    def deliver(self, request: AnalysisRequest, context: StrategyContext) -> AnalysisProduct:
        raise NotImplementedError

    def commit(self, request: AnalysisRequest, context: StrategyContext) -> int:
        hle = request.hle_row or context.fetch_hle(request.user, request.hle_id)
        fields = self.commit_fields(request, hle)
        ana_id = context.commit_product(request.user, request.hle_id, request.product, fields)
        elapsed_ms = (time.monotonic() - request.submitted_at) * 1000.0
        context.record_usage(request.user, f"analysis:{self.algorithm}",
                             f"hle:{request.hle_id}", elapsed_ms)
        return ana_id

    def commit_fields(self, request: AnalysisRequest, hle: dict) -> dict:
        return {
            "start_time": hle["start_time"],
            "end_time": hle["end_time"],
            "energy_low_kev": hle.get("energy_low_kev"),
            "energy_high_kev": hle.get("energy_high_kev"),
            "executed_on": request.plan.node if request.plan else "server",
            "request_id": request.request_id,
            "calibration_version": hle.get("calibration_version", 1),
            "committed_at": time.time(),
        }

    def cleanup(self, request: AnalysisRequest, context: StrategyContext) -> None:
        """Cancellation cleanup for the current phase (default: drop
        intermediate results)."""
        request.raw_result = None
        request.product = None


class ImagingStrategy(AnalysisStrategy):
    """Back-projection imaging via the IDL server's ``hsi_image``."""

    algorithm = "imaging"

    def execute(self, request: AnalysisRequest, context: StrategyContext) -> np.ndarray:
        hle = context.fetch_hle(request.user, request.hle_id)
        request.hle_row = hle
        photons = context.load_photons_for(hle)
        existing = context.check_existing(request.user, request.hle_id, self.algorithm)
        if existing is not None and not request.parameters.get("force", False):
            request.parameters["reused_ana_id"] = existing["ana_id"]
        n_pixels = int(request.parameters.get("n_pixels", 32))
        extent = float(request.parameters.get("extent_arcsec", 2048.0))
        center_x = float(request.parameters.get("center_x", hle.get("position_x_arcsec") or 0.0))
        center_y = float(request.parameters.get("center_y", hle.get("position_y_arcsec") or 0.0))
        source = (
            f"img = hsi_image({n_pixels}, {extent}, {center_x}, {center_y})\n"
            "img"
        )
        result = context.idl.invoke(source, photons=photons)
        if not result.ok:
            raise RequestFailed(f"imaging failed: {result.error}")
        request.parameters["n_photons_used"] = len(photons)
        return result.value

    def deliver(self, request: AnalysisRequest, context: StrategyContext) -> AnalysisProduct:
        image = request.raw_result
        product = AnalysisProduct(self.algorithm, dict(request.parameters))
        product.add_image(render_pgm(image))
        product.summary = {
            "peak_value": float(image.max()),
            "n_pixels": int(image.shape[0]),
        }
        product.log(f"imaging {request.request_id}: {image.shape} image")
        return product

    def commit_fields(self, request: AnalysisRequest, hle: dict) -> dict:
        fields = super().commit_fields(request, hle)
        image = request.raw_result
        fields.update(
            {
                "n_pixels": int(image.shape[0]),
                "extent_arcsec": float(request.parameters.get("extent_arcsec", 2048.0)),
                "peak_value": float(image.max()),
                "n_photons_used": request.parameters.get("n_photons_used"),
            }
        )
        return fields


class LightcurveStrategy(AnalysisStrategy):
    algorithm = "lightcurve"

    def execute(self, request: AnalysisRequest, context: StrategyContext) -> np.ndarray:
        hle = context.fetch_hle(request.user, request.hle_id)
        request.hle_row = hle
        photons = context.load_photons_for(hle)
        context.check_existing(request.user, request.hle_id, self.algorithm)
        bin_width = float(request.parameters.get("bin_width_s", 4.0))
        result = context.idl.invoke(
            f"rates = hsi_lightcurve({bin_width})\nrates", photons=photons
        )
        if not result.ok:
            raise RequestFailed(f"lightcurve failed: {result.error}")
        request.parameters["n_photons_used"] = len(photons)
        return result.value

    def deliver(self, request: AnalysisRequest, context: StrategyContext) -> AnalysisProduct:
        rates = np.asarray(request.raw_result, dtype=float)
        product = AnalysisProduct(self.algorithm, dict(request.parameters))
        product.add_image(render_series_pgm(rates))
        product.summary = {"peak_rate": float(rates.max()) if len(rates) else 0.0,
                           "n_bins": int(len(rates))}
        product.log(f"lightcurve {request.request_id}: {len(rates)} bins")
        return product

    def commit_fields(self, request: AnalysisRequest, hle: dict) -> dict:
        fields = super().commit_fields(request, hle)
        rates = np.asarray(request.raw_result, dtype=float)
        fields.update(
            {
                "time_bin_s": float(request.parameters.get("bin_width_s", 4.0)),
                "peak_value": float(rates.max()) if len(rates) else 0.0,
                "n_bins": int(len(rates)),
                "n_photons_used": request.parameters.get("n_photons_used"),
            }
        )
        return fields


class SpectrogramStrategy(AnalysisStrategy):
    algorithm = "spectroscopy"

    def execute(self, request: AnalysisRequest, context: StrategyContext) -> np.ndarray:
        hle = context.fetch_hle(request.user, request.hle_id)
        request.hle_row = hle
        photons = context.load_photons_for(hle)
        context.check_existing(request.user, request.hle_id, self.algorithm)
        time_bin = float(request.parameters.get("time_bin_s", 4.0))
        n_energy = int(request.parameters.get("n_energy_bins", 32))
        result = context.idl.invoke(
            f"sg = hsi_spectrogram({time_bin}, {n_energy})\nsg", photons=photons
        )
        if not result.ok:
            raise RequestFailed(f"spectrogram failed: {result.error}")
        request.parameters["n_photons_used"] = len(photons)
        return result.value

    def deliver(self, request: AnalysisRequest, context: StrategyContext) -> AnalysisProduct:
        counts = np.asarray(request.raw_result, dtype=float)
        product = AnalysisProduct(self.algorithm, dict(request.parameters))
        product.add_image(render_pgm(np.log1p(counts)))
        product.summary = {"total_counts": int(counts.sum()), "shape": list(counts.shape)}
        product.log(f"spectrogram {request.request_id}: shape {counts.shape}")
        return product

    def commit_fields(self, request: AnalysisRequest, hle: dict) -> dict:
        fields = super().commit_fields(request, hle)
        counts = np.asarray(request.raw_result, dtype=float)
        fields.update(
            {
                "time_bin_s": float(request.parameters.get("time_bin_s", 4.0)),
                "n_energy_bins": int(request.parameters.get("n_energy_bins", 32)),
                "total_counts": int(counts.sum()),
                "n_photons_used": request.parameters.get("n_photons_used"),
            }
        )
        return fields


class HistogramStrategy(AnalysisStrategy):
    algorithm = "histogram"

    def execute(self, request: AnalysisRequest, context: StrategyContext) -> np.ndarray:
        hle = context.fetch_hle(request.user, request.hle_id)
        request.hle_row = hle
        photons = context.load_photons_for(hle)
        context.check_existing(request.user, request.hle_id, self.algorithm)
        attribute = request.parameters.get("attribute", "energy")
        n_bins = int(request.parameters.get("n_bins", 64))
        result = context.idl.invoke(
            f"h = hsi_histogram('{attribute}', {n_bins})\nh", photons=photons
        )
        if not result.ok:
            raise RequestFailed(f"histogram failed: {result.error}")
        request.parameters["n_photons_used"] = len(photons)
        return result.value

    def deliver(self, request: AnalysisRequest, context: StrategyContext) -> AnalysisProduct:
        counts = np.asarray(request.raw_result, dtype=float)
        product = AnalysisProduct(self.algorithm, dict(request.parameters))
        product.add_image(render_series_pgm(counts))
        product.summary = {"total": int(counts.sum()), "n_bins": int(len(counts))}
        product.log(f"histogram {request.request_id}: {len(counts)} bins")
        return product

    def commit_fields(self, request: AnalysisRequest, hle: dict) -> dict:
        fields = super().commit_fields(request, hle)
        counts = np.asarray(request.raw_result, dtype=float)
        fields.update(
            {
                "attribute": request.parameters.get("attribute", "energy"),
                "n_bins": int(len(counts)),
                "total_counts": int(counts.sum()),
                "n_photons_used": request.parameters.get("n_photons_used"),
            }
        )
        return fields


DEFAULT_STRATEGIES = {
    strategy.algorithm: strategy
    for strategy in (
        ImagingStrategy(),
        LightcurveStrategy(),
        SpectrogramStrategy(),
        HistogramStrategy(),
    )
}
