"""The derived-product cache (paper §3.5, §5.3).

The whole point of storing derived products is that "the same analysis
is never computed twice": before the frontend touches an IDL server it
looks up a canonical fingerprint of (algorithm, HLE id, parameters) — a
generalization of the per-call redundancy probe
``StrategyContext.check_existing`` — and, on a hit, serves the committed
product in O(lookup) instead of O(IDL).

Correctness rules:

* **Fingerprint** — canonical JSON of the request identity.  Volatile
  parameters the pipeline itself writes (``force``, ``degraded``,
  ``n_photons_used``, reuse/cache markers) are excluded, so a served
  request re-fingerprints identically to a fresh one.
* **Calibration epoch** — entries are stamped with
  ``ProcessLayer.cache_epoch`` at store time, *not* hashed into the key:
  write-path workflows (recalibration, relocation, new calibration
  versions) bump the epoch, which makes older entries stale — but still
  reachable by :meth:`lookup_stale` for the degraded path.
* **Visibility** — a hit is only served after the semantic layer shows
  the cached analysis to *this* user (``get_analysis`` raises for
  invisible rows).  Public products are therefore safely reusable across
  users; private ones fall back to a fresh run.  A purged analysis fails
  the same probe, so the entry is dropped instead of served dangling.
* **Stale-while-degraded** — when the IDL pool breaker is open, a stale
  (epoch-superseded or TTL-expired) entry may be served with
  ``degraded=True``, trading freshness for availability (:mod:`repro.resil`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Optional

from ..analysis import AnalysisProduct
from ..cache import Cache, SingleFlight
from ..obs import Observability, resolve as resolve_obs
from ..security import User

#: Parameters the pipeline mutates while serving a request; never part
#: of the cached identity.
VOLATILE_PARAMETERS = frozenset(
    {"force", "degraded", "n_photons_used", "reused_ana_id", "served_from_cache"}
)


def fingerprint(algorithm: str, hle_id: int, parameters: dict[str, Any]) -> str:
    """Canonical request fingerprint (stable across dict ordering)."""
    identity = {
        key: value
        for key, value in parameters.items()
        if key not in VOLATILE_PARAMETERS
    }
    blob = json.dumps([algorithm, hle_id, identity], sort_keys=True, default=repr)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:24]


@dataclass(frozen=True)
class CachedProduct:
    """One committed analysis, ready to be served again."""

    product: AnalysisProduct
    ana_id: int
    algorithm: str
    epoch: int

    @property
    def size_bytes(self) -> int:
        return sum(len(payload) for payload in self.product.image_payloads)


class ProductCache:
    """Fingerprint → committed product, epoch-invalidated, coalesced."""

    def __init__(
        self,
        dm,
        max_entries: int = 512,
        max_bytes: int = 64 * 2**20,
        ttl_s: Optional[float] = None,
        obs: Optional[Observability] = None,
    ):
        self.dm = dm
        self.obs = obs if obs is not None else resolve_obs(getattr(dm, "obs", None))
        self._cache: Cache = Cache(
            "pl.products",
            max_entries=max_entries,
            max_bytes=max_bytes,
            policy="lru",
            ttl_s=ttl_s,
            size_of=lambda entry: entry.size_bytes,
            obs=self.obs,
        )
        self.stats = self._cache.stats
        #: Coalesces concurrent identical submits into one execution.
        self.flight = SingleFlight(obs=self.obs)

    # -- epoch --------------------------------------------------------------

    def current_epoch(self) -> int:
        return getattr(self.dm.process, "cache_epoch", 0)

    # -- lookups ------------------------------------------------------------

    def _visible_to(self, user: Optional[User], entry: CachedProduct) -> bool:
        from ..dm import EntityNotFound

        try:
            self.dm.semantic.get_analysis(user, entry.ana_id)
        except EntityNotFound:
            return False
        return True

    def lookup(self, user: Optional[User], key: str) -> Optional[CachedProduct]:
        """A *fresh* entry (current epoch, unexpired) visible to ``user``."""
        entry: Optional[CachedProduct] = self._cache.peek(key, touch=True)
        if entry is None:
            self.stats.record_miss()
            return None
        if entry.epoch != self.current_epoch():
            # Stale, but deliberately kept resident for lookup_stale.
            self.stats.record_miss()
            return None
        if not self._visible_to(user, entry):
            # Invisible or purged on the server: either way, not ours to
            # serve.  Purged rows never come back, so drop the entry.
            self._drop_if_purged(user, entry, key)
            self.stats.record_miss()
            return None
        self.stats.record_hit()
        return entry

    def lookup_stale(self, user: Optional[User], key: str) -> Optional[CachedProduct]:
        """Any resident entry visible to ``user``, fresh or stale — the
        breaker-open fallback."""
        entry: Optional[CachedProduct] = self._cache.get_stale(key)
        if entry is None or not self._visible_to(user, entry):
            return None
        return entry

    def _drop_if_purged(self, user: Optional[User], entry: CachedProduct,
                        key: str) -> None:
        from ..dm import EntityNotFound

        try:
            # The import user sees everything; if even it cannot, the row
            # is gone (maintenance purge), not merely private.
            self.dm.semantic.get_analysis(self.dm.import_user, entry.ana_id)
        except EntityNotFound:
            self._cache.invalidate(key)

    # -- writes -------------------------------------------------------------

    def store(self, key: str, algorithm: str, product: AnalysisProduct,
              ana_id: int) -> CachedProduct:
        entry = CachedProduct(
            product=product,
            ana_id=ana_id,
            algorithm=algorithm,
            epoch=self.current_epoch(),
        )
        self._cache.put(key, entry)
        return entry

    def invalidate(self, key: str) -> bool:
        return self._cache.invalidate(key)

    def clear(self) -> int:
        return self._cache.clear()

    def __len__(self) -> int:
        return len(self._cache)
