"""Pluggable eviction policies for :class:`repro.cache.Cache`.

A policy only tracks *keys* and their access pattern; the cache owns the
values, sizes and expiry times.  The contract is four methods:

* ``record_get(key)``  — the key was read (a hit)
* ``record_put(key)``  — the key was inserted (not called on overwrite)
* ``record_remove(key)`` — the key left the cache (any reason)
* ``victim()``         — which key the cache should evict next

``victim`` may be called repeatedly while the cache is over capacity
(entry count or byte budget), so policies must tolerate back-to-back
victim/record_remove cycles.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Optional


class EvictionPolicy:
    """Base policy: the four-method contract."""

    name = "abstract"

    def record_get(self, key: Hashable) -> None:
        raise NotImplementedError

    def record_put(self, key: Hashable) -> None:
        raise NotImplementedError

    def record_remove(self, key: Hashable) -> None:
        raise NotImplementedError

    def victim(self) -> Optional[Hashable]:
        raise NotImplementedError


class LruPolicy(EvictionPolicy):
    """Least-recently-used: reads and writes refresh recency."""

    name = "lru"

    def __init__(self) -> None:
        self._order: OrderedDict[Hashable, None] = OrderedDict()

    def record_get(self, key: Hashable) -> None:
        if key in self._order:
            self._order.move_to_end(key)

    def record_put(self, key: Hashable) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def record_remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        return next(iter(self._order)) if self._order else None


class FifoPolicy(EvictionPolicy):
    """Insertion order; reads do not refresh.  This is the natural
    companion of a TTL cache (oldest entries expire first), so the cache
    accepts ``policy="ttl"`` as an alias."""

    name = "fifo"

    def __init__(self) -> None:
        self._order: OrderedDict[Hashable, None] = OrderedDict()

    def record_get(self, key: Hashable) -> None:
        pass

    def record_put(self, key: Hashable) -> None:
        self._order[key] = None

    def record_remove(self, key: Hashable) -> None:
        self._order.pop(key, None)

    def victim(self) -> Optional[Hashable]:
        return next(iter(self._order)) if self._order else None


class ArcPolicy(EvictionPolicy):
    """Adaptive Replacement Cache (Megiddo & Modha 2003).

    Four lists: T1 (seen once, recency), T2 (seen at least twice,
    frequency) hold resident keys; B1/B2 are their ghost extensions.  A
    hit in a ghost list adapts the target size ``p`` of T1, so the policy
    self-tunes between recency and frequency — in particular it is
    scan-resistant: a one-pass sweep cannot flush the frequently-reused
    working set out of T2.
    """

    name = "arc"

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("ArcPolicy needs a positive capacity")
        self.capacity = capacity
        self.p = 0.0                      # target size of T1
        self._t1: OrderedDict[Hashable, None] = OrderedDict()
        self._t2: OrderedDict[Hashable, None] = OrderedDict()
        self._b1: OrderedDict[Hashable, None] = OrderedDict()
        self._b2: OrderedDict[Hashable, None] = OrderedDict()

    def record_get(self, key: Hashable) -> None:
        if key in self._t1:
            del self._t1[key]
            self._t2[key] = None
        elif key in self._t2:
            self._t2.move_to_end(key)

    def record_put(self, key: Hashable) -> None:
        if key in self._t1 or key in self._t2:
            self.record_get(key)
            return
        if key in self._b1:
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self.p = min(float(self.capacity), self.p + delta)
            del self._b1[key]
            self._t2[key] = None
        elif key in self._b2:
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self.p = max(0.0, self.p - delta)
            del self._b2[key]
            self._t2[key] = None
        else:
            self._t1[key] = None
        self._trim_ghosts()

    def record_remove(self, key: Hashable) -> None:
        # Removal by the cache (eviction via victim(), invalidation,
        # expiry) leaves a ghost so a prompt re-insert counts as a
        # frequency signal; explicit ghosts are trimmed by capacity.
        if key in self._t1:
            del self._t1[key]
            self._b1[key] = None
        elif key in self._t2:
            del self._t2[key]
            self._b2[key] = None
        self._trim_ghosts()

    def victim(self) -> Optional[Hashable]:
        if self._t1 and (len(self._t1) > self.p or not self._t2):
            return next(iter(self._t1))
        if self._t2:
            return next(iter(self._t2))
        if self._t1:
            return next(iter(self._t1))
        return None

    def _trim_ghosts(self) -> None:
        while len(self._b1) > self.capacity:
            self._b1.popitem(last=False)
        while len(self._b2) > self.capacity:
            self._b2.popitem(last=False)


def make_policy(policy: str, max_entries: Optional[int]) -> EvictionPolicy:
    """Instantiate a policy by name (``lru`` | ``arc`` | ``ttl``/``fifo``)."""
    if policy == "lru":
        return LruPolicy()
    if policy in ("fifo", "ttl"):
        return FifoPolicy()
    if policy == "arc":
        if max_entries is None:
            raise ValueError("policy 'arc' requires max_entries")
        return ArcPolicy(max_entries)
    raise ValueError(f"unknown eviction policy {policy!r}")
