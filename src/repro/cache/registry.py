"""Process-wide cache registry, for the admin's instrument panel.

Every :class:`~repro.cache.Cache` registers itself (weakly) at
construction; :func:`cache_report` turns the live set into one dict of
per-cache stat snapshots.  Reports are filtered by obs hub so a
deployment (one :class:`~repro.obs.Observability` shared across tiers)
only reports its own caches — test stacks running side by side do not
contaminate each other's telemetry.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Iterator, Optional

if TYPE_CHECKING:                                     # pragma: no cover
    from ..obs import Observability
    from .core import Cache

_caches: "weakref.WeakSet[Cache]" = weakref.WeakSet()


def register_cache(cache: "Cache") -> None:
    _caches.add(cache)


def iter_caches(obs: "Optional[Observability]" = None) -> "Iterator[Cache]":
    for cache in list(_caches):
        if obs is None or cache.obs is obs:
            yield cache


def cache_report(obs: "Optional[Observability]" = None) -> dict[str, dict]:
    """Per-cache stat snapshots, keyed by cache name.  Two caches sharing
    a name within one hub (unusual) merge by summing counters."""
    report: dict[str, dict] = {}
    for cache in iter_caches(obs):
        snapshot = cache.stats.snapshot()
        existing = report.get(cache.name)
        if existing is None:
            report[cache.name] = snapshot
        else:
            for field, value in snapshot.items():
                if field != "hit_ratio":
                    existing[field] = existing.get(field, 0) + value
            total = existing["hits"] + existing["misses"]
            existing["hit_ratio"] = existing["hits"] / total if total else 0.0
    return report
