"""The generic, thread-safe caching core.

One :class:`Cache` instance backs every cache in the system: the DM's
session cache, both StreamCorder strategies, and the PL's derived-product
cache.  Entries carry a byte size (for ``max_bytes`` budgets) and an
optional expiry; eviction order is delegated to a pluggable policy; all
outcomes land in one typed :class:`CacheStats`, mirrored into the
:mod:`repro.obs` registry so ``/hedc/metrics`` and
``DataManager.telemetry_report()`` can report per-cache hit ratios,
resident bytes and eviction counts without bespoke wiring.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Hashable, Iterator, Optional

from ..obs import Observability, resolve as resolve_obs
from .policies import EvictionPolicy, make_policy
from .registry import register_cache
from .singleflight import SingleFlight

_MISSING = object()

#: Why an entry left the cache (the third argument of ``on_evict``).
REMOVAL_REASONS = ("evicted", "expired", "invalidated", "replaced", "cleared")


class CacheStats:
    """Typed hit/miss/eviction/byte counters, mirrored into ``repro.obs``.

    ``metric_prefix`` and ``labels`` control the mirrored metric names so
    pre-existing families (``dm.sessions.*``, ``streamcorder.cache.*``)
    keep their dashboards; new caches default to ``cache.*`` labelled by
    cache name.  The streamcorder-era API (``record_hit`` /
    ``record_miss(n)`` / ``record_cached(n_bytes)`` / ``hit_rate`` /
    ``bytes_cached``) is preserved verbatim.
    """

    def __init__(self, name: str = "cache", obs: Optional[Observability] = None,
                 metric_prefix: str = "cache",
                 labels: Optional[dict[str, str]] = None):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.stale_hits = 0
        self.evictions = 0
        self.expirations = 0
        self.invalidations = 0
        self.puts = 0
        self.coalesced = 0
        self.bytes_cached = 0       # total bytes ever written
        self.size_bytes = 0         # bytes currently resident
        self.entries = 0            # entries currently resident
        self._obs = obs
        self._prefix = metric_prefix
        self._labels = dict(labels) if labels is not None else {"cache": name}

    # -- event recording (obs-mirrored) -------------------------------------

    def _count(self, event: str, n: float = 1) -> None:
        if self._obs is not None and n:
            self._obs.count(f"{self._prefix}.{event}", n, **self._labels)

    def record_hit(self, n: int = 1) -> None:
        self.hits += n
        self._count("hits", n)

    def record_miss(self, n: int = 1) -> None:
        self.misses += n
        self._count("misses", n)

    def record_stale_hit(self, n: int = 1) -> None:
        self.stale_hits += n
        self._count("stale_hits", n)

    def record_eviction(self, n: int = 1) -> None:
        self.evictions += n
        self._count("evictions", n)

    def record_expiration(self, n: int = 1) -> None:
        self.expirations += n
        self._count("expirations", n)

    def record_invalidation(self, n: int = 1) -> None:
        self.invalidations += n
        self._count("invalidations", n)

    def record_put(self, n: int = 1) -> None:
        self.puts += n
        self._count("puts", n)

    def record_coalesced(self, n: int = 1) -> None:
        self.coalesced += n
        self._count("coalesced", n)

    def record_cached(self, n_bytes: int) -> None:
        self.bytes_cached += n_bytes
        self._count("bytes_cached", n_bytes)

    def set_size(self, entries: int, size_bytes: int) -> None:
        self.entries = entries
        self.size_bytes = size_bytes
        if self._obs is not None:
            self._obs.set_gauge(f"{self._prefix}.entries", entries, **self._labels)
            self._obs.set_gauge(f"{self._prefix}.size_bytes", size_bytes,
                                **self._labels)

    # -- derived ------------------------------------------------------------

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    #: Alias: the session cache historically called this ``hit_ratio``.
    hit_ratio = hit_rate

    def snapshot(self) -> dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_rate,
            "stale_hits": self.stale_hits,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "puts": self.puts,
            "coalesced": self.coalesced,
            "entries": self.entries,
            "size_bytes": self.size_bytes,
            "bytes_cached": self.bytes_cached,
        }


class _Entry:
    __slots__ = ("value", "size", "created_at", "expires_at")

    def __init__(self, value: Any, size: int, created_at: float,
                 expires_at: Optional[float]):
        self.value = value
        self.size = size
        self.created_at = created_at
        self.expires_at = expires_at


class Cache:
    """Thread-safe store with pluggable eviction and byte accounting.

    * ``max_entries`` / ``max_bytes`` — either, both or neither budget
    * ``policy`` — ``"lru"`` (default), ``"arc"`` or ``"ttl"``/``"fifo"``
    * ``ttl_s`` — default entry lifetime (overridable per ``put``)
    * ``size_of`` — value → byte size (default: every entry costs 0 bytes
      and 1 entry, i.e. pure entry-count budgeting)
    * ``on_evict(key, value, reason)`` — fired on every removal with the
      reason (one of :data:`REMOVAL_REASONS`); this is where wrappers
      clean up side tables (cookie maps) or backing files
    """

    def __init__(
        self,
        name: str,
        max_entries: Optional[int] = None,
        max_bytes: Optional[int] = None,
        policy: str | EvictionPolicy = "lru",
        ttl_s: Optional[float] = None,
        size_of: Optional[Callable[[Any], int]] = None,
        on_evict: Optional[Callable[[Hashable, Any, str], None]] = None,
        obs: Optional[Observability] = None,
        stats: Optional[CacheStats] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.name = name
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.ttl_s = ttl_s
        self.obs = resolve_obs(obs)
        self._size_of = size_of
        self._on_evict = on_evict
        self._clock = clock
        self._lock = threading.RLock()
        self._data: dict[Hashable, _Entry] = {}
        self._bytes = 0
        if isinstance(policy, EvictionPolicy):
            self._policy = policy
        else:
            self._policy = make_policy(policy, max_entries)
        self.stats = stats if stats is not None else CacheStats(name, obs=self.obs)
        self._flight = SingleFlight(obs=self.obs)
        register_cache(self)

    # -- internals ----------------------------------------------------------

    def _expired(self, entry: _Entry) -> bool:
        return entry.expires_at is not None and self._clock() >= entry.expires_at

    def _remove(self, key: Hashable, reason: str) -> Optional[Any]:
        entry = self._data.pop(key, None)
        if entry is None:
            return None
        self._bytes -= entry.size
        self._policy.record_remove(key)
        if reason == "evicted":
            self.stats.record_eviction()
        elif reason == "expired":
            self.stats.record_expiration()
        elif reason == "invalidated":
            self.stats.record_invalidation()
        self.stats.set_size(len(self._data), self._bytes)
        if self._on_evict is not None:
            self._on_evict(key, entry.value, reason)
        return entry.value

    def _evict_over_budget(self) -> None:
        while (
            (self.max_entries is not None and len(self._data) > self.max_entries)
            or (self.max_bytes is not None and self._bytes > self.max_bytes)
        ):
            victim = self._policy.victim()
            if victim is None or victim not in self._data:
                break
            self._remove(victim, "evicted")

    # -- reads --------------------------------------------------------------

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Counted read: hit refreshes recency, expired entries are
        dropped and count as misses."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self.stats.record_miss()
                return default
            if self._expired(entry):
                self._remove(key, "expired")
                self.stats.record_miss()
                return default
            self._policy.record_get(key)
            self.stats.record_hit()
            return entry.value

    def peek(self, key: Hashable, default: Any = None, touch: bool = False) -> Any:
        """Uncounted read for wrappers that apply their own hit semantics
        (e.g. the session cache rejects a resident entry on IP mismatch).
        Expired entries are still dropped — but count as expirations, not
        misses."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                return default
            if self._expired(entry):
                self._remove(key, "expired")
                return default
            if touch:
                self._policy.record_get(key)
            return entry.value

    def get_stale(self, key: Hashable, default: Any = None) -> Any:
        """Return the entry even if expired (stale-while-degraded reads);
        counts a stale hit when something is there."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                return default
            self.stats.record_stale_hit()
            return entry.value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._data.get(key)
            return entry is not None and not self._expired(entry)

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._bytes

    # -- writes -------------------------------------------------------------

    def put(self, key: Hashable, value: Any, size: Optional[int] = None,
            ttl_s: Optional[float] = None) -> None:
        if size is None:
            size = self._size_of(value) if self._size_of is not None else 0
        lifetime = ttl_s if ttl_s is not None else self.ttl_s
        expires_at = self._clock() + lifetime if lifetime is not None else None
        with self._lock:
            if key in self._data:
                self._remove(key, "replaced")
            entry = _Entry(value, size, self._clock(), expires_at)
            self._data[key] = entry
            self._bytes += size
            self._policy.record_put(key)
            self.stats.record_put()
            if size:
                self.stats.record_cached(size)
            self._evict_over_budget()
            self.stats.set_size(len(self._data), self._bytes)

    def get_or_load(self, key: Hashable, loader: Callable[[], Any],
                    size: Optional[int] = None,
                    ttl_s: Optional[float] = None) -> Any:
        """Counted read with a coalesced fill: concurrent misses for the
        same key run ``loader`` once, and every caller gets the value."""
        value = self.get(key, _MISSING)
        if value is not _MISSING:
            return value

        def _fill() -> Any:
            # Another flight may have filled the key while we queued.
            cached = self.peek(key, _MISSING, touch=True)
            if cached is not _MISSING:
                return cached
            loaded = loader()
            self.put(key, loaded, size=size, ttl_s=ttl_s)
            return loaded

        value, leading = self._flight.do(key, _fill)
        if not leading:
            self.stats.record_coalesced()
        return value

    def invalidate(self, key: Hashable) -> bool:
        with self._lock:
            return self._remove(key, "invalidated") is not None

    def clear(self) -> int:
        with self._lock:
            n = len(self._data)
            for key in list(self._data):
                self._remove(key, "cleared")
            return n
