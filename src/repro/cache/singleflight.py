"""Request coalescing: N concurrent identical requests do the work once.

The leader (first caller for a key) runs the loader; followers block on
an event and receive the leader's value — or the leader's exception, so
a failing load fails every coalesced caller identically.  Keys leave the
in-flight table before followers wake, so a *subsequent* call starts a
fresh flight (coalescing is for concurrency, not memoization — pair with
a :class:`~repro.cache.Cache` for that).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Optional, Tuple


class _Flight:
    __slots__ = ("event", "value", "error", "followers")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0


class SingleFlight:
    """One in-flight call per key; concurrent callers share the result."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        self.coalesced = 0      # calls that waited on another's work

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent ``key``; returns ``(value,
        leader)`` where ``leader`` says whether *this* caller did the
        work."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leading = True
            else:
                flight.followers += 1
                self.coalesced += 1
                leading = False
        if leading:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
            return flight.value, True
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value, False

    def in_flight(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._flights
