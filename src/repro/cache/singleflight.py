"""Request coalescing: N concurrent identical requests do the work once.

The leader (first caller for a key) runs the loader; followers block on
an event and receive the leader's value — or the leader's exception, so
a failing load fails every coalesced caller identically.  Keys leave the
in-flight table before followers wake, so a *subsequent* call starts a
fresh flight (coalescing is for concurrency, not memoization — pair with
a :class:`~repro.cache.Cache` for that).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable, Optional, Tuple


class _Flight:
    __slots__ = ("event", "value", "error", "followers",
                 "leader_trace_id", "leader_span_id")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: Any = None
        self.error: Optional[BaseException] = None
        self.followers = 0
        self.leader_trace_id: Optional[int] = None
        self.leader_span_id: Optional[int] = None


class SingleFlight:
    """One in-flight call per key; concurrent callers share the result.

    With an :class:`~repro.obs.Observability` hub attached and tracing
    enabled, the leader stamps its current span on the flight and each
    follower tags its own span ``coalesced_with_trace``/``_span`` — so a
    follower's trace tree points at the one span that actually did the
    work.
    """

    def __init__(self, obs=None) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Hashable, _Flight] = {}
        self.obs = obs
        self.coalesced = 0      # calls that waited on another's work

    def do(self, key: Hashable, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent ``key``; returns ``(value,
        leader)`` where ``leader`` says whether *this* caller did the
        work."""
        obs = self.obs
        span = (obs.tracer.current()
                if obs is not None and obs.enabled else None)
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                if span is not None:
                    flight.leader_trace_id = span.trace_id
                    flight.leader_span_id = span.span_id
                self._flights[key] = flight
                leading = True
            else:
                flight.followers += 1
                self.coalesced += 1
                leading = False
        if not leading and span is not None and flight.leader_span_id is not None:
            span.set_tag("coalesced_with_trace", flight.leader_trace_id)
            span.set_tag("coalesced_with_span", flight.leader_span_id)
        if leading:
            try:
                flight.value = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.event.set()
            return flight.value, True
        flight.event.wait()
        if flight.error is not None:
            raise flight.error
        return flight.value, False

    def in_flight(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._flights
