"""The unified caching core (``repro.cache``).

HEDC's middle tier lives or dies by reuse: §5.3 calls session creation
one of the two most expensive parts of request processing, and the whole
point of storing derived products is that the same analysis is never
computed twice.  This package is the one implementation behind every
cache in the repo: a thread-safe :class:`Cache` with pluggable eviction
policies (LRU, ARC, TTL/FIFO), byte-size accounting, a typed
:class:`CacheStats` mirrored into :mod:`repro.obs`, and a
:class:`SingleFlight` request coalescer so N concurrent identical
requests do the work once.

Consumers:

* ``repro.dm.sessions.SessionCache`` — session storage/eviction/stats
* ``repro.streamcorder.cache`` — both fat-client cache strategies
* ``repro.pl.product_cache.ProductCache`` — the derived-product cache
  that short-circuits repeat analyses before any IDL invocation
"""

from .core import Cache, CacheStats
from .policies import ArcPolicy, EvictionPolicy, FifoPolicy, LruPolicy, make_policy
from .registry import cache_report, iter_caches
from .singleflight import SingleFlight

__all__ = [
    "ArcPolicy",
    "Cache",
    "CacheStats",
    "EvictionPolicy",
    "FifoPolicy",
    "LruPolicy",
    "SingleFlight",
    "cache_report",
    "iter_caches",
    "make_policy",
]
