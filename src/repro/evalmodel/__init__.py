"""Calibrated performance models of the paper's evaluation testbeds:
browsing (§7, Figures 4-5) and processing (§8, Tables 1-3)."""

from .browsing import (
    BrowsingResult,
    figure4_series,
    figure5_series,
    print_figure4,
    print_figure5,
    simulate_browsing,
)
from .processing import (
    HISTOGRAM,
    HISTOGRAM_CONFIGS,
    IMAGING,
    IMAGING_CONFIGS,
    Configuration,
    ProcessingResult,
    Workload,
    print_table1,
    simulate_processing,
    table1_histogram,
    table1_imaging,
)
from .sharding import (
    ScalingProjection,
    ShardedBrowsingResult,
    figure5_sharded_series,
    print_scaling_projection,
    print_sharded_figure5,
    project_scaling,
    replica_efficiency,
    scaling_series,
    simulate_sharded_browsing,
)

__all__ = [
    "BrowsingResult",
    "Configuration",
    "HISTOGRAM",
    "HISTOGRAM_CONFIGS",
    "IMAGING",
    "IMAGING_CONFIGS",
    "ProcessingResult",
    "ScalingProjection",
    "ShardedBrowsingResult",
    "Workload",
    "figure4_series",
    "figure5_series",
    "figure5_sharded_series",
    "print_figure4",
    "print_figure5",
    "print_scaling_projection",
    "print_sharded_figure5",
    "print_table1",
    "project_scaling",
    "replica_efficiency",
    "scaling_series",
    "simulate_browsing",
    "simulate_processing",
    "simulate_sharded_browsing",
    "table1_histogram",
    "table1_imaging",
]
