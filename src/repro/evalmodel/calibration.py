"""Calibration constants for the testbed performance models.

Every constant is anchored to a number stated in the paper's evaluation
(§7-§8); derivations are given inline.  The models aim to reproduce the
*shape* of the published figures and tables — who wins, by what factor,
where saturation sets in — not the absolute values of the 2003 hardware.
"""

from __future__ import annotations

# -- browsing testbed (§7, Figures 4 and 5) -----------------------------------

#: "the underlying database ... supports a maximum throughput of around
#: 120 HEDC request[s] per second" — 120 queries/s at the DBMS.
DB_QUERIES_PER_SECOND = 120.0

#: "On average, a request generates seven DM queries."
QUERIES_PER_REQUEST = 7

#: With the batched page fetch the seven logical queries of an HLE page
#: ride in at most three DM<->DBMS round trips: the primary-key probe,
#: the grouped per-item reads, and the grouped discovery reads.
PAGE_ROUND_TRIPS_BATCHED = 3

#: DB service time for one web request's worth of queries.
DB_SERVICE_PER_REQUEST_S = QUERIES_PER_REQUEST / DB_QUERIES_PER_SECOND

#: Middle-tier CPU demand per request grows with the number of clients
#: connected to the node (session scanning, connection handling — "the
#: drop in performance is caused by the increased processing load of the
#: application logic", §7.3).  Modelled as
#:     s(n) = CPU_BASE_S + CPU_PER_CLIENT_S * n.
#: Anchors: X(16 clients) ~ 16.5 req/s (DB-bound peak, Figure 4 left edge)
#: gives s(16) ~ 1/16.5 = 0.0606 s; X(96) ~ 3 req/s gives s(96) = 0.333 s.
#: Solving: per-client 0.0034 s, base 0.006 s.
CPU_BASE_S = 0.006
CPU_PER_CLIENT_S = 0.0034

#: Page payloads (§7.2): "The average response size is 12 KB for the
#: response HTML page and 35 KB for the embedded dynamic images."
HTML_RESPONSE_KB = 12.0
IMAGE_RESPONSE_KB = 35.0

#: Tuples parsed per request (§7.2).
TUPLES_PER_REQUEST = 80

# -- service-level objectives (PR-10 observability) ----------------------------
#
# Availability and latency objectives per admission priority class,
# seeded from the §7 measurements: the DB service time for one request
# (DB_SERVICE_PER_REQUEST_S ~ 58 ms) is the floor any latency promise
# must clear.  Interactive analysis tolerates more latency but demands
# the most nines (a failed analyze loses work); browse is the bread-and-
# butter interactive path; bulk downloads are throughput-oriented and
# shed first under pressure, so their promises are the loosest.

#: Availability objective (non-5xx fraction) per priority class.
SLO_AVAILABILITY = {
    "analysis": 0.999,
    "browse": 0.99,
    "bulk": 0.95,
}

#: Fraction of requests that must finish under the class threshold.
SLO_LATENCY_OBJECTIVE = 0.95

#: Latency thresholds per class, as multiples of the §7.2 DB service
#: time per request: analysis pages fan out across tiers (8x), a browse
#: page is a handful of batched round trips (4x), bulk moves big
#: payloads (20x).
SLO_LATENCY_S = {
    "analysis": 8 * DB_SERVICE_PER_REQUEST_S,
    "browse": 4 * DB_SERVICE_PER_REQUEST_S,
    "bulk": 20 * DB_SERVICE_PER_REQUEST_S,
}

# -- processing testbed (§8, Tables 1-3) ----------------------------------------

#: Table 2: 100 imaging requests over 50 MB in 50 files, 2-3 files each.
IMAGING_REQUESTS = 100
IMAGING_INPUT_MB_PER_REQUEST = 0.8   # "an input data set of 800 KB"
IMAGING_OUTPUT_MB_TOTAL = 5.5
IMAGING_QUERIES_PER_REQUEST = 3
IMAGING_EDITS_PER_REQUEST = 2

#: "the computation of an image takes about 20 s ... on the processing
#: client, and 60 s on the server" (per-analysis single-thread work).
IMAGING_WORK_CLIENT_S = 20.0
IMAGING_WORK_SERVER_S = 60.0

#: Table 3: 150 histogram requests, 1/3 file (~333 KB) each.
HISTOGRAM_REQUESTS = 150
HISTOGRAM_INPUT_MB_PER_REQUEST = 1.0 / 3.0
HISTOGRAM_OUTPUT_MB_TOTAL = 1.2
HISTOGRAM_QUERIES_PER_REQUEST = 3
HISTOGRAM_EDITS_PER_REQUEST = 2

#: "The net computation of a histogram takes about 2-3 s per 300 KB input
#: data on the processing client and 5-7 s on the server."
HISTOGRAM_WORK_CLIENT_S = 2.8
HISTOGRAM_WORK_SERVER_S = 6.2

#: "The HTTP bandwidth between client and server is 2 MB/s" — paid only
#: by processing clients on non-cached input.
HTTP_BANDWIDTH_MB_S = 2.0

#: Central scheduling + fault-tolerant service protocol cost per job
#: (§8.4: "in scenarios with parallel computations of analyses shorter
#: than 5 s, the central scheduling ... becomes critical: jobs are not
#: scheduled timely to available resources").  One dispatcher serializes
#: job handoffs.
DISPATCH_OVERHEAD_S = 2.0

#: Per-job DM interaction cost (3 queries + 2 edits, §8.4: "the duration
#: of query and edit operations is almost constant and equal in all
#: scenarios").
DM_INTERACTION_S = 0.35

#: "no more than 20 requests are in the system at any given time".
PROCESSING_WINDOW = 20

#: The test server is a 2-CPU SPARC; the client a 1-CPU Linux PC.
SERVER_CORES = 2
CLIENT_CORES = 1
