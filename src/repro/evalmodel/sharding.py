"""Scaling projection for the sharded catalog (extends Figure 5).

The paper's Figure 5 scales the *middle tier* and observes the shared
DBMS saturate — "the bottleneck becomes the database".  The
:mod:`repro.shard` subsystem removes that wall by partitioning the
catalog itself, so this model extends the browsing simulation with a
partitioned DBMS tier and answers the question the paper leaves open:
how far does the three-tier design carry once the catalog shards?

Two instruments, cross-validated in the tests:

* :func:`simulate_sharded_browsing` — the discrete-event model of
  browsing (closed-loop clients, processor-sharing middle tier) with the
  single FCFS "dbms" station replaced by ``n_shards`` independent
  stations.  A *pruned* query (fraction ``pruned_fraction``, measured
  from the router's route counters) visits one shard at full service
  time; an unpruned query scatter-gathers across all shards, each
  branch costing the fixed overhead plus ``1/S`` of the work.
* :func:`project_scaling` — the closed-form counterpart: per-request
  shard load under the same routing mix, capacity in requests/second,
  and the supported *registered user population* under the standard
  think-time/activity assumptions.  This is what carries the curve to
  millions of users without simulating millions of processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..simkit import FcfsServer, ProcessorSharing, Simulator, Tally, scatter_gather, spawn
from .calibration import (
    CPU_BASE_S,
    CPU_PER_CLIENT_S,
    DB_QUERIES_PER_SECOND,
    QUERIES_PER_REQUEST,
)

#: Fraction of page queries the router resolves to a single shard.  The
#: HLE detail page issues seven queries: the point lookups and the
#: time-window neighbour scan prune to one shard once shards are
#: day-scale; the catalog joins and rate-band scans scatter.  Measured
#: route counters (tests) land near this default.
DEFAULT_PRUNED_FRACTION = 0.6

#: Per-branch fixed cost of a scatter query, as a fraction of the full
#: single-node service time: statement dispatch, predicate re-parse and
#: merge bookkeeping that does not shrink when the data volume per shard
#: does.
SCATTER_FIXED_FRACTION = 0.1

#: Standard population assumptions for converting a sustained request
#: rate into a registered user population: a browsing scientist clicks
#: every ~30 s, and ~1% of registered users are active at a time.
THINK_TIME_S = 30.0
ACTIVE_FRACTION = 0.01


def _scatter_service_fraction(n_shards: int,
                              fixed_fraction: float = SCATTER_FIXED_FRACTION) -> float:
    """Per-shard service time of a scatter query, relative to single-node."""
    return fixed_fraction + (1.0 - fixed_fraction) / n_shards


@dataclass(frozen=True)
class ShardedBrowsingResult:
    """Measured outcome of one simulated sharded configuration."""

    n_clients: int
    n_middle_tier: int
    n_shards: int
    pruned_fraction: float
    throughput_rps: float      # completed web requests / second
    db_queries_per_s: float    # logical queries (scatter counts once)
    avg_response_s: float
    middle_tier_utilization: float
    shard_utilization: float   # mean busy fraction across shards
    max_shard_utilization: float


def simulate_sharded_browsing(
    n_clients: int,
    n_middle_tier: int = 1,
    n_shards: int = 1,
    pruned_fraction: float = DEFAULT_PRUNED_FRACTION,
    scatter_fixed_fraction: float = SCATTER_FIXED_FRACTION,
    duration_s: float = 400.0,
    warmup_s: float = 50.0,
    seed: int = 0,
) -> ShardedBrowsingResult:
    """Simulate one (clients, nodes, shards) configuration.

    With ``n_shards=1`` every query is a single full-cost visit, so the
    model degenerates to :func:`~repro.evalmodel.browsing.simulate_browsing`
    (the tests assert the throughputs agree).
    """
    if n_clients < 1 or n_middle_tier < 1 or n_shards < 1:
        raise ValueError("need at least one client, node and shard")
    if not 0.0 <= pruned_fraction <= 1.0:
        raise ValueError("pruned_fraction must be within [0, 1]")
    sim = Simulator()
    shards = [
        FcfsServer(sim, servers=1, name=f"shard{index}") for index in range(n_shards)
    ]
    nodes = [
        ProcessorSharing(sim, cores=1, speed=1.0, name=f"app{node}")
        for node in range(n_middle_tier)
    ]
    clients_per_node = [
        n_clients // n_middle_tier + (1 if node < n_clients % n_middle_tier else 0)
        for node in range(n_middle_tier)
    ]
    full_service = 1.0 / DB_QUERIES_PER_SECOND
    scatter_service = full_service * _scatter_service_fraction(
        n_shards, scatter_fixed_fraction
    )
    rng = random.Random(seed)
    response_times = Tally()
    completions = {"after_warmup": 0}

    def client_loop(node_index: int):
        node = nodes[node_index]
        cpu_demand = CPU_BASE_S + CPU_PER_CLIENT_S * clients_per_node[node_index]
        while True:
            started = sim.now
            yield node.service(cpu_demand)
            for _query in range(QUERIES_PER_REQUEST):
                if n_shards == 1:
                    yield shards[0].request(full_service)
                elif rng.random() < pruned_fraction:
                    # Pruned: the router touched exactly one shard.
                    yield rng.choice(shards).request(full_service)
                else:
                    # Scatter-gather: all shards in parallel, resume on
                    # the slowest branch.
                    yield scatter_gather(shards, scatter_service)
            elapsed = sim.now - started
            if sim.now > warmup_s:
                completions["after_warmup"] += 1
                response_times.record(elapsed)

    for node_index, count in enumerate(clients_per_node):
        for _client in range(count):
            spawn(sim, client_loop(node_index))
    sim.run(until=duration_s)

    window = duration_s - warmup_s
    throughput = completions["after_warmup"] / window
    utilizations = [shard.busy_time / duration_s for shard in shards]
    return ShardedBrowsingResult(
        n_clients=n_clients,
        n_middle_tier=n_middle_tier,
        n_shards=n_shards,
        pruned_fraction=pruned_fraction,
        throughput_rps=throughput,
        db_queries_per_s=throughput * QUERIES_PER_REQUEST,
        avg_response_s=response_times.mean,
        middle_tier_utilization=sum(node.busy_time for node in nodes)
        / (duration_s * len(nodes)),
        shard_utilization=sum(utilizations) / n_shards,
        max_shard_utilization=max(utilizations),
    )


def figure5_sharded_series(
    shard_counts: tuple[int, ...] = (1, 4, 16),
    n_clients: int = 96,
    n_middle_tier: int = 5,
    pruned_fraction: float = DEFAULT_PRUNED_FRACTION,
    duration_s: float = 400.0,
) -> list[ShardedBrowsingResult]:
    """Figure 5 extended: throughput versus catalog shards.

    The paper's series stops where five middle-tier nodes saturate the
    one shared database; this holds the middle tier at that saturating
    configuration and grows the database tier instead.
    """
    return [
        simulate_sharded_browsing(
            n_clients,
            n_middle_tier=n_middle_tier,
            n_shards=n_shards,
            pruned_fraction=pruned_fraction,
            duration_s=duration_s,
        )
        for n_shards in shard_counts
    ]


@dataclass(frozen=True)
class ScalingProjection:
    """Closed-form capacity of one sharded configuration."""

    n_shards: int
    pruned_fraction: float
    #: Expected shard-seconds of service per web request (the bottleneck
    #: shard's load under even spread).
    shard_load_per_request_s: float
    capacity_rps: float        # sustainable web requests / second
    users_supported: int       # registered users at the standard activity mix
    replicas_per_shard: int = 1
    #: Read copies a shard effectively fields once replication losses
    #: (staleness skips, failover blips, shipping overhead) are charged.
    effective_copies: float = 1.0


def replica_efficiency(
    stale_skip_fraction: float = 0.0,
    failover_blip_s: float = 0.0,
    mtbf_s: float = float("inf"),
    ship_overhead_fraction: float = 0.0,
) -> float:
    """Fraction of a follower's nominal read capacity actually usable.

    The replica group (:mod:`repro.repl`) does not deliver a full extra
    copy of read capacity per follower; three measured costs shave it:

    * ``stale_skip_fraction`` — share of read attempts that skip a
      follower because its lag exceeds ``max_lag`` (the bounded-staleness
      contract): from the ``repl.stale_skips`` counter over total reads.
    * ``failover_blip_s`` / ``mtbf_s`` — when a copy dies, reads retry
      against the next copy; the blip (measured by the ``repl``
      benchmark) times the failure rate is capacity lost to re-routing.
    * ``ship_overhead_fraction`` — the primary spends this fraction of
      its write budget appending to the replication log and shipping
      (guarded < 5% by ``benchmarks/test_resil_overhead.py``), which
      contends with reads on the same copy.

    All defaults are zero, i.e. a perfectly efficient follower.
    """
    if not 0.0 <= stale_skip_fraction <= 1.0:
        raise ValueError("stale_skip_fraction must be within [0, 1]")
    if failover_blip_s < 0.0 or mtbf_s <= 0.0:
        raise ValueError("failover_blip_s must be >= 0 and mtbf_s > 0")
    if not 0.0 <= ship_overhead_fraction <= 1.0:
        raise ValueError("ship_overhead_fraction must be within [0, 1]")
    unavailable = failover_blip_s / mtbf_s if mtbf_s != float("inf") else 0.0
    efficiency = (
        (1.0 - stale_skip_fraction)
        * (1.0 - min(1.0, unavailable))
        * (1.0 - ship_overhead_fraction)
    )
    return max(0.0, min(1.0, efficiency))


def project_scaling(
    n_shards: int,
    pruned_fraction: float = DEFAULT_PRUNED_FRACTION,
    scatter_fixed_fraction: float = SCATTER_FIXED_FRACTION,
    replicas_per_shard: int = 1,
    replica_read_efficiency: float = 1.0,
    think_time_s: float = THINK_TIME_S,
    active_fraction: float = ACTIVE_FRACTION,
) -> ScalingProjection:
    """Project the supported user population for ``n_shards``.

    Per web request, each shard serves ``7 * (p/S + (1-p) * (f + (1-f)/S))``
    query-equivalents: pruned queries spread ``1/S`` of their full cost
    onto a given shard, scatter queries put their (shrunken) per-branch
    cost on *every* shard.  Capacity is where the busiest shard reaches
    100%; the user population follows from one click per ``think_time_s``
    by the ``active_fraction`` of registered users.

    ``replicas_per_shard`` copies multiply read capacity, discounted by
    ``replica_read_efficiency`` (see :func:`replica_efficiency`): the
    primary always counts as one full copy; each follower contributes
    ``efficiency`` of a copy.  The default efficiency of 1.0 reproduces
    the pre-replication-aware projection exactly.
    """
    if n_shards < 1 or replicas_per_shard < 1:
        raise ValueError("need at least one shard and one replica")
    if not 0.0 <= replica_read_efficiency <= 1.0:
        raise ValueError("replica_read_efficiency must be within [0, 1]")
    full_service = 1.0 / DB_QUERIES_PER_SECOND
    scatter_per_shard = full_service * _scatter_service_fraction(
        n_shards, scatter_fixed_fraction
    )
    per_shard_load = QUERIES_PER_REQUEST * (
        pruned_fraction * full_service / n_shards
        + (1.0 - pruned_fraction) * scatter_per_shard
    )
    effective_copies = 1.0 + (replicas_per_shard - 1) * replica_read_efficiency
    capacity = effective_copies / per_shard_load
    active_rps_per_user = active_fraction / think_time_s
    return ScalingProjection(
        n_shards=n_shards,
        pruned_fraction=pruned_fraction,
        shard_load_per_request_s=per_shard_load,
        capacity_rps=capacity,
        users_supported=int(capacity / active_rps_per_user),
        replicas_per_shard=replicas_per_shard,
        effective_copies=effective_copies,
    )


def scaling_series(
    shard_counts: tuple[int, ...] = (1, 4, 16, 64, 256),
    pruned_fraction: float = DEFAULT_PRUNED_FRACTION,
    replicas_per_shard: int = 1,
) -> list[ScalingProjection]:
    """The projection swept to population scale (§1's "millions of
    users of the WWW" ambition, quantified)."""
    return [
        project_scaling(n_shards, pruned_fraction=pruned_fraction,
                        replicas_per_shard=replicas_per_shard)
        for n_shards in shard_counts
    ]


def print_sharded_figure5(results: list[ShardedBrowsingResult]) -> str:
    """Render the sharded Figure 5 extension as a paper-style table."""
    lines = ["Figure 5 (extended) - browse throughput vs catalog shards"]
    lines.append(
        f"{'shards':>7} {'req/s':>8} {'db q/s':>8} {'resp s':>8} "
        f"{'shard%':>7} {'max%':>6}"
    )
    for result in results:
        lines.append(
            f"{result.n_shards:>7} {result.throughput_rps:>8.1f} "
            f"{result.db_queries_per_s:>8.1f} {result.avg_response_s:>8.2f} "
            f"{result.shard_utilization * 100:>7.0f} "
            f"{result.max_shard_utilization * 100:>6.0f}"
        )
    return "\n".join(lines)


def print_scaling_projection(results: list[ScalingProjection]) -> str:
    """Render the analytic projection: shards to supported users."""
    lines = ["Projected catalog capacity vs shards "
             f"(think {THINK_TIME_S:.0f}s, {ACTIVE_FRACTION:.0%} active)"]
    lines.append(f"{'shards':>7} {'cap req/s':>10} {'users':>12}")
    for result in results:
        lines.append(
            f"{result.n_shards:>7} {result.capacity_rps:>10.1f} "
            f"{result.users_supported:>12,}"
        )
    return "\n".join(lines)
