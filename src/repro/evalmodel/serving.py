"""Discrete-event model of the concurrent serving tier (PR-8).

The live serving benchmark (:mod:`repro.web.loadgen` via
``benchmarks/harness.py``) measures a real :class:`~repro.web.WebServer`;
this model predicts the same two shapes analytically, so the measured
numbers can be sanity-checked against queueing theory:

* **worker scaling** — an open-loop arrival stream over a
  :class:`~repro.simkit.PriorityFcfsServer` with ``n_workers`` servers:
  throughput grows with the pool until the offered load is absorbed;
* **priority protection** — under overload, strict-priority admission
  (analysis > browse > bulk) keeps analysis-class goodput and waiting
  time near the uncontended level while browse is shed; with priorities
  off (one shared class) every class degrades together.

Service demands derive from the §7 calibration: each DM↔DBMS round trip
costs ``1 / DB_QUERIES_PER_SECOND``; a browse page pays
``PAGE_ROUND_TRIPS_BATCHED`` trips batched or ``QUERIES_PER_REQUEST``
unbatched, plus ``CPU_BASE_S`` of application logic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..simkit import PriorityFcfsServer, Simulator, StreamFactory, Tally, spawn
from .calibration import (
    CPU_BASE_S,
    DB_QUERIES_PER_SECOND,
    PAGE_ROUND_TRIPS_BATCHED,
    QUERIES_PER_REQUEST,
)

#: Admission classes in priority order, mirroring repro.web.scheduler.
SERVING_CLASSES = ("analysis", "browse", "bulk")

#: Default §7-style class mix for the overload experiment.
DEFAULT_CLASS_SHARES = {"analysis": 0.25, "browse": 0.60, "bulk": 0.15}

_RTT_S = 1.0 / DB_QUERIES_PER_SECOND


def _service_demands(batched: bool) -> dict[str, float]:
    """Per-class service time at a worker, from the calibration."""
    page_trips = PAGE_ROUND_TRIPS_BATCHED if batched else QUERIES_PER_REQUEST
    return {
        # A search is one indexed sweep at the DBMS plus app logic.
        "analysis": _RTT_S + CPU_BASE_S,
        # The §7.2 HLE page: its round trips plus app logic.
        "browse": page_trips * _RTT_S + CPU_BASE_S,
        # Static transfers never touch the database.
        "bulk": CPU_BASE_S,
    }


@dataclass(frozen=True)
class ServingModelResult:
    """Outcome of one simulated serving configuration."""

    n_workers: int
    arrival_rps: float
    priorities: bool
    batched: bool
    throughput_rps: float
    goodput_rps: dict[str, float]
    shed: dict[str, int]
    avg_wait_s: dict[str, float]
    worker_utilization: float


def simulate_serving(
    n_workers: int = 8,
    arrival_rps: float = 200.0,
    duration_s: float = 200.0,
    max_queue: Optional[int] = 64,
    priorities: bool = True,
    batched: bool = True,
    class_shares: Optional[dict[str, float]] = None,
    seed: int = 2003,
) -> ServingModelResult:
    """Open-loop arrivals of the three admission classes at one pool."""
    if n_workers < 1:
        raise ValueError("need at least one worker")
    if arrival_rps <= 0:
        raise ValueError("arrival_rps must be positive")
    shares = class_shares if class_shares is not None else DEFAULT_CLASS_SHARES
    demands = _service_demands(batched)
    sim = Simulator()
    pool = PriorityFcfsServer(sim, servers=n_workers, max_queue=max_queue,
                              name="workers")
    streams = StreamFactory(seed)
    arrivals = streams.stream("arrivals")
    routing = streams.stream("routing")
    completed = {cls: 0 for cls in SERVING_CLASSES}
    shed = {cls: 0 for cls in SERVING_CLASSES}
    waits = {cls: Tally() for cls in SERVING_CLASSES}
    cumulative = []
    acc = 0.0
    for cls in SERVING_CLASSES:
        acc += shares.get(cls, 0.0)
        cumulative.append((acc, cls))

    def draw_class() -> str:
        roll = routing.uniform(0.0, acc)
        for threshold, cls in cumulative:
            if roll <= threshold:
                return cls
        return cumulative[-1][1]

    def one_request(cls: str, priority: int):
        elapsed = yield pool.request(demands[cls], priority=priority)
        if elapsed is None:
            shed[cls] += 1
        else:
            completed[cls] += 1
            waits[cls].record(elapsed - demands[cls])

    def arrival_process():
        while True:
            yield arrivals.exponential(1.0 / arrival_rps)
            cls = draw_class()
            # priorities=False degrades every class to one shared queue,
            # mirroring AdmissionController(priorities=False).
            priority = SERVING_CLASSES.index(cls) if priorities else 1
            spawn(sim, one_request(cls, priority))

    spawn(sim, arrival_process())
    sim.run(until=duration_s)

    return ServingModelResult(
        n_workers=n_workers,
        arrival_rps=arrival_rps,
        priorities=priorities,
        batched=batched,
        throughput_rps=sum(completed.values()) / duration_s,
        goodput_rps={cls: completed[cls] / duration_s
                     for cls in SERVING_CLASSES},
        shed=dict(shed),
        avg_wait_s={cls: waits[cls].mean for cls in SERVING_CLASSES},
        worker_utilization=pool.busy_time / duration_s,
    )


def worker_scaling_series(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    arrival_rps: float = 400.0,
    batched: bool = True,
    duration_s: float = 200.0,
) -> list[ServingModelResult]:
    """Throughput vs pool size at a fixed (overloading) arrival rate —
    the model's counterpart of the live worker-scaling benchmark."""
    return [
        simulate_serving(n_workers=n, arrival_rps=arrival_rps,
                         batched=batched, duration_s=duration_s)
        for n in worker_counts
    ]


def admission_ab(
    n_workers: int = 8,
    overload_factor: float = 2.0,
    batched: bool = True,
    duration_s: float = 200.0,
) -> dict[str, ServingModelResult]:
    """The admission-control A/B at ``overload_factor``× capacity:
    identical arrivals with strict priorities on and off."""
    demands = _service_demands(batched)
    mean_demand = sum(DEFAULT_CLASS_SHARES[cls] * demands[cls]
                      for cls in SERVING_CLASSES)
    capacity_rps = n_workers / mean_demand
    rate = overload_factor * capacity_rps
    return {
        "with_priorities": simulate_serving(
            n_workers=n_workers, arrival_rps=rate, priorities=True,
            batched=batched, duration_s=duration_s),
        "without_priorities": simulate_serving(
            n_workers=n_workers, arrival_rps=rate, priorities=False,
            batched=batched, duration_s=duration_s),
    }


def print_serving(results: list[ServingModelResult]) -> str:
    """Render a series as the paper-style text table."""
    lines = ["Serving model - throughput vs worker-pool size"]
    lines.append(f"{'workers':>8} {'offered':>8} {'req/s':>8} "
                 f"{'analysis':>9} {'browse':>8} {'bulk':>7} {'util%':>6}")
    for result in results:
        lines.append(
            f"{result.n_workers:>8} {result.arrival_rps:>8.0f} "
            f"{result.throughput_rps:>8.1f} "
            f"{result.goodput_rps['analysis']:>9.1f} "
            f"{result.goodput_rps['browse']:>8.1f} "
            f"{result.goodput_rps['bulk']:>7.1f} "
            f"{result.worker_utilization * 100:>6.0f}"
        )
    return "\n".join(lines)
