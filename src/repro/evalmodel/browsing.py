"""Discrete-event model of the web-browsing testbed (paper §7).

Closed-loop clients with zero think time cycle through: middle-tier CPU
work (processor sharing; per-request demand grows with the node's
connected-client count) followed by seven database queries (FCFS at the
shared DBMS).  Clients are spread evenly over the middle-tier nodes
(§7.2: "If multiple servers are used, the client requests are spread
evenly").

``simulate_browsing`` returns throughput and utilisation for one
configuration; :func:`figure4_series` and :func:`figure5_series` sweep
the paper's x-axes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simkit import FcfsServer, ProcessorSharing, Simulator, Tally, spawn
from .calibration import (
    CPU_BASE_S,
    CPU_PER_CLIENT_S,
    DB_QUERIES_PER_SECOND,
    QUERIES_PER_REQUEST,
)


@dataclass(frozen=True)
class BrowsingResult:
    """Measured outcome of one simulated configuration."""

    n_clients: int
    n_middle_tier: int
    throughput_rps: float      # completed web requests / second
    db_queries_per_s: float
    avg_response_s: float
    middle_tier_utilization: float
    db_utilization: float


def simulate_browsing(
    n_clients: int,
    n_middle_tier: int = 1,
    duration_s: float = 400.0,
    warmup_s: float = 50.0,
) -> BrowsingResult:
    """Simulate one (clients, middle-tier nodes) configuration."""
    if n_clients < 1 or n_middle_tier < 1:
        raise ValueError("need at least one client and one node")
    sim = Simulator()
    database = FcfsServer(sim, servers=1, name="dbms")
    # One effective CPU per node: the calibration constants (derived from
    # the Figure 4 anchor points) already absorb the testbed's dual-CPU
    # web servers.
    nodes = [
        ProcessorSharing(sim, cores=1, speed=1.0, name=f"app{node}")
        for node in range(n_middle_tier)
    ]
    # Clients spread evenly; each node's CPU demand reflects its share.
    clients_per_node = [
        n_clients // n_middle_tier + (1 if node < n_clients % n_middle_tier else 0)
        for node in range(n_middle_tier)
    ]
    db_query_service = 1.0 / DB_QUERIES_PER_SECOND
    response_times = Tally()
    completions = {"count": 0, "after_warmup": 0}

    def client_loop(node_index: int):
        node = nodes[node_index]
        cpu_demand = CPU_BASE_S + CPU_PER_CLIENT_S * clients_per_node[node_index]
        while True:
            started = sim.now
            # Application-logic work: template assembly, session handling,
            # result parsing.
            yield node.service(cpu_demand)
            # Seven DM queries against the shared DBMS.
            for _query in range(QUERIES_PER_REQUEST):
                yield database.request(db_query_service)
            elapsed = sim.now - started
            completions["count"] += 1
            if sim.now > warmup_s:
                completions["after_warmup"] += 1
                response_times.record(elapsed)

    for node_index, count in enumerate(clients_per_node):
        for _client in range(count):
            spawn(sim, client_loop(node_index))
    sim.run(until=duration_s)

    window = duration_s - warmup_s
    throughput = completions["after_warmup"] / window
    return BrowsingResult(
        n_clients=n_clients,
        n_middle_tier=n_middle_tier,
        throughput_rps=throughput,
        db_queries_per_s=throughput * QUERIES_PER_REQUEST,
        avg_response_s=response_times.mean,
        middle_tier_utilization=sum(node.busy_time for node in nodes)
        / (duration_s * len(nodes)),
        db_utilization=database.busy_time / duration_s,
    )


def figure4_series(
    client_counts: tuple[int, ...] = (16, 32, 48, 64, 80, 96),
    duration_s: float = 400.0,
) -> list[BrowsingResult]:
    """Figure 4: browse throughput versus number of clients, one node."""
    return [
        simulate_browsing(n_clients, n_middle_tier=1, duration_s=duration_s)
        for n_clients in client_counts
    ]


def figure5_series(
    node_counts: tuple[int, ...] = (1, 2, 3, 5),
    n_clients: int = 96,
    duration_s: float = 400.0,
) -> list[BrowsingResult]:
    """Figure 5: throughput versus middle-tier nodes at 96 clients."""
    return [
        simulate_browsing(n_clients, n_middle_tier=n_nodes, duration_s=duration_s)
        for n_nodes in node_counts
    ]


def print_figure4(results: list[BrowsingResult]) -> str:
    """Render the Figure 4 series as the paper-style text table."""
    lines = ["Figure 4 - browse throughput vs clients (single middle-tier server)"]
    lines.append(f"{'clients':>8} {'req/s':>8} {'db q/s':>8} {'resp s':>8} {'cpu%':>6} {'db%':>6}")
    for result in results:
        lines.append(
            f"{result.n_clients:>8} {result.throughput_rps:>8.1f} "
            f"{result.db_queries_per_s:>8.1f} {result.avg_response_s:>8.2f} "
            f"{result.middle_tier_utilization * 100:>6.0f} {result.db_utilization * 100:>6.0f}"
        )
    return "\n".join(lines)


def print_figure5(results: list[BrowsingResult]) -> str:
    """Render the Figure 5 series as the paper-style text table."""
    lines = ["Figure 5 - browse throughput vs middle-tier servers (96 clients)"]
    lines.append(f"{'nodes':>6} {'req/s':>8} {'db q/s':>8} {'resp s':>8} {'db%':>6}")
    for result in results:
        lines.append(
            f"{result.n_middle_tier:>6} {result.throughput_rps:>8.1f} "
            f"{result.db_queries_per_s:>8.1f} {result.avg_response_s:>8.2f} "
            f"{result.db_utilization * 100:>6.0f}"
        )
    return "\n".join(lines)
