"""Discrete-event model of the processing testbed (paper §8, Table 1).

Structure of one analysis job, following §8.1 and §8.4:

1. the central dispatcher (one instance — "the central scheduling in
   combination with the fault tolerant protocol among the services")
   hands the job to a location; handing off to the *remote client* is
   much more expensive than to the co-located server;
2. client-bound jobs pull their input over the 2 MB/s HTTP link unless it
   is already cached on the client's scratch space ('client/cached');
3. the job computes on its location — the server offers 1 or 2 analysis
   slots on 2 CPUs (concurrent server analyses interfere, strongly for
   the I/O-bound histograms), the client offers 1 slot;
4. 3 queries + 2 edits against the DM account for the (small, constant)
   data-management cost.

Submission: the imaging test's published sojourn times (109 s at a 60 s
service) imply requests were paced near capacity (~1.8 in system by
Little's law), while the histogram test's (98 s at ~5 s service) imply
the 20-request window was kept full; the model follows both regimes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simkit import FcfsServer, Simulator, Tally, spawn
from .calibration import (
    CLIENT_CORES,
    DM_INTERACTION_S,
    HISTOGRAM_INPUT_MB_PER_REQUEST,
    HISTOGRAM_OUTPUT_MB_TOTAL,
    HISTOGRAM_REQUESTS,
    HISTOGRAM_WORK_CLIENT_S,
    HISTOGRAM_WORK_SERVER_S,
    HTTP_BANDWIDTH_MB_S,
    IMAGING_INPUT_MB_PER_REQUEST,
    IMAGING_OUTPUT_MB_TOTAL,
    IMAGING_REQUESTS,
    IMAGING_WORK_CLIENT_S,
    IMAGING_WORK_SERVER_S,
    PROCESSING_WINDOW,
    SERVER_CORES,
)

#: Dispatcher occupancy per job handoff (§8.4).  Remote handoffs carry
#: the fault-tolerant protocol's round trips over HTTP/RMI and push the
#: input data synchronously; co-located handoffs are cheap.
HANDOFF_SERVER_S = 0.3
HANDOFF_CLIENT_S = 5.5

#: Concurrent server analyses interfere (Table 1: two concurrent
#: histograms take 8.7 s each vs 6.4 s alone; imaging barely degrades).
SERVER_INTERFERENCE = {"imaging": 0.035, "histogram": 0.40}

#: Fraction of a job's wall time that is kernel/system time, by cause:
#: data movement and DM interactions (Table 1 reports 2-17% sys CPU,
#: higher for the I/O-bound histogram test).
SYS_FRACTION_PER_MB = 0.012


@dataclass(frozen=True)
class Workload:
    name: str
    n_requests: int
    input_mb: float            # per request (files overlap across requests)
    total_input_mb: float      # the test's distinct input volume (50 MB)
    output_mb_total: float
    work_server_s: float       # single-slot service time on the server
    work_client_s: float
    paced: bool                # True: submit near capacity; False: window


IMAGING = Workload(
    "imaging", IMAGING_REQUESTS, IMAGING_INPUT_MB_PER_REQUEST, 50.0,
    IMAGING_OUTPUT_MB_TOTAL, IMAGING_WORK_SERVER_S, IMAGING_WORK_CLIENT_S,
    paced=True,
)
HISTOGRAM = Workload(
    "histogram", HISTOGRAM_REQUESTS, HISTOGRAM_INPUT_MB_PER_REQUEST, 50.0,
    HISTOGRAM_OUTPUT_MB_TOTAL, HISTOGRAM_WORK_SERVER_S, HISTOGRAM_WORK_CLIENT_S,
    paced=False,
)


@dataclass(frozen=True)
class Configuration:
    """One column of Table 1."""

    label: str                 # e.g. "S", "S+C"
    server_slots: int          # concurrent analyses on the server (0 = none)
    client_slots: int          # concurrent analyses on the client (0 = none)
    client_cached: bool = False

    @property
    def concurrency_label(self) -> str:
        if self.server_slots and self.client_slots:
            return f"{self.server_slots}+{self.client_slots}"
        return str(self.server_slots or self.client_slots)


IMAGING_CONFIGS = (
    Configuration("S", 1, 0),
    Configuration("S", 2, 0),
    Configuration("C", 0, 1),
    Configuration("S+C", 2, 1),
)
HISTOGRAM_CONFIGS = (
    Configuration("S", 1, 0),
    Configuration("S", 2, 0),
    Configuration("C", 0, 1),
    Configuration("C/cached", 0, 1, client_cached=True),
    Configuration("S+C", 2, 1),
)


@dataclass
class ProcessingResult:
    """One Table 1 column's measured outputs."""

    workload: str
    label: str
    concurrency: str
    overall_duration_s: float
    turnover_gb_per_day: float
    avg_sojourn_s: float
    sys_cpu_server_pct: float
    usr_cpu_server_pct: float
    sys_cpu_client_pct: float
    usr_cpu_client_pct: float
    queries: int
    edits: int


def _server_service(workload: Workload, slots: int) -> float:
    interference = SERVER_INTERFERENCE[workload.name]
    return workload.work_server_s * (1.0 + interference * (slots - 1))


def _capacity(workload: Workload, config: Configuration) -> float:
    """Analytic jobs/second capacity, used to pace the submitter.

    Handoff and compute pipeline, so the client path's cycle time is the
    maximum of its compute time and its (handoff + transfer) time.
    """
    rate = 0.0
    if config.server_slots:
        rate += config.server_slots / (
            _server_service(workload, config.server_slots) + DM_INTERACTION_S
        )
    if config.client_slots:
        transfer = 0.0 if config.client_cached else workload.input_mb / HTTP_BANDWIDTH_MB_S
        cycle = max(workload.work_client_s, HANDOFF_CLIENT_S + transfer)
        rate += config.client_slots / cycle
    return rate


def simulate_processing(workload: Workload, config: Configuration) -> ProcessingResult:
    """Simulate one workload/configuration cell of Table 1."""
    if not config.server_slots and not config.client_slots:
        raise ValueError("configuration must offer at least one slot")
    sim = Simulator()
    dispatcher = FcfsServer(sim, servers=1, name="dispatcher")
    server = (
        FcfsServer(sim, servers=config.server_slots, name="server")
        if config.server_slots
        else None
    )
    client = (
        FcfsServer(sim, servers=config.client_slots, name="client")
        if config.client_slots
        else None
    )
    dm = FcfsServer(sim, servers=1, name="dm")
    sojourns = Tally()
    state = {
        "in_system": 0,
        "completed": 0,
        "finish_time": 0.0,
        "client_jobs": 0,
        "server_busy": 0.0,
        "client_busy": 0.0,
        "bytes_moved_mb": 0.0,
    }
    server_service = _server_service(workload, config.server_slots or 1)

    transfer_s = 0.0 if config.client_cached else workload.input_mb / HTTP_BANDWIDTH_MB_S

    def choose_client() -> bool:
        """Expected-finish routing, evaluated at dispatch time."""
        if client is None:
            return False
        if server is None:
            return True
        server_backlog = server.busy + server.queued
        client_backlog = client.busy + client.queued
        server_eta = (server_backlog + 1) / config.server_slots * server_service
        client_eta = (client_backlog + 1) * max(
            workload.work_client_s, HANDOFF_CLIENT_S + transfer_s
        )
        return client_eta < server_eta

    def job():
        started = sim.now
        # Stage 1: the dispatcher picks a location (decision cost only).
        yield dispatcher.request(0.05)
        to_client = choose_client()
        if to_client:
            # Stage 2: synchronous remote handoff — the dispatcher stays
            # busy through the protocol round trips and the data push.
            state["client_jobs"] += 1
            if not config.client_cached:
                state["bytes_moved_mb"] += workload.input_mb
            yield dispatcher.request(HANDOFF_CLIENT_S + transfer_s)
        else:
            yield dispatcher.request(HANDOFF_SERVER_S)
        # DM queries (constant in all scenarios, §8.4).
        yield dm.request(DM_INTERACTION_S * 0.6)
        if to_client:
            state["client_busy"] += workload.work_client_s
            yield client.request(workload.work_client_s)
        else:
            state["server_busy"] += server_service
            yield server.request(server_service)
        # DM edits / result write-back.
        yield dm.request(DM_INTERACTION_S * 0.4)
        sojourns.record(sim.now - started)
        state["in_system"] -= 1
        state["completed"] += 1
        state["finish_time"] = sim.now

    def submitter():
        pacing = 0.98 / _capacity(workload, config) if workload.paced else 0.0
        for _index in range(workload.n_requests):
            while state["in_system"] >= PROCESSING_WINDOW:
                yield 0.5
            state["in_system"] += 1
            spawn(sim, job())
            if pacing:
                yield pacing

    spawn(sim, submitter())
    sim.run()

    duration = state["finish_time"]
    turnover = workload.total_input_mb / 1000.0 / duration * 86_400.0
    # CPU accounting: usr = analysis compute; sys = data movement + DM.
    server_cores_time = duration * SERVER_CORES
    usr_server = state["server_busy"] / server_cores_time * 100.0 if config.server_slots else 0.0
    dm_time = workload.n_requests * DM_INTERACTION_S
    moved = state["bytes_moved_mb"]
    sys_server = (dm_time + moved * SYS_FRACTION_PER_MB * 40) / server_cores_time * 100.0
    client_cores_time = duration * CLIENT_CORES
    usr_client = state["client_busy"] / client_cores_time * 100.0 if config.client_slots else 0.0
    sys_client = (moved * SYS_FRACTION_PER_MB * 30) / client_cores_time * 100.0 if config.client_slots else 0.0
    return ProcessingResult(
        workload=workload.name,
        label=config.label,
        concurrency=config.concurrency_label,
        overall_duration_s=duration,
        turnover_gb_per_day=turnover,
        avg_sojourn_s=sojourns.mean,
        sys_cpu_server_pct=sys_server,
        usr_cpu_server_pct=usr_server,
        sys_cpu_client_pct=sys_client,
        usr_cpu_client_pct=usr_client,
        queries=workload.n_requests * 3,
        edits=workload.n_requests * 2,
    )


def table1_imaging() -> list[ProcessingResult]:
    """All Table 1 (left) imaging configurations."""
    return [simulate_processing(IMAGING, config) for config in IMAGING_CONFIGS]


def table1_histogram() -> list[ProcessingResult]:
    """All Table 1 (right) histogram configurations."""
    return [simulate_processing(HISTOGRAM, config) for config in HISTOGRAM_CONFIGS]


def print_table1(results: list[ProcessingResult]) -> str:
    """Render one Table 1 half as the paper-style text table."""
    workload = results[0].workload
    lines = [f"Table 1 ({workload} test)"]
    header = f"{'config':>10} {'conc':>5} {'duration':>9} {'GB/day':>7} {'sojourn':>8} " \
             f"{'sysS%':>6} {'usrS%':>6} {'sysC%':>6} {'usrC%':>6}"
    lines.append(header)
    for result in results:
        lines.append(
            f"{result.label:>10} {result.concurrency:>5} "
            f"{result.overall_duration_s:>9.0f} {result.turnover_gb_per_day:>7.1f} "
            f"{result.avg_sojourn_s:>8.0f} {result.sys_cpu_server_pct:>6.1f} "
            f"{result.usr_cpu_server_pct:>6.1f} {result.sys_cpu_client_pct:>6.1f} "
            f"{result.usr_cpu_client_pct:>6.1f}"
        )
    return "\n".join(lines)
