"""Interactive catalog visualization (paper §6.3).

"The basic idea is to reorganize the catalogs as a number of
multi-dimensional arrays and allow users to specify ranges in any of the
dimensions.  Based on these ranges the information is then presented in a
compact and efficient manner using density (number of tuples per bin) and
extent (location and extent of each tuple or cluster of tuples) plots."

The arrays are pre-sorted on the most relevant attribute, partitioned
across the dimensions into materialized views, and the partitions are
wavelet-encoded so a client can decode approximations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..wavelets import EncodedStream, decode, encode


@dataclass(frozen=True)
class Extent:
    """Location and extent of one tuple cluster in two dimensions."""

    x_low: float
    x_high: float
    y_low: float
    y_high: float
    count: int


class CatalogArray:
    """Catalog tuples as a multi-dimensional numeric array.

    ``dimensions`` names the attributes; rows with a NULL in any chosen
    dimension are dropped (they cannot be placed in the array).
    """

    def __init__(self, rows: Sequence[dict], dimensions: Sequence[str],
                 sort_by: Optional[str] = None):
        if not dimensions:
            raise ValueError("need at least one dimension")
        self.dimensions = list(dimensions)
        kept = [
            row for row in rows
            if all(row.get(dimension) is not None for dimension in dimensions)
        ]
        sort_key = sort_by or dimensions[0]
        kept.sort(key=lambda row: row[sort_key])
        self.data = np.array(
            [[float(row[dimension]) for dimension in dimensions] for row in kept]
        ) if kept else np.empty((0, len(dimensions)))

    def __len__(self) -> int:
        return len(self.data)

    def _axis(self, dimension: str) -> int:
        try:
            return self.dimensions.index(dimension)
        except ValueError as exc:
            raise KeyError(f"unknown dimension {dimension!r}") from exc

    # -- range selection --------------------------------------------------------

    def select(self, **ranges: tuple[float, float]) -> "CatalogArray":
        """Subset by half-open ranges on any dimensions."""
        mask = np.ones(len(self.data), dtype=bool)
        for dimension, (low, high) in ranges.items():
            axis = self._axis(dimension)
            mask &= (self.data[:, axis] >= low) & (self.data[:, axis] < high)
        selected = CatalogArray.__new__(CatalogArray)
        selected.dimensions = list(self.dimensions)
        selected.data = self.data[mask]
        return selected

    # -- density plots -------------------------------------------------------------

    def density(self, x_dim: str, y_dim: str, bins: int = 32) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(density, x_edges, y_edges): tuples per bin over two dimensions."""
        x_axis = self._axis(x_dim)
        y_axis = self._axis(y_dim)
        if len(self.data) == 0:
            edges = np.linspace(0, 1, bins + 1)
            return np.zeros((bins, bins)), edges, edges
        density, x_edges, y_edges = np.histogram2d(
            self.data[:, x_axis], self.data[:, y_axis], bins=bins
        )
        return density, x_edges, y_edges

    def density_1d(self, dimension: str, bins: int = 64) -> tuple[np.ndarray, np.ndarray]:
        axis = self._axis(dimension)
        if len(self.data) == 0:
            edges = np.linspace(0, 1, bins + 1)
            return np.zeros(bins), edges
        counts, edges = np.histogram(self.data[:, axis], bins=bins)
        return counts.astype(float), edges

    # -- extent plots -----------------------------------------------------------------

    def extents(self, x_dim: str, y_dim: str, cluster_gap: Optional[float] = None) -> list[Extent]:
        """Cluster tuples along the (sorted) x dimension and report each
        cluster's bounding box."""
        x_axis = self._axis(x_dim)
        y_axis = self._axis(y_dim)
        if len(self.data) == 0:
            return []
        order = np.argsort(self.data[:, x_axis])
        xs = self.data[order, x_axis]
        ys = self.data[order, y_axis]
        if cluster_gap is None:
            span = float(xs[-1] - xs[0]) or 1.0
            cluster_gap = span / 20.0
        extents: list[Extent] = []
        start = 0
        for index in range(1, len(xs) + 1):
            if index == len(xs) or xs[index] - xs[index - 1] > cluster_gap:
                cluster_x = xs[start:index]
                cluster_y = ys[start:index]
                extents.append(
                    Extent(
                        float(cluster_x.min()), float(cluster_x.max()),
                        float(cluster_y.min()), float(cluster_y.max()),
                        int(index - start),
                    )
                )
                start = index
        return extents

    # -- wavelet-encoded materialized views ----------------------------------------------

    def encode_density(self, dimension: str, bins: int = 256,
                       quantizer_step: float = 0.5) -> EncodedStream:
        """A 1-D density view encoded for progressive client download."""
        counts, _edges = self.density_1d(dimension, bins=bins)
        return encode(counts, quantizer_step=quantizer_step)

    @staticmethod
    def decode_density(payload: bytes) -> np.ndarray:
        """Client-side decode of (a prefix of) an encoded density view."""
        return decode(payload)
