"""Interactive catalog visualization: density/extent plots over
multi-dimensional catalog arrays (paper §6.3)."""

from .arrays import CatalogArray, Extent

__all__ = ["CatalogArray", "Extent"]
