"""The replication log: committed redo batches, totally ordered by LSN.

The primary's commit listener appends each durable transaction's redo
records here; followers consume entries strictly in LSN order.  The log
is in-memory (the durable copy of every record already lives in the
primary's WAL) and retains a bounded suffix: a follower whose acked
offset has fallen behind :attr:`ReplicationLog.base_lsn` can no longer
catch up by replay and must be re-synced via anti-entropy.
"""

from __future__ import annotations

import threading
from collections import deque
from itertools import islice
from typing import Any, NamedTuple


class LogEntry(NamedTuple):
    """One committed transaction, as shipped: ``records`` is the redo
    batch exactly as journaled on the primary.  A ``NamedTuple`` (not a
    frozen dataclass) because one is built per commit on the hot path."""

    lsn: int
    tx_id: int
    records: tuple[dict[str, Any], ...]


class ReplicationLog:
    """Thread-safe append-only sequence of :class:`LogEntry`.

    LSNs are 1-based and dense.  Entries with ``base_lsn < lsn <=
    head_lsn`` are retained; :meth:`truncate_to` advances the base once
    every follower has acknowledged past it.
    """

    def __init__(self, retain: int = 4096):
        # A deque so steady-state eviction is O(1): the commit hook rides
        # every primary write, and a list would re-copy ``retain``
        # elements per append once the cap is reached.
        self._entries: deque[LogEntry] = deque()
        self._lock = threading.Lock()
        self._base = 0
        self._head = 0
        self._retain = retain

    @property
    def head_lsn(self) -> int:
        return self._head

    @property
    def base_lsn(self) -> int:
        return self._base

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def append(self, tx_id: int, records: list[dict[str, Any]]) -> int:
        """Append one committed batch; returns its LSN."""
        with self._lock:
            self._head += 1
            self._entries.append(LogEntry(self._head, tx_id, tuple(records)))
            while len(self._entries) > self._retain:
                self._entries.popleft()
                self._base += 1
            return self._head

    def entries_from(self, lsn: int) -> list[LogEntry]:
        """All retained entries with LSN strictly greater than ``lsn``.

        Raises :class:`LookupError` if ``lsn`` has fallen behind the
        retained window (the caller must fall back to a full re-sync).
        """
        with self._lock:
            if lsn < self._base:
                raise LookupError(
                    f"lsn {lsn} predates retained log (base {self._base})"
                )
            start = lsn - self._base
            return list(islice(self._entries, start, None))

    def truncate_to(self, lsn: int) -> int:
        """Drop entries with LSN <= ``lsn``; returns the number dropped."""
        with self._lock:
            dropped = min(max(lsn, self._base), self._head) - self._base
            for _ in range(dropped):
                self._entries.popleft()
            self._base += dropped
            return dropped
