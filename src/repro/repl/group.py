"""Replica groups: one primary, N log-shipped followers, self-healing.

A :class:`ReplicaGroup` quacks like a :class:`~repro.metadb.Database`
(``execute``/``begin``/``commit``/``rollback``/DDL/``stats``), so the
DM's I/O layer and :class:`~repro.shard.ShardedDatabase` sit on top of
it unchanged.  Writes go to the primary only; its commit listener
appends each durable redo batch to the :class:`ReplicationLog`, and the
:class:`LogShipper` streams the batches to followers.  Reads rotate
across the primary and every follower that is healthy *and* fresh
enough (``max_lag``), behind the standard breaker machinery.

Per-copy state machine::

    in_sync ──lag──> lagging ──breaker open / crash──> dead
       ^                ^                                │
       │                └── log replay caught up ────────┤ rejoin_replica()
       └─────── lag drained ──────── rejoining <─────────┘

``dead`` has two flavours: a *partitioned* copy (breaker tripped; it is
probed again after the cooldown and revives on the first success) and a
*crashed* copy (``kill_replica`` / a real process death; it only comes
back through :meth:`ReplicaGroup.rejoin_replica`, which recovers the
follower's own WAL — torn tail discarded — and catches up by log replay
from its last durably acked offset, falling back to an anti-entropy
full re-sync only when the retained log no longer reaches back far
enough).
"""

from __future__ import annotations

import enum
import threading
from pathlib import Path
from typing import Any, Optional, Union

from ..metadb.database import Database, DatabaseStats
from ..metadb.query import Delete, Explain, Insert, Select, Update
from ..metadb.schema import TableSchema
from ..metadb.sql import Statement, parse
from ..metadb.transactions import Transaction
from ..obs import Observability, resolve as resolve_obs
from ..resil.breaker import BreakerOpen, BreakerState, CircuitBreaker
from ..resil.faults import fire as fire_fault
from ..resil.policies import TRANSIENT_ERRORS
from .antientropy import repair_replica, verify_replica
from .log import ReplicationLog
from .shipper import LogShipper


class ReplicaState(enum.Enum):
    IN_SYNC = "in_sync"
    LAGGING = "lagging"
    DEAD = "dead"
    REJOINING = "rejoining"


class Replica:
    """One follower copy and its replication bookkeeping."""

    def __init__(self, name: str, db: Database, path: Optional[Path] = None):
        self.name = name
        self.db = db
        self.path = path
        self.acked_lsn = 0
        self.state = ReplicaState.IN_SYNC
        self.crashed = False
        self.reads = 0
        self.ship_failures = 0
        self.last_repair: Optional[dict[str, Any]] = None

    def lag(self, head_lsn: int) -> int:
        return max(0, head_lsn - self.acked_lsn)


class ReplicaGroup:
    """One primary plus N log-shipped followers behind ``execute()``.

    ``max_lag`` is the staleness contract, in committed transactions: a
    follower may serve reads while trailing the primary by at most
    ``max_lag`` log entries.  The default 0 gives read-your-writes from
    every copy (with ``auto_ship`` every commit ships synchronously, so
    healthy followers never lag); raising it trades freshness for read
    availability while followers catch up.
    """

    def __init__(
        self,
        primary: Optional[Database] = None,
        name: str = "metadb",
        path: Optional[Union[str, Path]] = None,
        n_replicas: int = 0,
        obs: Optional[Observability] = None,
        max_lag: int = 0,
        auto_ship: bool = True,
        breaker_cooldown_s: float = 5.0,
        n_ranges: int = 8,
        fault_scope: Optional[str] = None,
    ):
        self.obs = resolve_obs(obs)
        self._path = Path(path) if path is not None else None
        if primary is None:
            primary = Database(path=self._path, name=name, obs=self.obs,
                               fault_scope=fault_scope)
        self.primary = primary
        self.max_lag = max_lag
        self.auto_ship = auto_ship
        self.breaker_cooldown_s = breaker_cooldown_s
        self.n_ranges = n_ranges
        self.log = ReplicationLog()
        self.shipper = LogShipper(self.log, obs=self.obs)
        self.replicas: list[Replica] = []
        self.breakers: dict[str, CircuitBreaker] = {}
        self.stats = DatabaseStats()
        self._lock = threading.Lock()        # topology + read cursor + counters
        self._ship_lock = threading.Lock()   # serialises follower applies
        self._read_cursor = 0
        self.failovers = 0
        self.rejoins = 0
        self.full_clones = 0
        self.repairs = 0
        self.reads_by_copy: dict[str, int] = {self.primary.name: 0}
        # Resolved once: the commit hook rides every primary write, so it
        # must not pay the registry's label-key lookup per transaction.
        self._head_gauge = self.obs.gauge("repl.head_lsn", db=self.primary.name)
        self.primary.add_commit_listener(self._on_primary_commit)
        for _ in range(n_replicas):
            self.add_replica()

    @property
    def name(self) -> str:
        return self.primary.name

    @property
    def n_copies(self) -> int:
        return 1 + len(self.replicas)

    # -- topology ------------------------------------------------------------

    def _replica(self, name: str) -> Replica:
        for replica in self.replicas:
            if replica.name == name:
                return replica
        raise LookupError(f"no replica named {name!r} in group {self.name!r}")

    def _breaker_for(self, copy_name: str) -> CircuitBreaker:
        breaker = self.breakers.get(copy_name)
        if breaker is None:
            breaker = CircuitBreaker(
                name=f"repl.copy.{copy_name}",
                window=10,
                min_calls=3,
                failure_rate=0.5,
                cooldown_s=self.breaker_cooldown_s,
                obs=self.obs,
            )
            self.breakers[copy_name] = breaker
        return breaker

    def add_replica(self, db: Optional[Database] = None,
                    name: Optional[str] = None) -> Replica:
        """Attach a follower; by default a fresh database under
        ``<group path>/replica-<n>/`` (in-memory when the group is),
        bootstrapped to the primary's current state via anti-entropy."""
        index = len(self.replicas) + 1
        name = name or f"{self.name}-r{index}"
        replica_path = self._path / f"replica-{index}" if self._path else None
        if db is None:
            db = Database(path=replica_path, name=name, obs=self.obs)
        replica = Replica(name=name, db=db, path=replica_path)
        started_empty = not db.table_names()
        report = self._resync(replica, bootstrap=True)
        if started_empty and report["rows_cloned"]:
            self.full_clones += 1
        if not started_empty or self.primary.table_names():
            # Re-opened with prior state, or cloned a populated primary:
            # worth an event either way; a fresh empty pair is silent.
            self.obs.event(
                "info", "repl", "replica.bootstrapped",
                f"replica {name!r} bootstrapped into group {self.name!r}",
                db=self.name, replica=name,
            )
        with self._lock:
            self.replicas.append(replica)
            self.reads_by_copy[name] = 0
        self.obs.set_gauge("repl.replicas", len(self.replicas), db=self.name)
        return replica

    # -- state machine -------------------------------------------------------

    def _transition(self, replica: Replica, state: ReplicaState) -> None:
        previous = replica.state
        if previous is state:
            return
        replica.state = state
        self.obs.event(
            "warn" if state is ReplicaState.DEAD else "info",
            "repl", "replica.transition",
            f"replica {replica.name!r}: {previous.value} -> {state.value}",
            db=self.name, replica=replica.name,
            from_state=previous.value, to_state=state.value,
            acked_lsn=replica.acked_lsn, head_lsn=self.log.head_lsn,
        )

    def _update_health(self, replica: Replica) -> None:
        if replica.crashed:
            return
        lag = replica.lag(self.log.head_lsn)
        self.obs.set_gauge("repl.lag", lag, db=self.name, replica=replica.name)
        self._transition(
            replica,
            ReplicaState.IN_SYNC if lag == 0 else ReplicaState.LAGGING,
        )

    def kill_replica(self, name: str) -> None:
        """Simulate a follower crash: the copy stops serving immediately
        and only :meth:`rejoin_replica` brings it back.  Nothing is
        flushed — exactly what a real process death leaves behind (its
        WAL holds every acked batch; anything in flight is lost)."""
        replica = self._replica(name)
        replica.crashed = True
        self._transition(replica, ReplicaState.DEAD)

    def rejoin_replica(self, name: str) -> dict[str, Any]:
        """Recover a crashed follower and catch it up.

        The follower re-opens from its own WAL (snapshot + journal
        replay; a torn tail is detected and truncated by
        :class:`~repro.metadb.wal.Journal`), which also recovers its
        last durably acked offset.  Catch-up is then a log replay of
        everything past that offset — no full ``clone_database`` —
        unless the retained log window no longer reaches back that far,
        in which case anti-entropy re-syncs it range by range.
        """
        replica = self._replica(name)
        self._transition(replica, ReplicaState.REJOINING)
        if replica.path is not None:
            db = Database(path=replica.path, name=replica.name, obs=self.obs)
        else:
            # In-memory follower: a crash loses everything.
            db = Database(name=replica.name, obs=self.obs)
        replica.db = db
        replica.crashed = False
        recovered_lsn = db.replication_offset
        replica.acked_lsn = recovered_lsn
        result: dict[str, Any]
        try:
            replayed = 0
            with self._ship_lock:
                # Shipping during the rejoin may hit the same transient
                # faults as any ship; the acked offset reflects exactly
                # the applied batches, so a retry simply resumes.  After
                # the retry budget the copy is left lagging — the next
                # ship or repair pass finishes the catch-up.
                for _attempt in range(32):
                    try:
                        replayed += self.shipper.ship(replica)
                        break
                    except LookupError:
                        raise
                    except TRANSIENT_ERRORS:
                        replica.ship_failures += 1
                        self.obs.count("repl.ship_failures", db=self.name,
                                       replica=name)
            result = {"mode": "log_replay", "replayed_records": replayed,
                      "from_lsn": recovered_lsn}
            self.obs.count("repl.replayed_records", replayed,
                           db=self.name, replica=name)
        except LookupError:
            report = self._resync(replica)
            self.full_clones += 1
            self.obs.count("repl.full_clones", db=self.name, replica=name)
            result = {"mode": "full_resync", "rows_cloned": report["rows_cloned"]}
        self.rejoins += 1
        self.obs.count("repl.rejoins", db=self.name, replica=name)
        self._breaker_for(name).reset()
        self._update_health(replica)
        # Commits that landed while the state was still ``rejoining`` were
        # skipped by auto-ship; drain them now that the copy is live.
        with self._ship_lock:
            self._ship_one(replica)
        self.obs.event(
            "info", "repl", "replica.rejoined",
            f"replica {name!r} rejoined via {result['mode']}",
            db=self.name, replica=name, **{
                k: v for k, v in result.items()
                if isinstance(v, (int, str, float))
            },
        )
        return result

    # -- log shipping --------------------------------------------------------

    def _on_primary_commit(self, tx_id: int, records: list[dict[str, Any]]) -> None:
        lsn = self.log.append(tx_id, records)
        self._head_gauge.set(lsn)
        if self.auto_ship and self.replicas:
            self.ship()

    def ship(self, replica_name: Optional[str] = None) -> int:
        """Push pending log entries to followers; returns records shipped."""
        targets = (
            [self._replica(replica_name)] if replica_name is not None
            else list(self.replicas)
        )
        shipped = 0
        with self._ship_lock:
            for replica in targets:
                shipped += self._ship_one(replica)
        self._truncate_log()
        return shipped

    def _ship_one(self, replica: Replica) -> int:
        """Ship to one follower (``_ship_lock`` held).  Failures never
        propagate to the writer: they are recorded against the copy's
        breaker and the copy degrades to lagging/dead instead."""
        if replica.crashed or replica.state is ReplicaState.REJOINING:
            return 0
        if replica.lag(self.log.head_lsn) == 0:
            return 0
        breaker = self._breaker_for(replica.name)
        if not breaker.allow():
            return 0
        try:
            shipped = self.shipper.ship(
                replica, crash_point=f"repl.replica.{replica.name}.crash"
            )
        except LookupError:
            # Fell behind the retained log window: only anti-entropy can
            # catch it up now.
            breaker.record_success()
            self._transition(replica, ReplicaState.LAGGING)
            return 0
        except TRANSIENT_ERRORS:
            breaker.record_failure()
            replica.ship_failures += 1
            self.obs.count("repl.ship_failures", db=self.name,
                           replica=replica.name)
            if breaker.state is BreakerState.OPEN:
                self._transition(replica, ReplicaState.DEAD)
            else:
                self._transition(replica, ReplicaState.LAGGING)
            return 0
        breaker.record_success()
        self._update_health(replica)
        return shipped

    def _truncate_log(self) -> None:
        """Drop log entries every follower has acknowledged.  A dead or
        lagging copy pins the log at its acked offset (so rejoin can
        replay instead of re-cloning), bounded by the log's own retention
        cap."""
        if not self.replicas:
            self.log.truncate_to(self.log.head_lsn)
            return
        self.log.truncate_to(min(r.acked_lsn for r in self.replicas))

    # -- anti-entropy --------------------------------------------------------

    def verify(self) -> dict[str, dict[str, list]]:
        """Range-checksum comparison of every live follower against the
        primary; maps replica name -> divergent ranges per table (empty
        == byte-identical)."""
        report = {}
        for replica in self.replicas:
            if replica.crashed:
                continue
            report[replica.name] = verify_replica(
                self.primary, replica.db, self.n_ranges
            )
        return report

    def repair(self, replica_name: Optional[str] = None) -> dict[str, Any]:
        """Anti-entropy pass: ship pending entries first (pure lag must
        not read as divergence), then checksum-diff and re-clone
        divergent ranges.  Reads keep flowing throughout — only writes
        pause, for the duration of the range comparison."""
        targets = (
            [self._replica(replica_name)] if replica_name is not None
            else list(self.replicas)
        )
        reports: dict[str, Any] = {}
        for replica in targets:
            if replica.crashed:
                continue
            with self._ship_lock:
                self._ship_one(replica)
            reports[replica.name] = self._resync(replica)
        return reports

    def _resync(self, replica: Replica, bootstrap: bool = False) -> dict[str, Any]:
        """Make one follower byte-identical to the primary under the
        primary's lock, then align its offsets with the log head (commits
        are blocked while the lock is held, so the head is stable)."""
        with self.primary._lock:
            report = repair_replica(self.primary, replica.db, self.n_ranges)
            head = self.log.head_lsn
            replica.db.set_replication_offset(head)
            replica.acked_lsn = head
        if not bootstrap:
            self.repairs += 1
            self.obs.count("repl.repair.runs", db=self.name, replica=replica.name)
            if report["ranges_repaired"]:
                self.obs.count("repl.repair.ranges", report["ranges_repaired"],
                               db=self.name, replica=replica.name)
                self.obs.event(
                    "warn", "repl", "replica.repaired",
                    f"anti-entropy repaired {report['ranges_repaired']} "
                    f"range(s) on {replica.name!r}",
                    db=self.name, replica=replica.name,
                    ranges_repaired=report["ranges_repaired"],
                    rows_cloned=report["rows_cloned"],
                )
        replica.last_repair = {
            "ranges_checked": report["ranges_checked"],
            "ranges_repaired": report["ranges_repaired"],
            "rows_cloned": report["rows_cloned"],
            "bootstrap": bootstrap,
        }
        self._update_health(replica)
        return report

    # -- split support -------------------------------------------------------

    def pause_followers(self) -> None:
        """Take every follower out of the read rotation and the shipping
        path (state ``rejoining``) while the caller writes to the primary
        directly — the shard split's warm copy does this."""
        for replica in self.replicas:
            if not replica.crashed:
                self._transition(replica, ReplicaState.REJOINING)

    def resync_followers(self) -> None:
        """Bring paused followers back via anti-entropy re-sync."""
        for replica in self.replicas:
            if not replica.crashed:
                self._resync(replica)
                with self._ship_lock:
                    self._ship_one(replica)

    # -- reads ---------------------------------------------------------------

    def _read_with_failover(self, statement: Select) -> list[dict[str, Any]]:
        """Serve a read from the next healthy, fresh-enough copy.

        Candidates are filtered *before* any attempt: crashed/rejoining
        copies, open breakers, and followers trailing by more than
        ``max_lag`` never see the read (stale skips are counted).  The
        survivors are rotated round-robin; a transient failure records
        against the copy's breaker and fails over to the next candidate,
        landing on the primary if every follower is out."""
        head = self.log.head_lsn
        with self._lock:
            replicas = list(self.replicas)
            start = self._read_cursor
            self._read_cursor += 1
        candidates: list[tuple[str, Database, Optional[Replica]]] = []
        if self._breaker_for(self.primary.name).state is not BreakerState.OPEN:
            candidates.append((self.primary.name, self.primary, None))
        for replica in replicas:
            if replica.crashed or replica.state is ReplicaState.REJOINING:
                continue
            if self._breaker_for(replica.name).state is BreakerState.OPEN:
                continue
            if replica.lag(head) > self.max_lag:
                self.obs.count("repl.stale_skips", db=self.name,
                               replica=replica.name)
                continue
            candidates.append((replica.name, replica.db, replica))
        last_transient: Optional[BaseException] = None
        for offset in range(len(candidates)):
            name, db, replica = candidates[(start + offset) % len(candidates)]
            breaker = self._breaker_for(name)
            if not breaker.allow():
                continue
            try:
                fire_fault(f"repl.replica.{name}.crash")
                rows = db.execute(statement)
            except TRANSIENT_ERRORS as exc:
                breaker.record_failure()
                last_transient = exc
                self.obs.count("repl.failovers", db=self.name, copy=name)
                with self._lock:
                    self.failovers += 1
                if replica is not None and breaker.state is BreakerState.OPEN:
                    self._transition(replica, ReplicaState.DEAD)
                continue
            breaker.record_success()
            if replica is not None:
                self._update_health(replica)
            with self._lock:
                self.stats.selects += 1
                self.stats.rows_read += len(rows)
                self.reads_by_copy[name] += 1
                if replica is not None:
                    replica.reads += 1
            return rows
        if last_transient is not None:
            raise last_transient
        raise BreakerOpen(
            f"repl.{self.name}.reads",
            min((b.retry_after_s() for b in self.breakers.values()), default=0.0),
        )

    # -- Database-compatible interface ---------------------------------------

    def has_table(self, name: str) -> bool:
        return self.primary.has_table(name)

    def table_names(self) -> list[str]:
        return self.primary.table_names()

    def table(self, name: str):
        return self.primary.table(name)

    def create_table(self, schema: TableSchema) -> None:
        self.primary.create_table(schema)
        self._replicate_ddl({
            "op": "__ddl__", "kind": "create_table", "schema": schema.to_dict(),
        })

    def drop_table(self, name: str) -> None:
        self.primary.drop_table(name)
        self._replicate_ddl({"op": "__ddl__", "kind": "drop_table", "table": name})

    def _replicate_ddl(self, record: dict[str, Any]) -> None:
        self.log.append(0, [record])
        self.obs.set_gauge("repl.head_lsn", self.log.head_lsn, db=self.name)
        if self.auto_ship and self.replicas:
            self.ship()

    def explain(self, select) -> str:
        return self.primary.explain(select)

    def explain_plan(self, select) -> dict[str, Any]:
        return self.primary.explain_plan(select)

    def allocate_id(self, table: str, column: str) -> int:
        return self.primary.allocate_id(table, column)

    def begin(self) -> Transaction:
        return self.primary.begin()

    def commit(self, tx: Transaction) -> None:
        self.primary.commit(tx)
        self.stats.transactions_committed += 1

    def rollback(self, tx: Transaction) -> None:
        self.primary.rollback(tx)
        self.stats.transactions_rolled_back += 1

    def execute(
        self,
        statement: Union[Statement, str],
        tx: Optional[Transaction] = None,
    ) -> Any:
        if isinstance(statement, str):
            statement = parse(statement)
        if isinstance(statement, Explain):
            return self.primary.execute(statement, tx=tx)
        if isinstance(statement, Select):
            return self._read_with_failover(statement)
        result = self.primary.execute(statement, tx=tx)
        with self._lock:
            if isinstance(statement, Insert):
                self.stats.inserts += 1
                self.stats.rows_written += 1
            elif isinstance(statement, Update):
                self.stats.updates += 1
                self.stats.rows_written += int(result or 0)
            elif isinstance(statement, Delete):
                self.stats.deletes += 1
                self.stats.rows_written += int(result or 0)
        return result

    def checkpoint(self) -> None:
        self.primary.checkpoint()
        for replica in self.replicas:
            if not replica.crashed:
                replica.db.checkpoint()

    def close(self) -> None:
        self.primary.close()
        for replica in self.replicas:
            if not replica.crashed:
                replica.db.close()

    # -- reporting -----------------------------------------------------------

    def repl_report(self) -> dict[str, Any]:
        """Replication topology and health, for ``telemetry_report()`` /
        ``/hedc/metrics`` / ``/hedc/debug``."""
        head = self.log.head_lsn
        return {
            "primary": self.primary.name,
            "replicas": [
                {
                    "name": replica.name,
                    "state": replica.state.value,
                    "acked_lsn": replica.acked_lsn,
                    "lag": replica.lag(head),
                    "reads": replica.reads,
                    "ship_failures": replica.ship_failures,
                    "breaker": self._breaker_for(replica.name).state.value,
                    "last_repair": replica.last_repair,
                }
                for replica in self.replicas
            ],
            "head_lsn": head,
            "base_lsn": self.log.base_lsn,
            "max_lag": self.max_lag,
            "auto_ship": self.auto_ship,
            "reads_by_copy": dict(self.reads_by_copy),
            "failovers": self.failovers,
            "rejoins": self.rejoins,
            "full_clones": self.full_clones,
            "repairs": self.repairs,
        }
