"""Replica groups with durable log-shipping replication.

The paper's scaling story (§7.3) stops at "replicate the database using
standard techniques"; this package supplies the standard techniques.  A
:class:`ReplicaGroup` wraps one primary :class:`~repro.metadb.Database`
and N followers: writers go to the primary, whose committed redo records
flow into an in-memory :class:`ReplicationLog`; a :class:`LogShipper`
streams them to followers with acknowledged offsets.  On top sit the
robustness pieces — bounded-staleness read failover (``max_lag``),
anti-entropy range-checksum repair, and crash-consistent rejoin via the
follower's own WAL plus log replay.
"""

from .antientropy import range_checksums, rowid_ranges, verify_replica
from .group import Replica, ReplicaGroup, ReplicaState
from .log import LogEntry, ReplicationLog
from .shipper import LogShipper

__all__ = [
    "LogEntry",
    "LogShipper",
    "Replica",
    "ReplicaGroup",
    "ReplicaState",
    "ReplicationLog",
    "range_checksums",
    "rowid_ranges",
    "verify_replica",
]
