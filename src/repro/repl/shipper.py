"""Log shipping: streaming committed redo batches to one follower.

The shipper is deliberately dumb — it owns no topology and no policy.
Given a replica it pushes every retained entry past the replica's acked
offset, one batch at a time, advancing the ack only after the follower
has durably applied the batch.  Failure policy (breakers, state
transitions, re-sync) lives in :class:`~repro.repl.group.ReplicaGroup`.

Fault points (armed via ``repro.resil.faults``):

- ``repl.ship``   — fires before a batch is applied to the follower;
  an injected error models the batch being lost in flight.
- ``repl.ack``    — fires after the follower applied the batch but
  before the ack is recorded; an injected error models a lost ack.
  The batch is re-shipped later and deduplicated by LSN on the
  follower, so a lost ack never duplicates rows.
- ``repl.replica.<name>.crash`` — per-copy point fired on every apply
  (and on reads, see the group), so chaos tests can kill one copy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..obs import Observability, resolve as resolve_obs
from ..resil.faults import fire as fire_fault
from .log import ReplicationLog

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .group import Replica


class LogShipper:
    """Pushes retained log entries to followers, tracking acked offsets."""

    def __init__(self, log: ReplicationLog, obs: Optional[Observability] = None):
        self.log = log
        self.obs = resolve_obs(obs)

    def ship(self, replica: "Replica", crash_point: Optional[str] = None) -> int:
        """Stream every entry past ``replica.acked_lsn``; returns records
        shipped.  Raises :class:`LookupError` if the replica has fallen
        behind the retained log window, or whatever the follower raised
        mid-apply — in both cases ``acked_lsn`` reflects exactly the
        batches durably acknowledged, so a retry resumes correctly.
        """
        shipped = 0
        for entry in self.log.entries_from(replica.acked_lsn):
            fire_fault("repl.ship")
            if crash_point is not None:
                fire_fault(crash_point)
            applied = replica.db.apply_redo(
                list(entry.records), tx_id=entry.tx_id, lsn=entry.lsn
            )
            fire_fault("repl.ack")
            replica.acked_lsn = entry.lsn
            if applied:
                shipped += len(entry.records)
        if shipped:
            self.obs.count("repl.shipped_records", shipped)
        return shipped
