"""Anti-entropy: range-checksum comparison and repair of a follower.

Replication by log shipping keeps followers converged as long as every
batch arrives; anti-entropy is the backstop for everything else — bit
rot, a follower restored from an old snapshot, direct table writes that
bypassed the log (the shard split's warm copy), or plain operator error.

Each table is cut into contiguous rowid ranges; both sides hash the
canonical encoding of their rows per range (reusing the filestore
checksum utility from PR 2).  Ranges whose digests differ are re-cloned
row-by-row through the follower's normal :meth:`apply_redo` path, so the
repair itself is journaled and crash-safe.  Reads continue throughout —
only the follower's per-statement lock is taken, range by range.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..filestore.checksums import checksum_bytes
from ..metadb.database import Database
from ..metadb.storage import Table
from ..metadb.wal import _encode_row

Range = tuple[int, Optional[int]]


def rowid_ranges(table: Table, n_ranges: int = 8) -> list[Range]:
    """Cut ``table`` into contiguous half-open rowid ranges ``[lo, hi)``.

    The final range is open-ended (``hi is None``) so rows a divergent
    follower holds *beyond* the primary's maximum rowid are still caught
    by the comparison.
    """
    rowids = list(table.rowids())
    max_rowid = max(rowids) if rowids else 0
    n_ranges = max(1, n_ranges)
    width = max(1, (max_rowid // n_ranges) + 1)
    ranges: list[Range] = []
    lo = 1
    while len(ranges) < n_ranges - 1 and lo <= max_rowid:
        ranges.append((lo, lo + width))
        lo += width
    ranges.append((lo, None))
    return ranges


def _range_payload(table: Table, lo: int, hi: Optional[int]) -> bytes:
    rows = sorted(
        (rowid, _encode_row(table.row(rowid)))
        for rowid in table.rowids()
        if rowid >= lo and (hi is None or rowid < hi)
    )
    return json.dumps(rows, sort_keys=True, separators=(",", ":")).encode("utf-8")


def range_checksums(db: Database, table_name: str,
                    boundaries: list[Range]) -> list[str]:
    """Digest of the canonical row encoding per range — the comparison
    unit for primary-vs-replica diffs and the differential tests'
    byte-identity check."""
    table = db.table(table_name)
    return [checksum_bytes(_range_payload(table, lo, hi)) for lo, hi in boundaries]


def verify_replica(primary: Database, replica: Database,
                   n_ranges: int = 8) -> dict[str, list[Range]]:
    """Compare every table range-by-range; returns divergent ranges keyed
    by table name.  A table missing on either side reports a single
    open-ended divergent range.  Empty dict == byte-identical.
    """
    with primary._lock:
        divergent: dict[str, list[Range]] = {}
        primary_tables = set(primary.table_names())
        for name in sorted(primary_tables):
            if not replica.has_table(name):
                divergent[name] = [(1, None)]
                continue
            boundaries = rowid_ranges(primary.table(name), n_ranges)
            ours = range_checksums(primary, name, boundaries)
            theirs = range_checksums(replica, name, boundaries)
            bad = [b for b, lhs, rhs in zip(boundaries, ours, theirs) if lhs != rhs]
            if bad:
                divergent[name] = bad
        for name in replica.table_names():
            if name not in primary_tables:
                divergent[name] = [(1, None)]
        return divergent


def repair_replica(primary: Database, replica: Database,
                   n_ranges: int = 8) -> dict[str, Any]:
    """Make ``replica`` byte-identical to ``primary`` and report the work.

    Runs under the primary's lock so the repair sees one consistent
    primary state; divergent ranges are re-cloned as delete-then-restore
    redo batches through ``replica.apply_redo`` (journaled on the
    follower, so a crash mid-repair recovers cleanly).
    """
    with primary._lock:
        report: dict[str, Any] = {
            "tables": {}, "ranges_checked": 0, "ranges_repaired": 0,
            "rows_cloned": 0,
        }
        primary_tables = set(primary.table_names())
        for name in replica.table_names():
            if name not in primary_tables:
                replica.apply_redo([{"op": "__ddl__", "kind": "drop_table",
                                     "table": name}])
                report["tables"][name] = "dropped"
        for name in sorted(primary_tables):
            ptable = primary.table(name)
            if not replica.has_table(name):
                replica.apply_redo([{
                    "op": "__ddl__", "kind": "create_table",
                    "schema": ptable.schema.to_dict(),
                }])
            boundaries = rowid_ranges(ptable, n_ranges)
            ours = range_checksums(primary, name, boundaries)
            theirs = range_checksums(replica, name, boundaries)
            report["ranges_checked"] += len(boundaries)
            bad = [b for b, lhs, rhs in zip(boundaries, ours, theirs) if lhs != rhs]
            if not bad:
                continue
            rtable = replica.table(name)
            rows_cloned = 0
            for lo, hi in bad:
                records: list[dict[str, Any]] = [
                    {"op": "delete", "table": name, "rowid": rowid}
                    for rowid in rtable.rowids()
                    if rowid >= lo and (hi is None or rowid < hi)
                ]
                clones = [
                    {"op": "insert", "table": name, "rowid": rowid,
                     "row": ptable.row(rowid)}
                    for rowid in sorted(ptable.rowids())
                    if rowid >= lo and (hi is None or rowid < hi)
                ]
                records.extend(clones)
                rows_cloned += len(clones)
                replica.apply_redo(records)
            report["ranges_repaired"] += len(bad)
            report["rows_cloned"] += rows_cloned
            report["tables"][name] = {
                "divergent_ranges": len(bad), "rows_cloned": rows_cloned,
            }
        return report
