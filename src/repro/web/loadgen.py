"""Workload harness for the serving tier: real servers, synthetic load.

The §7 testbed drove a *real* HEDC deployment with closed-loop clients;
this module rebuilds that harness over the reproduction so the serving
benchmarks measure actual :class:`~repro.web.server.WebServer` instances,
not models.  Three pieces:

* :class:`RemoteDatabase` — a metadb proxy that charges a wire round trip
  (``time.sleep``, which releases the GIL exactly like blocking socket
  I/O) per ``execute``/``execute_batch``.  In-process statements finish
  in microseconds, so without it a concurrency benchmark measures only
  the interpreter lock; with it, worker-pool scaling and the batched
  page fetch's round-trip savings show up in wall-clock numbers.  The
  default latency derives from the paper's DBMS ceiling ("a maximum
  throughput of around 120 HEDC request[s] per second" — ~8.3 ms per
  statement).
* :func:`build_serving_stack` — a self-contained deployment (database,
  DM, web server) seeded with synthetic public HLEs and one logged-in
  scientist session, ready to be driven.
* :func:`run_closed_loop` / :func:`run_open_loop` — the two §7-style
  generators: N think-time-free clients cycling requests (closed), or a
  fixed-rate arrival process over :meth:`WebServer.submit` (open), both
  reporting per-admission-class goodput and latency quantiles.
"""

from __future__ import annotations

import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from random import Random
from typing import Any, Callable, Optional, Union

from ..dm import DataManager
from ..filestore import DiskArchive, StorageManager
from ..metadb import Database
from ..obs import Observability
from .http import HttpRequest, HttpResponse
from .scheduler import CLASS_ORDER, classify_route
from .server import ThinClient, WebServer
from .servlets import SESSION_COOKIE

#: One DM↔DBMS wire round trip, from the paper's 120 queries/s DBMS.
DEFAULT_RTT_S = 1.0 / 120.0


class RemoteDatabase:
    """A database proxy that pays ``rtt_s`` of wire latency per call.

    One sleep per :meth:`execute` and one per :meth:`execute_batch` —
    that asymmetry is the whole point: a batched page fetch crossing the
    wire three times beats seven single-statement trips by construction,
    and a worker sleeping on the "network" yields the GIL to its peers.
    ``rtt_s`` is mutable so a stack can be seeded at zero latency and
    measured at full latency.
    """

    def __init__(self, inner: Database, rtt_s: float = 0.0):
        self._inner = inner
        self.rtt_s = rtt_s

    def execute(self, statement, tx=None):
        if self.rtt_s > 0:
            time.sleep(self.rtt_s)
        return self._inner.execute(statement, tx=tx)

    def execute_batch(self, statements, tx=None):
        if self.rtt_s > 0:
            time.sleep(self.rtt_s)
        inner_batch = getattr(self._inner, "execute_batch", None)
        if inner_batch is not None:
            return inner_batch(statements, tx=tx)
        return [self._inner.execute(statement, tx=tx)
                for statement in statements]

    def __getattr__(self, name: str):
        # Everything else (schema install, transactions, allocate_id,
        # stats, obs) passes straight through to the real database.
        return getattr(self._inner, name)


@dataclass
class ServingStack:
    """One drivable deployment: web server, DM, remote database."""

    web: WebServer
    dm: DataManager
    database: RemoteDatabase
    obs: Observability
    hle_ids: list[int]
    session_cookie: str
    client_ip: str = "127.0.0.1"

    def request(self, path: str) -> HttpRequest:
        """An authenticated GET, as the logged-in scientist."""
        return HttpRequest.get(path, {SESSION_COOKIE: self.session_cookie},
                               self.client_ip)

    def shutdown(self) -> None:
        self.web.shutdown()


def build_serving_stack(
    data_dir: Union[str, Path, None] = None,
    n_hles: int = 48,
    rtt_s: float = DEFAULT_RTT_S,
    obs: Optional[Observability] = None,
    **web_kwargs: Any,
) -> ServingStack:
    """Assemble and seed a deployment for load experiments.

    ``web_kwargs`` pass through to :class:`WebServer` (``scheduler``,
    ``n_workers``, ``admission_control``, ``max_queue_depth``,
    ``request_budget_s``, ``route_limits`` ...).  Seeding runs at zero
    wire latency; ``rtt_s`` is switched on only once the stack is built.
    """
    if data_dir is None:
        data_dir = tempfile.mkdtemp(prefix="repro-serving-")
    data_dir = Path(data_dir)
    obs = obs if obs is not None else Observability(name="serving")
    database = RemoteDatabase(Database(None, name="serving", obs=obs))
    storage = StorageManager(scratch_dir=data_dir / "scratch")
    archive = DiskArchive("main", data_dir / "archive")
    storage.register(archive)
    dm = DataManager(database, storage, node_name="dm-load", obs=obs)
    dm.io.names.ensure_archive("main", str(archive.root))
    scientist = dm.users.create_user("loadgen", "loadgen-pw",
                                     group="scientist")
    hle_ids = []
    for index in range(n_hles):
        # Spread start times so the neighbours window (±1h) and the
        # similar-rate band each select a bounded, non-empty slice.
        hle_ids.append(dm.semantic.insert_hle(scientist, {
            "public": True,
            "kind": "flare",
            "title": f"synthetic flare {index}",
            "start_time": 240.0 * index,
            "end_time": 240.0 * index + 60.0,
            "peak_rate": 50.0 + 2.5 * (index % 40),
            "goes_class": "C1.0",
        }))
    web = WebServer(dm, obs=obs, **web_kwargs)
    client = ThinClient(web)
    if not client.login("loadgen", "loadgen-pw"):
        raise RuntimeError("loadgen login failed")
    database.rtt_s = rtt_s
    return ServingStack(web=web, dm=dm, database=database, obs=obs,
                        hle_ids=hle_ids,
                        session_cookie=client.cookies[SESSION_COOKIE])


# -- workload mixes ----------------------------------------------------------

#: A request factory: draws one request from the mix.
RequestFactory = Callable[[Random], HttpRequest]


def browse_mix(stack: ServingStack) -> RequestFactory:
    """The §7.2 browse mix: HLE detail pages dominate, with catalog
    listings riding along.  Everything is browse-class."""
    def make(rng: Random) -> HttpRequest:
        if rng.random() < 0.85:
            hle_id = rng.choice(stack.hle_ids)
            return stack.request(f"/hedc/hle?id={hle_id}")
        return stack.request("/hedc/catalogs")
    return make


def mixed_class_mix(
    stack: ServingStack,
    analysis_share: float = 0.25,
    bulk_share: float = 0.15,
) -> RequestFactory:
    """All three admission classes: rate-band searches (analysis-class),
    HLE pages (browse), static transfers (bulk) — the overload workload
    for the admission-control A/B."""
    def make(rng: Random) -> HttpRequest:
        roll = rng.random()
        if roll < analysis_share:
            min_rate = 50.0 + 5.0 * rng.randrange(10)
            return stack.request(f"/hedc/search?min_rate={min_rate}")
        if roll < analysis_share + bulk_share:
            return stack.request("/static/logo.pgm")
        hle_id = rng.choice(stack.hle_ids)
        return stack.request(f"/hedc/hle?id={hle_id}")
    return make


# -- result accounting -------------------------------------------------------

@dataclass
class ClassStats:
    """Outcome tally for one admission class.

    Besides the aggregates, every completion is kept as a timestamped
    event (``at_s`` relative to the run start) so the result can render
    per-class goodput/latency *timelines* — behavior over time, not just
    end-of-run averages.
    """

    sent: int = 0
    ok: int = 0          # 2xx/3xx — goodput numerator
    shed: int = 0        # 503
    expired: int = 0     # 504
    errors: int = 0      # other 4xx/5xx
    latencies_s: list[float] = field(default_factory=list)
    #: (completion time since run start, status, elapsed) per request.
    events: list[tuple[float, int, float]] = field(default_factory=list)

    def record(self, status: int, elapsed_s: float,
               at_s: Optional[float] = None) -> None:
        self.sent += 1
        if status < 400:
            self.ok += 1
            self.latencies_s.append(elapsed_s)
        elif status == 503:
            self.shed += 1
        elif status == 504:
            self.expired += 1
        else:
            self.errors += 1
        if at_s is not None:
            self.events.append((at_s, status, elapsed_s))

    def merge(self, other: "ClassStats") -> None:
        self.sent += other.sent
        self.ok += other.ok
        self.shed += other.shed
        self.expired += other.expired
        self.errors += other.errors
        self.latencies_s.extend(other.latencies_s)
        self.events.extend(other.events)


def _quantile(sorted_values: list[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[index]


@dataclass
class LoadResult:
    """One load run, summarised per admission class and overall."""

    mode: str
    duration_s: float
    classes: dict[str, ClassStats]

    @property
    def sent(self) -> int:
        return sum(stats.sent for stats in self.classes.values())

    @property
    def ok(self) -> int:
        return sum(stats.ok for stats in self.classes.values())

    @property
    def throughput_rps(self) -> float:
        return self.ok / self.duration_s if self.duration_s > 0 else 0.0

    def timeline(self, bucket_s: float = 0.25) -> dict[str, list[dict[str, Any]]]:
        """Per-class behavior over time: completions bucketed into
        ``bucket_s`` slices, each with goodput and latency quantiles —
        what BENCH_serving.json plots and the TSDB tests feed on."""
        per_class: dict[str, list[dict[str, Any]]] = {}
        for cls in CLASS_ORDER:
            stats = self.classes.get(cls)
            if stats is None or not stats.events:
                continue
            buckets: dict[int, list[tuple[int, float]]] = {}
            for at_s, status, elapsed_s in stats.events:
                buckets.setdefault(int(at_s / bucket_s), []).append(
                    (status, elapsed_s))
            rows = []
            for index in sorted(buckets):
                entries = buckets[index]
                oks = sorted(elapsed for status, elapsed in entries
                             if status < 400)
                rows.append({
                    "t_s": round(index * bucket_s, 6),
                    "sent": len(entries),
                    "ok": len(oks),
                    "goodput_rps": len(oks) / bucket_s,
                    "p50_s": _quantile(oks, 0.50) if oks else None,
                    "p95_s": _quantile(oks, 0.95) if oks else None,
                })
            per_class[cls] = rows
        return per_class

    def summary(self, bucket_s: float = 0.25) -> dict[str, Any]:
        per_class: dict[str, Any] = {}
        for cls in CLASS_ORDER:
            stats = self.classes.get(cls)
            if stats is None or not stats.sent:
                continue
            latencies = sorted(stats.latencies_s)
            per_class[cls] = {
                "sent": stats.sent,
                "ok": stats.ok,
                "shed": stats.shed,
                "expired": stats.expired,
                "errors": stats.errors,
                "goodput_rps": stats.ok / self.duration_s,
                "p50_s": _quantile(latencies, 0.50),
                "p95_s": _quantile(latencies, 0.95),
                "p99_s": _quantile(latencies, 0.99),
            }
        return {
            "mode": self.mode,
            "duration_s": self.duration_s,
            "sent": self.sent,
            "ok": self.ok,
            "throughput_rps": self.throughput_rps,
            "classes": per_class,
            "timeline": self.timeline(bucket_s),
        }


# -- drivers -----------------------------------------------------------------

def run_closed_loop(
    stack: ServingStack,
    make_request: RequestFactory,
    n_clients: int = 8,
    duration_s: float = 2.0,
    seed: int = 2003,
) -> LoadResult:
    """N zero-think-time clients cycling through ``make_request`` — the
    paper's closed-loop testbed.  Each client blocks on
    :meth:`WebServer.handle`, so offered load tracks completion rate."""
    if n_clients < 1:
        raise ValueError("need at least one client")
    barrier = threading.Barrier(n_clients + 1)
    stop = threading.Event()
    per_thread: list[dict[str, ClassStats]] = [
        {cls: ClassStats() for cls in CLASS_ORDER} for _ in range(n_clients)
    ]

    def client(index: int) -> None:
        rng = Random(seed * 7919 + index)
        stats = per_thread[index]
        barrier.wait()
        run_started = time.perf_counter()
        while not stop.is_set():
            request = make_request(rng)
            cls = classify_route(stack.web._route_of(request.path),
                                 stack.web._route_classes)
            started = time.perf_counter()
            response = stack.web.handle(request)
            finished = time.perf_counter()
            stats[cls].record(response.status, finished - started,
                              at_s=finished - run_started)

    threads = [threading.Thread(target=client, args=(index,), daemon=True)
               for index in range(n_clients)]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    time.sleep(duration_s)
    stop.set()
    for thread in threads:
        thread.join(timeout=10.0)
    elapsed = time.perf_counter() - started
    merged = {cls: ClassStats() for cls in CLASS_ORDER}
    for stats in per_thread:
        for cls in CLASS_ORDER:
            merged[cls].merge(stats[cls])
    return LoadResult(mode="closed", duration_s=elapsed, classes=merged)


def run_open_loop(
    stack: ServingStack,
    make_request: RequestFactory,
    rate_rps: float = 100.0,
    duration_s: float = 2.0,
    seed: int = 2003,
    drain_timeout_s: float = 10.0,
) -> LoadResult:
    """A fixed-rate arrival process over :meth:`WebServer.submit`.

    Unlike the closed loop, arrivals don't slow down when the server
    does — the generator keeps offering ``rate_rps`` regardless, which is
    what pushes a bounded admission queue into shedding.  Requires a
    non-blocking executor (``scheduler="pool"``)."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = Random(seed)
    interval = 1.0 / rate_rps
    tasks = []
    started = time.perf_counter()
    next_arrival = started
    while True:
        now = time.perf_counter()
        if now - started >= duration_s:
            break
        if now < next_arrival:
            time.sleep(min(interval, next_arrival - now))
            continue
        tasks.append(stack.web.submit(make_request(rng)))
        next_arrival += interval
    deadline = time.perf_counter() + drain_timeout_s
    merged = {cls: ClassStats() for cls in CLASS_ORDER}
    for task in tasks:
        response = task.result(timeout=max(0.0, deadline - time.perf_counter()))
        if response is None:
            # Never resolved within the drain window: count as expired.
            if task.resolve(HttpResponse.error(504, "load harness drain")):
                response = task.response
            else:
                response = task.result(0.0)
        resolved_at = task.resolved_at or time.perf_counter()
        elapsed = resolved_at - task.created_at
        merged[task.request_class].record(response.status, elapsed,
                                          at_s=resolved_at - started)
    total = time.perf_counter() - started
    return LoadResult(mode="open", duration_s=min(total, duration_s),
                      classes=merged)
