"""The web servlets (paper §6.1).

Each servlet builds one response page from templates and DM queries.  The
HLE display page issues the paper's seven DM queries — tuple fetch, its
analyses, two count queries, a similar-event range query, file-reference
resolution and a recent-events range query (two of which sweep an ordered
index) — and wraps everything in header/footer templates.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Optional

import numpy as np

from ..analysis import render_pgm
from ..cache import cache_report
from ..metadb import And, Comparison, Select
from ..obs import (
    Histogram,
    resolve as resolve_obs,
    runtime_report,
    sparkline,
    to_json_snapshot,
    to_line_protocol,
    usage_report,
)
from ..resil import breaker_report, get_default_injector
from ..security import AuthError, User, scoped_where
from .http import HttpRequest, HttpResponse
from .pages import build_registry

SESSION_COOKIE = "hedc_session"


def _logo() -> bytes:
    gradient = np.outer(np.arange(16), np.arange(32)).astype(float)
    return render_pgm(gradient)


class Servlets:
    """All servlet handlers, sharing the DM and template registry."""

    def __init__(self, dm, frontend=None, obs=None):
        self.dm = dm
        self.frontend = frontend
        self.obs = obs if obs is not None else resolve_obs(getattr(dm, "obs", None))
        self.registry = build_registry()
        self._static = {"logo.pgm": _logo(), "nav.pgm": _logo()}
        #: Set by the owning WebServer: a callable returning its
        #: scheduler/admission state for the telemetry panels.
        self.serving_report: Optional[Any] = None

    # -- session helpers -----------------------------------------------------

    def _user_for(self, request: HttpRequest) -> Optional[User]:
        cookie = request.cookies.get(SESSION_COOKIE)
        if cookie is None:
            return None
        session = self.dm.sessions.by_cookie(cookie)
        if session is None:
            return None
        session.touch()
        return session.user

    def _base_context(self, request: HttpRequest, title: str) -> dict[str, Any]:
        return {"title": title, "user": self._user_for(request)}

    # -- conditional GETs ----------------------------------------------------

    def _revalidate(self, request: HttpRequest, etag: str) -> Optional[HttpResponse]:
        """304 when the client's ``If-None-Match`` matches ``etag`` —
        derived products are immutable, so their checksums are strong
        validators and the payload read/transfer is skipped entirely."""
        if request.headers.get("If-None-Match") == etag:
            self.obs.count("web.not_modified", route=request.path)
            return HttpResponse.not_modified(etag)
        return None

    # -- static ------------------------------------------------------------------

    def static(self, request: HttpRequest) -> HttpResponse:
        name = request.path.rsplit("/", 1)[-1]
        payload = self._static.get(name)
        if payload is None:
            return HttpResponse.error(404, f"no static file {name}")
        return HttpResponse.image(payload)

    # -- login ---------------------------------------------------------------------

    def login(self, request: HttpRequest) -> HttpResponse:
        context = self._base_context(request, "login")
        context["error"] = ""
        if request.method == "POST":
            try:
                user = self.dm.authenticate(
                    request.params.get("login", ""), request.params.get("password", "")
                )
            except AuthError as exc:
                context["error"] = str(exc)
                return HttpResponse.html(self.registry.render("login_page", context))
            session = self.dm.open_session(user, "hle", client_ip=request.client_ip)
            response = HttpResponse.redirect("/hedc/catalogs")
            response.set_cookies[SESSION_COOKIE] = session.cookie
            return response
        return HttpResponse.html(self.registry.render("login_page", context))

    # -- catalogs ----------------------------------------------------------------------

    def catalogs(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        context = self._base_context(request, "catalogs")
        context["catalogs"] = self.dm.semantic.list_catalogs(user)
        return HttpResponse.html(self.registry.render("catalog_list", context))

    def catalog(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        try:
            catalog_id = int(request.params.get("id", ""))
        except ValueError:
            return HttpResponse.error(400, "missing catalog id")
        catalog = self.dm.semantic.get_catalog(user, catalog_id)
        hles = self.dm.semantic.catalog_hles(user, catalog_id)
        context = self._base_context(request, f"catalog {catalog['name']}")
        context.update({"catalog": catalog, "hles": hles})
        return HttpResponse.html(self.registry.render("catalog_page", context))

    # -- HLE page: the seven-query response of §7.2 ---------------------------------------

    def hle(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        try:
            hle_id = int(request.params.get("id", ""))
        except ValueError:
            return HttpResponse.error(400, "missing hle id")
        # The seven logical queries of §7.2, fetched through the DM's
        # page multi-get — three round trips batched, seven unbatched.
        page = self.dm.fetch_page(user, hle_id)
        hle = page.hle
        context = self._base_context(request, hle["title"] or f"HLE {hle_id}")
        context.update(
            {
                "hle": hle,
                "n_analyses": page.n_analyses,
                "n_catalogs": page.n_catalogs,
                "n_similar": len(page.similar),
                "data_files": [
                    {"item_id": hle["item_id"], "path": name.path}
                    for name in page.files
                ],
            }
        )
        parts = [self.registry.render("hle_header", context)]
        for ana in page.analyses:
            ana_context = dict(context)
            ana_context["ana"] = ana
            ana_context["ana_images"] = [
                f"/hedc/image?item=ana:{ana['ana_id']}&index={index}"
                for index in range(ana.get("n_images") or 0)
            ]
            parts.append(self.registry.render("analysis", ana_context))
        parts.append(self.registry.render("footer", context))
        return HttpResponse.html("".join(parts))

    # -- analysis detail -------------------------------------------------------------------

    def ana(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        try:
            ana_id = int(request.params.get("id", ""))
        except ValueError:
            return HttpResponse.error(400, "missing ana id")
        ana = self.dm.semantic.get_analysis(user, ana_id)
        context = self._base_context(request, f"analysis {ana_id}")
        context["ana"] = ana
        context["images"] = [
            f"/hedc/image?item=ana:{ana_id}&index={index}"
            for index in range(ana.get("n_images") or 0)
        ]
        html = self.registry.render("ana_page", context)
        etag = '"' + hashlib.sha256(html.encode("utf-8")).hexdigest()[:24] + '"'
        cached = self._revalidate(request, etag)
        if cached is not None:
            return cached
        response = HttpResponse.html(html)
        response.headers["ETag"] = etag
        return response

    # -- dynamic images ----------------------------------------------------------------------

    def image(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        item_id = request.params.get("item", "")
        try:
            index = int(request.params.get("index", "0"))
        except ValueError:
            index = 0
        if item_id.startswith("ana:"):
            # Visibility check through the semantic layer.
            self.dm.semantic.get_analysis(user, int(item_id.split(":", 1)[1]))
        names = self.dm.io.names.resolve_files(item_id, role="image")
        if index >= len(names):
            return HttpResponse.error(404, f"no image {index} for {item_id}")
        etag = f'"{names[index].checksum}"' if names[index].checksum else None
        if etag is not None:
            cached = self._revalidate(request, etag)
            if cached is not None:
                return cached
        payload = self.dm.io.read_item(names[index])
        response = HttpResponse.image(payload)
        if etag is not None:
            response.headers["ETag"] = etag
        return response

    # -- download -------------------------------------------------------------------------------

    def download(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        if user is None or not user.has_right("download"):
            return HttpResponse.error(403, "download requires an account with the right")
        item_id = request.params.get("item", "")
        names = self.dm.io.names.resolve_files(item_id)
        wanted = request.params.get("path")
        for name in names:
            if wanted is None or name.path == wanted:
                etag = f'"{name.checksum}"' if name.checksum else None
                if etag is not None:
                    cached = self._revalidate(request, etag)
                    if cached is not None:
                        return cached
                payload = self.dm.io.read_item(name)
                response = HttpResponse(
                    body=payload, content_type="application/octet-stream"
                )
                if etag is not None:
                    response.headers["ETag"] = etag
                return response
        return HttpResponse.error(404, f"no file for {item_id}")

    # -- search: visual params, predefined queries, or user SQL ----------------------------------

    def search(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        context = self._base_context(request, "search")
        context["sql_allowed"] = user is not None and user.has_right("analyze")
        results: list[dict] = []
        sql = request.params.get("sql")
        preset = request.params.get("preset")
        if preset:
            # A predefined query (§4.1) — visibility applies inside.
            results = self.dm.queries.run(preset, user)
        elif sql and context["sql_allowed"]:
            results = self._run_user_sql(user, sql)
        else:
            conjuncts = []
            kind = request.params.get("kind")
            if kind:
                conjuncts.append(Comparison("kind", "=", kind))
            min_rate = request.params.get("min_rate")
            if min_rate:
                conjuncts.append(Comparison("peak_rate", ">=", float(min_rate)))
            where = And(conjuncts) if conjuncts else None
            results = self.dm.semantic.find_hles(
                user, where=where, order_by=[("peak_rate", "desc")], limit=100
            )
        context["results"] = results
        return HttpResponse.html(self.registry.render("search_page", context))

    def _run_user_sql(self, user: User, sql: str) -> list[dict]:
        """Advanced users may run their own SQL (paper §1) — restricted to
        SELECT over the domain tables, with visibility enforced."""
        from ..metadb import parse as parse_sql

        statement = parse_sql(sql)
        if not isinstance(statement, Select):
            raise AuthError("only SELECT statements are allowed")
        if statement.table not in ("hle", "ana", "catalogs"):
            raise AuthError(f"SQL over table {statement.table!r} is not allowed")
        statement.where = scoped_where(user, statement.where)
        return self.dm.io.execute(statement)

    # -- analyze (submit a PL request) ------------------------------------------------------------

    def analyze(self, request: HttpRequest) -> HttpResponse:
        user = self._user_for(request)
        if user is None or not user.has_right("analyze"):
            return HttpResponse.error(403, "analysis requires an account with the right")
        if self.frontend is None:
            return HttpResponse.error(503, "no processing logic attached")
        try:
            hle_id = int(request.params.get("hle", ""))
        except ValueError:
            return HttpResponse.error(400, "missing hle id")
        algorithm = request.params.get("algorithm", "lightcurve")
        from ..pl import AnalysisRequest

        parameters: dict[str, Any] = {}
        for key in ("n_pixels", "n_bins", "n_energy_bins"):
            if key in request.params:
                parameters[key] = int(request.params[key])
        for key in ("bin_width_s", "time_bin_s", "extent_arcsec"):
            if key in request.params:
                parameters[key] = float(request.params[key])
        if "attribute" in request.params:
            parameters["attribute"] = request.params["attribute"]
        analysis_request = AnalysisRequest(user, hle_id, algorithm, parameters)
        self.frontend.run(analysis_request)
        if analysis_request.ana_id is None:
            return HttpResponse.error(500, f"analysis failed: {analysis_request.error}")
        return HttpResponse.redirect(f"/hedc/ana?id={analysis_request.ana_id}")

    # -- telemetry (the repro.obs registry, rendered at the edge) ---------------------------------

    def metrics(self, request: HttpRequest) -> HttpResponse:
        """Serve the obs registry: line protocol by default, JSON with
        ``?format=json`` (which also includes recent trace trees)."""
        if request.params.get("format") == "json":
            body = to_json_snapshot(self.obs.registry, tracer=self.obs.tracer)
            body["caches"] = cache_report(self.obs)
            body["resilience"] = {
                "breakers": breaker_report(self.obs),
                "faults": get_default_injector().report(),
            }
            body["shard"] = self._shard_report()
            body["replication"] = self._repl_report()
            body["serving"] = self._serving_report()
            body["runtime"] = runtime_report(self.obs)
            return HttpResponse(
                body=json.dumps(body, indent=2).encode("utf-8"),
                content_type="application/json",
            )
        text = to_line_protocol(self.obs.registry)
        return HttpResponse(body=text.encode("utf-8"), content_type="text/plain")

    # -- deep diagnostics (events, slow ops, usage analytics, profiler) ---------------------------

    def debug(self, request: HttpRequest) -> HttpResponse:
        """The deep-diagnostics panel: structured events, slow ops with
        their attached detail, histogram exemplars, live usage analytics
        diffed against the evalmodel calibration, profiler state and
        resilience machinery — JSON with ``?format=json``, text else."""
        obs = self.obs
        exemplars = []
        for metric in obs.registry.metrics():
            if isinstance(metric, Histogram):
                slots = metric.exemplars()
                if slots:
                    exemplars.append({
                        "name": metric.name,
                        "labels": dict(metric.labels),
                        "exemplars": slots,
                    })
        body: dict[str, Any] = {
            "usage": usage_report(obs, dm=self.dm),
            "events": obs.events.snapshot(limit=100),
            "slow_ops": obs.slowlog.snapshot(limit=50),
            "slow_thresholds": obs.slowlog.thresholds(),
            "exemplars": exemplars,
            "profiler": {
                "running": obs.profiler.running,
                "samples": obs.profiler.samples,
                "hot_stacks": obs.profiler.snapshot(limit=10),
            },
            "resilience": {
                "breakers": breaker_report(obs),
                "faults": get_default_injector().report(),
            },
            "shard": self._shard_report(),
            "replication": self._repl_report(),
            "serving": self._serving_report(),
        }
        if request.params.get("format") == "json":
            return HttpResponse(
                body=json.dumps(body, indent=2, default=repr).encode("utf-8"),
                content_type="application/json",
            )
        lines = ["HEDC deep diagnostics", "====================", ""]
        lines.append("request mix:")
        for route, row in body["usage"]["request_mix"].items():
            lines.append(
                f"  {route:<20} {row['requests']:>6}  share={row['share']:.2f}"
                f"  p50={row['p50_s'] * 1000:.1f}ms p95={row['p95_s'] * 1000:.1f}ms"
            )
        drift = body["usage"]["calibration_drift"]
        if drift:
            lines.append("calibration drift:")
            for entry in drift:
                flag = " DRIFTED" if entry["drifted"] else ""
                lines.append(
                    f"  {entry['metric']:<24} predicted={entry['predicted']:.4g}"
                    f" measured={entry['measured']:.4g}{flag}"
                )
        lines.append(f"events ({len(body['events'])} shown):")
        for event in body["events"][-20:]:
            lines.append(
                f"  #{event['seq']} [{event['severity']}]"
                f" {event['component']}.{event['kind']}: {event['message']}"
            )
        lines.append(f"slow ops ({len(body['slow_ops'])} shown):")
        for op in body["slow_ops"][-20:]:
            lines.append(
                f"  {op['name']} {op['duration_s'] * 1000:.1f}ms"
                f" (threshold {op['threshold_s'] * 1000:.1f}ms)"
            )
        lines.append(
            f"profiler: {'running' if body['profiler']['running'] else 'stopped'},"
            f" {body['profiler']['samples']} samples"
        )
        lines.append("breakers:")
        for name, snap in body["resilience"]["breakers"].items():
            lines.append(f"  {name}: {snap['state']} trips={snap['trips']}")
        shard = body["shard"]
        if shard is not None:
            lines.append(f"shards ({shard['n_shards']}, splits={shard['splits']},"
                         f" degraded reads={shard['degraded_reads']}):")
            for entry in shard["shards"]:
                low = "-inf" if entry["low"] is None else f"{entry['low']:g}"
                high = "+inf" if entry["high"] is None else f"{entry['high']:g}"
                lines.append(
                    f"  shard {entry['shard_id']} [{low}, {high}):"
                    f" rows={entry['total_rows']} breaker={entry['breaker']}"
                    f" reads={entry['reads']} writes={entry['writes']}"
                )
                for copy in (entry.get("replicas") or {}).get("replicas", []):
                    lines.append(self._replica_line(copy, indent="    "))
        serving = body["serving"]
        if serving is not None:
            lines.append(
                f"serving: scheduler={serving['scheduler']}"
                f" workers={serving['n_workers']}"
            )
            queue = serving.get("queue")
            if queue:
                depth = sum(queue["depth"].values())
                shed = sum(queue["shed"].values())
                expired = sum(queue["expired"].values())
                lines.append(
                    f"  admission: depth={depth}/{queue['max_queue_depth']}"
                    f" shed={shed} expired={expired}"
                    f" retry_after={queue['retry_after_s']:.1f}s"
                )
                for cls, n in queue["admitted"].items():
                    lines.append(
                        f"    {cls:<9} admitted={n}"
                        f" shed={queue['shed'][cls]}"
                        f" wait_p95={queue['wait_p95_s'][cls] * 1000:.1f}ms"
                    )
            for route, caps in serving["routes"].items():
                lines.append(
                    f"  route {route}: {caps['in_use']}/{caps['limit']} in use"
                )
        repl = body["replication"]
        if repl is not None:
            if "per_shard" in repl:
                lines.append(
                    f"replication: {repl['replicas_per_shard']} copies/shard,"
                    f" max_lag={repl['max_lag']} (per-shard detail above)"
                )
            else:
                lines.append(
                    f"replication (head_lsn={repl['head_lsn']},"
                    f" max_lag={repl['max_lag']}, failovers={repl['failovers']},"
                    f" rejoins={repl['rejoins']}, repairs={repl['repairs']}):"
                )
                for copy in repl["replicas"]:
                    lines.append(self._replica_line(copy, indent="  "))
        return HttpResponse(
            body=("\n".join(lines) + "\n").encode("utf-8"),
            content_type="text/plain",
        )

    # -- the live dashboard (PR-10): health, alerts, burn, sparklines -----------------------------

    #: Series drawn as sparklines: (title, metric family, field, style).
    #: ``rate`` plots per-sample increments of a counter family;
    #: ``value`` plots the gauge itself.
    _DASHBOARD_SERIES = (
        ("req/s", "web.requests", "value", "rate"),
        ("shed/s", "web.shed", "value", "rate"),
        ("rss MB", "process.rss_bytes", "value", "mb"),
        ("threads", "process.threads", "value", "value"),
        ("canary ok", "obs.canary.ok", "value", "value"),
    )

    def _dashboard_timeline(self, name: str, field: str, style: str,
                            window_s: float = 300.0) -> list[float]:
        """One plottable timeline, summed across a family's label sets."""
        store = self.obs.collector.store
        merged: dict[float, float] = {}
        for labels in store.label_sets(name):
            for t, value in store.series(name, field=field, window_s=window_s,
                                         **labels):
                merged[t] = merged.get(t, 0.0) + float(value)
        points = [value for _t, value in sorted(merged.items())]
        if style == "rate":
            return [max(0.0, b - a) for a, b in zip(points, points[1:])]
        if style == "mb":
            return [value / (1024 * 1024) for value in points]
        return points

    def dashboard(self, request: HttpRequest) -> HttpResponse:
        """The operator's landing page: health rollup with attributed
        causes, active burn-rate alerts, per-SLO error-budget state and
        sparkline timelines — text by default, ``?format=json`` for
        machines (and for ``benchmarks/capture_dashboard.py``)."""
        obs = self.obs
        store = obs.collector.store
        health = obs.health.report(store=store)
        slo_report = obs.slo.report()
        timelines = {
            title: self._dashboard_timeline(name, field, style)
            for title, name, field, style in self._DASHBOARD_SERIES
        }
        if request.params.get("format") == "json":
            body = {
                "status": health["status"],
                "health": health,
                "slos": slo_report["slos"],
                "active_alerts": slo_report["active_alerts"],
                "collector": obs.collector.report(),
                "runtime": runtime_report(obs),
                "timelines": timelines,
            }
            return HttpResponse(
                body=json.dumps(body, indent=2).encode("utf-8"),
                content_type="application/json",
            )
        collector = obs.collector.report()
        lines = [
            f"HEDC dashboard — status: {health['status'].upper()}",
            "=" * 40,
            f"collector: {'running' if collector['running'] else 'stopped'},"
            f" {collector['samples']} samples,"
            f" {collector['series']} series retained",
            "",
            "health:",
        ]
        for name, sub in health["subsystems"].items():
            lines.append(f"  {name:<12} {sub['status']}")
            for cause in sub["causes"]:
                lines.append(f"    - {cause}")
        alerts = slo_report["active_alerts"]
        lines.append("")
        lines.append(f"alerts ({len(alerts)} active):")
        for alert in alerts:
            burn = alert["burn"]
            burn_text = f"{burn:.1f}x" if burn is not None else "no data"
            lines.append(
                f"  {alert['slo']} [{alert['window']}] FIRING"
                f" burn={burn_text} cause={alert['cause'] or '(none)'}"
            )
        lines.append("")
        lines.append("slos:")
        for name, entry in slo_report["slos"].items():
            fast = entry["alerts"]["fast"]["burn"]
            slow = entry["alerts"]["slow"]["burn"]
            budget = entry["budget_used_fraction"]

            def _x(value):
                return f"{value:.2f}x" if value is not None else "-"

            lines.append(
                f"  {name:<24} objective={entry['objective']:.3f}"
                f" fast={_x(fast)} slow={_x(slow)} budget_burn={_x(budget)}"
            )
        lines.append("")
        lines.append("timelines (last 5m):")
        for title, values in timelines.items():
            lines.append(f"  {title:<10} {sparkline(values, width=48)}")
        return HttpResponse(
            body=("\n".join(lines) + "\n").encode("utf-8"),
            content_type="text/plain",
        )

    def _shard_report(self) -> Optional[dict[str, Any]]:
        """Shard topology/health when the DM sits on a ShardedDatabase
        (duck-typed — no repro.shard import at the web tier)."""
        reporter = getattr(self.dm.io.default_database, "shard_report", None)
        return reporter() if reporter is not None else None

    def _repl_report(self) -> Optional[dict[str, Any]]:
        """Replica-group topology when the DM sits on a ReplicaGroup or a
        replicated ShardedDatabase (duck-typed, like shard_report)."""
        reporter = getattr(self.dm.io.default_database, "repl_report", None)
        return reporter() if reporter is not None else None

    def _serving_report(self) -> Optional[dict[str, Any]]:
        """Scheduler/admission state from the owning WebServer, when the
        servlets are mounted behind one (None under direct unit tests)."""
        return self.serving_report() if self.serving_report is not None else None

    @staticmethod
    def _replica_line(copy: dict[str, Any], indent: str) -> str:
        repaired = (copy.get("last_repair") or {}).get("ranges_repaired")
        repair_note = f" last_repair={repaired} range(s)" if repaired else ""
        return (
            f"{indent}replica {copy['name']}: {copy['state']}"
            f" lag={copy['lag']} breaker={copy['breaker']}"
            f" reads={copy['reads']}{repair_note}"
        )
