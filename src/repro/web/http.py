"""In-process HTTP request/response model.

The evaluation measures servlet page generation, not socket handling, so
requests and responses are plain objects routed in-process; persistent
("keep-alive") connections are modelled by a per-client connection object
that counts requests (paper §7.2 sets Keep-Alive to unlimited).
"""

from __future__ import annotations

import urllib.parse
from dataclasses import dataclass, field
from typing import Callable, Optional


@dataclass
class HttpRequest:
    method: str
    path: str
    params: dict[str, str] = field(default_factory=dict)
    cookies: dict[str, str] = field(default_factory=dict)
    client_ip: str = "127.0.0.1"
    body: bytes = b""
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def get(cls, url: str, cookies: Optional[dict[str, str]] = None,
            client_ip: str = "127.0.0.1",
            headers: Optional[dict[str, str]] = None) -> "HttpRequest":
        parsed = urllib.parse.urlsplit(url)
        params = {key: values[-1] for key, values in
                  urllib.parse.parse_qs(parsed.query).items()}
        return cls("GET", parsed.path, params, dict(cookies or {}), client_ip,
                   headers=dict(headers or {}))

    @classmethod
    def post(cls, url: str, params: Optional[dict[str, str]] = None,
             cookies: Optional[dict[str, str]] = None,
             client_ip: str = "127.0.0.1",
             headers: Optional[dict[str, str]] = None) -> "HttpRequest":
        parsed = urllib.parse.urlsplit(url)
        merged = {key: values[-1] for key, values in
                  urllib.parse.parse_qs(parsed.query).items()}
        merged.update(params or {})
        return cls("POST", parsed.path, merged, dict(cookies or {}), client_ip,
                   headers=dict(headers or {}))


@dataclass
class HttpResponse:
    status: int = 200
    body: bytes = b""
    content_type: str = "text/html"
    set_cookies: dict[str, str] = field(default_factory=dict)
    headers: dict[str, str] = field(default_factory=dict)

    @classmethod
    def html(cls, text: str, status: int = 200) -> "HttpResponse":
        return cls(status=status, body=text.encode("utf-8"))

    @classmethod
    def image(cls, payload: bytes, content_type: str = "image/x-portable-graymap") -> "HttpResponse":
        return cls(body=payload, content_type=content_type)

    @classmethod
    def error(cls, status: int, message: str) -> "HttpResponse":
        return cls.html(f"<html><body><h1>{status}</h1><p>{message}</p></body></html>", status)

    @classmethod
    def redirect(cls, location: str) -> "HttpResponse":
        response = cls(status=302)
        response.headers["Location"] = location
        return response

    @classmethod
    def not_modified(cls, etag: str) -> "HttpResponse":
        """304: the client's cached copy (``If-None-Match``) is current."""
        response = cls(status=304)
        response.headers["ETag"] = etag
        return response

    @property
    def size(self) -> int:
        return len(self.body)

    @property
    def text(self) -> str:
        return self.body.decode("utf-8", errors="replace")


Handler = Callable[[HttpRequest], HttpResponse]


class Router:
    """Exact-prefix path routing to servlet handlers."""

    def __init__(self) -> None:
        self._routes: list[tuple[str, Handler]] = []

    def add(self, prefix: str, handler: Handler) -> None:
        self._routes.append((prefix, handler))
        # Longest prefix first so /hedc/hle wins over /hedc.
        self._routes.sort(key=lambda route: -len(route[0]))

    def match(self, path: str) -> Optional[str]:
        """The route prefix that would serve ``path``, or ``None``."""
        for prefix, _handler in self._routes:
            if path == prefix or path.startswith(prefix.rstrip("/") + "/"):
                return prefix
        return None

    def dispatch(self, request: HttpRequest) -> HttpResponse:
        for prefix, handler in self._routes:
            if request.path == prefix or request.path.startswith(prefix.rstrip("/") + "/"):
                return handler(request)
        return HttpResponse.error(404, f"no route for {request.path}")
