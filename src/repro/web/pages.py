"""The HTML templates of the web interface (paper Figure 2, §6.1).

Header/footer templates wrap every page; the HLE page includes one
rendering of the analysis template per ANA tuple, exactly as described:
"a request to display an HLE involves loading and filling in HLE
header/footer templates and an analysis template for each ANA tuple
associated with that HLE".
"""

from __future__ import annotations

from .templates import TemplateRegistry

HEADER = """<!DOCTYPE html>
<html><head><title>HEDC - {{ title }}</title>
<style>body{font-family:sans-serif} table{border-collapse:collapse}
td,th{border:1px solid #999;padding:2px 6px}</style>
<script>/* navigation helpers */function nav(u){location.href=u;}</script>
</head><body>
<div class="banner"><img src="/static/logo.pgm" alt="HEDC"/>
<h1>RHESSI Experimental Data Center</h1>
{% if user %}<p>logged in as {{ user.login }} ({{ user.group }})</p>
{% else %}<p><a href="/hedc/login">log in</a> for advanced features</p>{% endif %}
</div><hr/>
"""

FOOTER = """<hr/><div class="footer">
<a href="/hedc/catalogs">catalogs</a> |
<a href="/hedc/search">search</a> |
<img src="/static/nav.pgm" alt="nav"/>
HEDC &#169; ETH Z&#252;rich</div></body></html>
"""

CATALOG_LIST = """{% include header %}
<h2>Catalogs</h2>
<table><tr><th>name</th><th>members</th><th>description</th></tr>
{% for cat in catalogs %}
<tr><td><a href="/hedc/catalog?id={{ cat.catalog_id }}">{{ cat.name }}</a></td>
<td>{{ cat.n_members }}</td><td>{{ cat.description }}</td></tr>
{% endfor %}
</table>
{% include footer %}
"""

CATALOG_PAGE = """{% include header %}
<h2>Catalog: {{ catalog.name }}</h2>
<table><tr><th>event</th><th>kind</th><th>start</th><th>peak rate</th><th>analyses</th></tr>
{% for hle in hles %}
<tr><td><a href="/hedc/hle?id={{ hle.hle_id }}">{{ hle.title }}</a></td>
<td>{{ hle.kind }}</td><td>{{ hle.start_time }}</td>
<td>{{ hle.peak_rate }}</td><td>{{ hle.n_analyses }}</td></tr>
{% endfor %}
</table>
{% include footer %}
"""

HLE_HEADER = """{% include header %}
<h2>{{ hle.title }}</h2>
<table>
<tr><th>kind</th><td>{{ hle.kind }}</td></tr>
<tr><th>window</th><td>{{ hle.start_time }} - {{ hle.end_time }} s</td></tr>
<tr><th>peak rate</th><td>{{ hle.peak_rate }} counts/s</td></tr>
<tr><th>mean energy</th><td>{{ hle.mean_energy_kev }} keV</td></tr>
<tr><th>significance</th><td>{{ hle.significance }}</td></tr>
<tr><th>analyses</th><td>{{ n_analyses }}</td></tr>
<tr><th>in catalogs</th><td>{{ n_catalogs }}</td></tr>
</table>
<p>{{ n_similar }} similar events |
<a href="/hedc/analyze?hle={{ hle.hle_id }}">run analysis</a> |
{% for f in data_files %}<a href="/hedc/download?item={{ f.item_id }}&path={{ f.path }}">download</a> {% endfor %}
</p>
<h3>Analyses</h3>
"""

ANALYSIS = """<div class="ana">
<h4>{{ ana.algorithm }} #{{ ana.ana_id }}</h4>
<table><tr><th>status</th><td>{{ ana.status }}</td></tr>
<tr><th>executed on</th><td>{{ ana.executed_on }}</td></tr>
<tr><th>photons used</th><td>{{ ana.n_photons_used }}</td></tr></table>
{% for img in ana_images %}<img src="{{ img }}" alt="analysis image"/>{% endfor %}
<p><a href="/hedc/ana?id={{ ana.ana_id }}">details</a></p>
</div>
"""

ANA_PAGE = """{% include header %}
<h2>Analysis {{ ana.ana_id }}: {{ ana.algorithm }}</h2>
<table>
<tr><th>HLE</th><td><a href="/hedc/hle?id={{ ana.hle_id }}">{{ ana.hle_id }}</a></td></tr>
<tr><th>parameters</th><td>time bin {{ ana.time_bin_s }} s, pixels {{ ana.n_pixels }}</td></tr>
<tr><th>accounting</th><td>{{ ana.n_photons_used }} photons, {{ ana.output_bytes }} bytes out</td></tr>
<tr><th>public</th><td>{{ ana.public }}</td></tr>
</table>
{% for img in images %}<img src="{{ img }}" alt="product"/>{% endfor %}
{% include footer %}
"""

LOGIN_PAGE = """{% include header %}
<h2>Log in</h2>
{% if error %}<p class="error">{{ error }}</p>{% endif %}
<form method="post" action="/hedc/login">
<input name="login"/><input name="password" type="password"/>
<input type="submit" value="log in"/></form>
{% include footer %}
"""

SEARCH_PAGE = """{% include header %}
<h2>Search events</h2>
<form action="/hedc/search"><input name="kind" placeholder="kind"/>
<input name="min_rate" placeholder="min peak rate"/>
<input type="submit" value="search"/></form>
{% if sql_allowed %}<form action="/hedc/search"><textarea name="sql"></textarea>
<input type="submit" value="run SQL"/></form>{% endif %}
<table><tr><th>event</th><th>kind</th><th>peak rate</th></tr>
{% for hle in results %}
<tr><td><a href="/hedc/hle?id={{ hle.hle_id }}">{{ hle.title }}</a></td>
<td>{{ hle.kind }}</td><td>{{ hle.peak_rate }}</td></tr>
{% endfor %}
</table>
{% include footer %}
"""


def build_registry() -> TemplateRegistry:
    """The standard HEDC template set, ready for the servlets."""
    registry = TemplateRegistry()
    registry.register("header", HEADER)
    registry.register("footer", FOOTER)
    registry.register("catalog_list", CATALOG_LIST)
    registry.register("catalog_page", CATALOG_PAGE)
    registry.register("hle_header", HLE_HEADER)
    registry.register("analysis", ANALYSIS)
    registry.register("ana_page", ANA_PAGE)
    registry.register("login_page", LOGIN_PAGE)
    registry.register("search_page", SEARCH_PAGE)
    return registry
