"""Request scheduling for the web tier: executors and admission control.

The paper's middle tier scaled by adding servlet threads per node (§7.3);
this module gives the reproduction the same knob.  A :class:`WebServer`
hands every request to an *executor*:

* :class:`SynchronousExecutor` — dispatch inline on the caller's thread,
  preserving the historical single-threaded semantics (the default, and
  what the test suite runs on);
* :class:`WorkerPoolExecutor` — a fixed pool of worker threads draining a
  bounded :class:`AdmissionController` queue, so thousands of in-flight
  sessions interleave instead of serialising.

Anything with ``mode``, ``n_workers``, ``needs_context``, ``submit(task)``,
``shutdown()`` and ``report()`` plugs in as an executor — the server also
accepts a factory callable for custom schedulers.

Admission control is class-based and strictly prioritised: **analysis**
traffic (the scientists' bread and butter) is admitted ahead of
**browse**, which is admitted ahead of **bulk**/static transfers.  When
the queue is full, the controller sheds the *least important* queued
request to make room for a more important arrival — browse is dropped
before analysis under overload — and every shed rides the PR-2
503/``Retry-After`` path with a wait estimate derived from the queue
depth and a service-time EWMA.  Queue depth, wait time and shed counts
are first-class metrics (``web.sched.*``) surfaced by ``/hedc/metrics``
and ``/hedc/debug``.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable, Optional

from ..obs import Observability, resolve as resolve_obs
from ..resil import Deadline
from .http import HttpRequest, HttpResponse

CLASS_ANALYSIS = "analysis"
CLASS_BROWSE = "browse"
CLASS_BULK = "bulk"

#: Admission classes, most important first.  Lower number = admitted
#: first, shed last.
CLASS_PRIORITY = {CLASS_ANALYSIS: 0, CLASS_BROWSE: 1, CLASS_BULK: 2}

#: Strict-priority drain order.
CLASS_ORDER = (CLASS_ANALYSIS, CLASS_BROWSE, CLASS_BULK)

#: Default route → admission class.  Operator telemetry rides in the
#: analysis class: losing visibility *during* an overload is how the §7
#: "moving target" goes unnoticed.
DEFAULT_ROUTE_CLASSES = {
    "/hedc/analyze": CLASS_ANALYSIS,
    "/hedc/search": CLASS_ANALYSIS,
    "/hedc/ana": CLASS_ANALYSIS,
    "/hedc/metrics": CLASS_ANALYSIS,
    "/hedc/debug": CLASS_ANALYSIS,
    "/hedc/dashboard": CLASS_ANALYSIS,
    "/hedc/login": CLASS_BROWSE,
    "/hedc/catalogs": CLASS_BROWSE,
    "/hedc/catalog": CLASS_BROWSE,
    "/hedc/hle": CLASS_BROWSE,
    "/hedc/image": CLASS_BROWSE,
    "/hedc/download": CLASS_BULK,
    "/static": CLASS_BULK,
}

#: Default per-route concurrency caps (on top of class admission): the
#: paper's frontend kept "no more than 20 requests in the system at any
#: given time" (§7.1) for analysis submissions; bulk downloads get a
#: tighter cap so they cannot monopolise workers.
DEFAULT_ROUTE_LIMITS = {
    "/hedc/analyze": 20,
    "/hedc/download": 8,
}


def classify_route(route: str,
                   overrides: Optional[dict[str, str]] = None) -> str:
    """Admission class for a route prefix; unknown routes count as browse."""
    if overrides:
        cls = overrides.get(route)
        if cls is not None:
            return cls
    return DEFAULT_ROUTE_CLASSES.get(route, CLASS_BROWSE)


class ScheduledRequest:
    """One request travelling through an executor.

    Resolution is write-once: the first of {worker, admission shed,
    caller abandonment} to call :meth:`resolve` wins, everyone else gets
    ``False`` back, and the waiting caller is released exactly once.
    ``deadline`` is created at *admission* so time spent queued counts
    against the request's budget; ``context`` (a ``contextvars`` copy)
    carries the submitter's trace span and ambient state onto the worker.
    """

    __slots__ = ("request", "route", "request_class", "created_at",
                 "resolved_at", "deadline", "context", "response", "exemplar",
                 "wait_s", "on_resolve", "_event", "_lock")

    def __init__(
        self,
        request: HttpRequest,
        route: str,
        request_class: str = CLASS_BROWSE,
        deadline: Optional[Deadline] = None,
        context=None,
        on_resolve: Optional[Callable[["ScheduledRequest"], None]] = None,
    ):
        self.request = request
        self.route = route
        self.request_class = request_class
        self.created_at = time.perf_counter()
        self.deadline = deadline
        self.context = context
        self.on_resolve = on_resolve
        self.response: Optional[HttpResponse] = None
        self.resolved_at: Optional[float] = None
        self.exemplar: Optional[tuple] = None
        self.wait_s = 0.0
        self._event = threading.Event()
        self._lock = threading.Lock()

    @property
    def priority(self) -> int:
        return CLASS_PRIORITY[self.request_class]

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, response: HttpResponse) -> bool:
        """Install the response; returns False if someone beat us to it."""
        with self._lock:
            if self.response is not None:
                return False
            self.response = response
            self.resolved_at = time.perf_counter()
        if self.on_resolve is not None:
            self.on_resolve(self)
        self._event.set()
        return True

    def result(self, timeout: Optional[float] = None) -> Optional[HttpResponse]:
        """Block until resolved (or ``timeout``); None on timeout."""
        self._event.wait(timeout)
        return self.response


class AdmissionController:
    """A bounded admission queue with strict class priorities.

    ``priorities=False`` degrades it to a plain bounded FIFO (every class
    in one queue, arrivals shed when full) — the A/B baseline the serving
    benchmark compares against.
    """

    def __init__(
        self,
        max_queue_depth: int = 64,
        priorities: bool = True,
        obs: Optional[Observability] = None,
        server: str = "web0",
    ):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1")
        self.max_queue_depth = max_queue_depth
        self.priorities = priorities
        self.obs = resolve_obs(obs)
        self.server = server
        #: Set by the owning executor; sizes the Retry-After estimate.
        self.n_workers = 1
        #: EWMA of per-request service time, fed by workers.
        self.service_ewma_s = 0.05
        self._cond = threading.Condition()
        self._queues: dict[str, deque[ScheduledRequest]] = {
            cls: deque() for cls in CLASS_ORDER
        }
        self._closed = False
        self._depth_gauges = {
            cls: self.obs.gauge("web.sched.queue_depth", server=server, cls=cls)
            for cls in CLASS_ORDER
        }
        self._wait_hists = {
            cls: self.obs.histogram("web.sched.wait_s", server=server, cls=cls)
            for cls in CLASS_ORDER
        }
        self._admitted = {
            cls: self.obs.counter("web.sched.admitted", server=server, cls=cls)
            for cls in CLASS_ORDER
        }
        self._shed = {
            cls: self.obs.counter("web.sched.shed", server=server, cls=cls)
            for cls in CLASS_ORDER
        }
        self._expired = {
            cls: self.obs.counter("web.sched.expired", server=server, cls=cls)
            for cls in CLASS_ORDER
        }

    # -- admission ---------------------------------------------------------

    def depth(self) -> int:
        with self._cond:
            return sum(len(q) for q in self._queues.values())

    def retry_after_s(self) -> float:
        """How long a shed caller should back off: the time for the
        current backlog to drain through the pool, floored at 1s."""
        backlog = sum(len(q) for q in self._queues.values())
        estimate = (backlog / max(1, self.n_workers)) * self.service_ewma_s
        return min(30.0, max(1.0, estimate))

    def submit(self, task: ScheduledRequest) -> bool:
        """Admit ``task``, shedding a less important queued request if
        the queue is full.  Returns True if the task was queued; False if
        it was shed (its 503 response is already resolved)."""
        victim: Optional[ScheduledRequest] = None
        with self._cond:
            if self._closed:
                self._resolve_shed(task, closing=True)
                return False
            queue_class = task.request_class if self.priorities else CLASS_BROWSE
            total = sum(len(q) for q in self._queues.values())
            if total >= self.max_queue_depth:
                if self.priorities:
                    victim = self._evict_lower_priority(task)
                if victim is None:
                    # Nothing less important to drop: the arrival is shed.
                    self._resolve_shed(task)
                    return False
            queue = self._queues[queue_class]
            queue.append(task)
            self._depth_gauges[queue_class].set(len(queue))
            self._admitted[task.request_class].inc()
            self._cond.notify()
        if victim is not None:
            self._resolve_shed(victim)
        return True

    def _evict_lower_priority(
        self, arriving: ScheduledRequest
    ) -> Optional[ScheduledRequest]:
        """Pop the newest queued request of the least important class
        that is *strictly* less important than ``arriving``."""
        for cls in reversed(CLASS_ORDER):
            if CLASS_PRIORITY[cls] <= arriving.priority:
                return None
            queue = self._queues[cls]
            if queue:
                victim = queue.pop()
                self._depth_gauges[cls].set(len(queue))
                return victim
        return None

    def _resolve_shed(self, task: ScheduledRequest,
                      closing: bool = False) -> None:
        retry_after = self.retry_after_s()
        reason = "server shutting down" if closing else (
            f"admission queue full ({self.max_queue_depth})"
        )
        response = HttpResponse.error(503, f"service unavailable: {reason}")
        response.headers["Retry-After"] = str(max(1, round(retry_after)))
        if task.resolve(response):
            self._shed[task.request_class].inc()
            self.obs.count("web.shed", server=self.server, route=task.route)

    # -- draining ----------------------------------------------------------

    def take(self, timeout: Optional[float] = None) -> Optional[ScheduledRequest]:
        """Pop the most important queued request; None on timeout/close."""
        with self._cond:
            while True:
                for cls in CLASS_ORDER:
                    queue = self._queues[cls]
                    if queue:
                        task = queue.popleft()
                        self._depth_gauges[cls].set(len(queue))
                        return task
                if self._closed:
                    return None
                if not self._cond.wait(timeout):
                    return None

    def note_wait(self, task: ScheduledRequest, wait_s: float) -> None:
        task.wait_s = wait_s
        self._wait_hists[task.request_class].observe(wait_s)

    def note_expired(self, task: ScheduledRequest) -> None:
        self._expired[task.request_class].inc()

    def note_service(self, elapsed_s: float) -> None:
        # Racy by design: an EWMA sample lost to a concurrent writer is
        # noise, and the GIL keeps the float store/load atomic.
        self.service_ewma_s = 0.8 * self.service_ewma_s + 0.2 * elapsed_s

    def close(self) -> None:
        drained: list[ScheduledRequest] = []
        with self._cond:
            self._closed = True
            for cls in CLASS_ORDER:
                drained.extend(self._queues[cls])
                self._queues[cls].clear()
                self._depth_gauges[cls].set(0)
            self._cond.notify_all()
        for task in drained:
            self._resolve_shed(task, closing=True)

    def report(self) -> dict[str, Any]:
        with self._cond:
            depth = {cls: len(self._queues[cls]) for cls in CLASS_ORDER}
        return {
            "max_queue_depth": self.max_queue_depth,
            "priorities": self.priorities,
            "depth": depth,
            "admitted": {cls: int(self._admitted[cls].value) for cls in CLASS_ORDER},
            "shed": {cls: int(self._shed[cls].value) for cls in CLASS_ORDER},
            "expired": {cls: int(self._expired[cls].value) for cls in CLASS_ORDER},
            "wait_p95_s": {
                cls: self._wait_hists[cls].quantile(0.95)
                if getattr(self._wait_hists[cls], "count", 0) else 0.0
                for cls in CLASS_ORDER
            },
            "service_ewma_s": self.service_ewma_s,
            "retry_after_s": self.retry_after_s(),
        }


class SynchronousExecutor:
    """Dispatch inline on the caller's thread — today's semantics.

    No queue, no admission, no context copy: one attribute load and one
    call on top of the dispatch itself, so single-thread mode stays
    within the <5% overhead budget on a hot request.
    """

    mode = "sync"
    n_workers = 1
    needs_context = False

    def __init__(self, dispatch: Callable[[ScheduledRequest], None]):
        self._dispatch = dispatch

    def submit(self, task: ScheduledRequest) -> None:
        self._dispatch(task)

    def shutdown(self) -> None:
        pass

    def report(self) -> dict[str, Any]:
        return {"mode": self.mode, "n_workers": 1, "queue": None}


class WorkerPoolExecutor:
    """A fixed worker pool draining the admission queue.

    Workers run each task inside its captured ``contextvars`` context, so
    the submitter's trace span and ambient deadline nest correctly.  A
    task whose deadline expired while queued is resolved 504 *without*
    dispatching — it never occupies a worker.
    """

    mode = "pool"
    needs_context = True

    def __init__(
        self,
        dispatch: Callable[[ScheduledRequest], None],
        n_workers: int = 8,
        admission: Optional[AdmissionController] = None,
        obs: Optional[Observability] = None,
        server: str = "web0",
        poll_s: float = 0.1,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self._dispatch = dispatch
        self.n_workers = n_workers
        self.obs = resolve_obs(obs)
        self.server = server
        self.admission = admission if admission is not None else AdmissionController(
            obs=self.obs, server=server
        )
        self.admission.n_workers = n_workers
        self._poll_s = poll_s
        self._stop = False
        self._threads = [
            threading.Thread(target=self._run, name=f"{server}-worker{i}",
                             daemon=True)
            for i in range(n_workers)
        ]
        for thread in self._threads:
            thread.start()

    def submit(self, task: ScheduledRequest) -> None:
        self.admission.submit(task)

    def _run(self) -> None:
        while not self._stop:
            task = self.admission.take(timeout=self._poll_s)
            if task is None:
                continue
            if task.response is not None:
                continue  # abandoned by the caller while queued
            self.admission.note_wait(task, time.perf_counter() - task.created_at)
            if task.deadline is not None and task.deadline.expired:
                self.admission.note_expired(task)
                task.resolve(HttpResponse.error(
                    504, "deadline exceeded in admission queue"
                ))
                continue
            started = time.perf_counter()
            if task.context is not None:
                task.context.run(self._dispatch, task)
            else:
                self._dispatch(task)
            self.admission.note_service(time.perf_counter() - started)

    def shutdown(self) -> None:
        self._stop = True
        self.admission.close()
        for thread in self._threads:
            thread.join(timeout=2.0)

    def report(self) -> dict[str, Any]:
        return {
            "mode": self.mode,
            "n_workers": self.n_workers,
            "queue": self.admission.report(),
        }
