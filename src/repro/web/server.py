"""The web server and thin client.

:class:`WebServer` wires the servlets into a router (the Apache/Tomcat of
paper §2.3) and hands every request to a pluggable executor
(:mod:`repro.web.scheduler`): synchronous single-thread dispatch by
default, or a worker pool with priority admission control so thousands of
in-flight sessions interleave (§7.3's "add servlet threads" knob).
:class:`ThinClient` drives the typical browse sequence of §7.2 — "first
sends a query to select an HLE, then sends another query to retrieve all
its related analyses, and finally sends requests for all images related
to these analyses" — caching static images client-side after the first
download, and backing off for the server's ``Retry-After`` hint when it
is shed with 503.

Both are instrumented through :mod:`repro.obs`: the server keeps
per-route latency histograms and status counters (``requests_served`` /
``bytes_sent`` remain as thin properties over the obs counters), and the
client's browse timing feeds a ``client.browse_s`` histogram instead of
hand-rolled ``perf_counter`` bookkeeping.
"""

from __future__ import annotations

import contextvars
import math
import re
import time
from dataclasses import dataclass
from typing import Any, Optional, Union

from ..obs import Observability, resolve as resolve_obs
from ..resil import (
    BreakerOpen,
    Bulkhead,
    BulkheadFull,
    ConnectionDropped,
    Deadline,
    DeadlineExceeded,
    RetryPolicy,
)
from ..resil.faults import fire as fire_fault
from .http import HttpRequest, HttpResponse, Router
from .scheduler import (
    DEFAULT_ROUTE_LIMITS,
    AdmissionController,
    ScheduledRequest,
    SynchronousExecutor,
    WorkerPoolExecutor,
    classify_route,
)
from .servlets import SESSION_COOKIE, Servlets


class WebServer:
    """One web-server node hosting the HEDC servlets over one DM.

    ``scheduler`` picks the executor: ``"sync"`` (default — inline
    dispatch, today's semantics), ``"pool"`` (``n_workers`` threads
    behind a bounded priority admission queue), or a callable
    ``factory(dispatch) -> executor`` for custom schedulers.
    ``admission_control=False`` keeps the pool but degrades the queue to
    plain bounded FIFO — the benchmark's A/B baseline.  ``route_limits``
    maps route prefixes to :class:`~repro.resil.Bulkhead` concurrency
    caps (defaults cap ``/hedc/analyze`` at the paper's 20-request window
    and bulk downloads at 8; pass ``{}`` to disable).

    ``request_budget_s`` installs a :class:`Deadline` around each request
    — created at *admission*, so queue wait counts against the budget —
    propagated down into the DM and PL; blown budgets come back as 504.
    When a downstream breaker/bulkhead rejects the call, the server sheds
    load with 503 + ``Retry-After`` instead of queueing on a dead
    dependency.
    """

    def __init__(self, dm, frontend=None, name: str = "web0",
                 obs: Observability | None = None,
                 request_budget_s: float | None = None,
                 scheduler: Union[str, Any] = "sync",
                 n_workers: int = 8,
                 max_queue_depth: int = 64,
                 admission_control: bool = True,
                 route_limits: Optional[dict[str, int]] = None,
                 route_classes: Optional[dict[str, str]] = None):
        self.request_budget_s = request_budget_s
        self.name = name
        self.dm = dm
        self.obs = obs if obs is not None else resolve_obs(getattr(dm, "obs", None))
        self.servlets = Servlets(dm, frontend=frontend, obs=self.obs)
        self.servlets.serving_report = self.serving_report
        self.router = Router()
        self.router.add("/static", self.servlets.static)
        self.router.add("/hedc/login", self.servlets.login)
        self.router.add("/hedc/catalogs", self.servlets.catalogs)
        self.router.add("/hedc/catalog", self.servlets.catalog)
        self.router.add("/hedc/hle", self.servlets.hle)
        self.router.add("/hedc/ana", self.servlets.ana)
        self.router.add("/hedc/image", self.servlets.image)
        self.router.add("/hedc/download", self.servlets.download)
        self.router.add("/hedc/search", self.servlets.search)
        self.router.add("/hedc/analyze", self.servlets.analyze)
        self.router.add("/hedc/metrics", self.servlets.metrics)
        self.router.add("/hedc/debug", self.servlets.debug)
        self.router.add("/hedc/dashboard", self.servlets.dashboard)
        # Health rollup sources: the reports the servlets already build.
        # Last server wired wins when several share one hub — fine, they
        # share the DM too in every assembly we ship.
        self.obs.health.add_source("serving", self.serving_report)
        self.obs.health.add_source("shard", self.servlets._shard_report)
        self.obs.health.add_source("repl", self.servlets._repl_report)
        self.obs.slo.cause_resolver = self.obs.health.attributed_cause
        #: Set by :meth:`enable_canary`.
        self.canary = None
        self._requests = self.obs.counter("web.requests", server=self.name)
        self._bytes = self.obs.counter("web.bytes_sent", server=self.name)
        # Per-route metric handles, resolved lazily once per (route, status).
        self._route_hists: dict[str, object] = {}
        self._response_counters: dict[tuple[str, int], object] = {}
        self._route_classes = dict(route_classes or {})
        limits = DEFAULT_ROUTE_LIMITS if route_limits is None else route_limits
        self._route_bulkheads = {
            route: Bulkhead(f"web.route{route}", max_concurrent=limit,
                            obs=self.obs)
            for route, limit in limits.items()
        }
        if scheduler == "sync":
            self.executor = SynchronousExecutor(self._dispatch)
        elif scheduler == "pool":
            admission = AdmissionController(
                max_queue_depth=max_queue_depth,
                priorities=admission_control,
                obs=self.obs, server=self.name,
            )
            self.executor = WorkerPoolExecutor(
                self._dispatch, n_workers=n_workers, admission=admission,
                obs=self.obs, server=self.name,
            )
        else:
            self.executor = scheduler(self._dispatch)

    # -- legacy counters, now thin views over the obs registry ---------------

    @property
    def requests_served(self) -> int:
        return int(self._requests.value)

    @property
    def bytes_sent(self) -> int:
        return int(self._bytes.value)

    def _route_of(self, path: str) -> str:
        prefix = self.router.match(path)
        return prefix if prefix is not None else "(unrouted)"

    # -- request lifecycle ---------------------------------------------------

    def submit(self, request: HttpRequest) -> ScheduledRequest:
        """Admit a request and return its in-flight handle.

        With the pool executor this is non-blocking (the open-loop load
        generator's entry point); with the synchronous executor the task
        is already resolved on return.
        """
        route = self._route_of(request.path)
        deadline = (Deadline(self.request_budget_s)
                    if self.request_budget_s is not None else None)
        context = (contextvars.copy_context()
                   if self.executor.needs_context else None)
        task = ScheduledRequest(
            request, route,
            request_class=classify_route(route, self._route_classes),
            deadline=deadline, context=context, on_resolve=self._account,
        )
        self.executor.submit(task)
        return task

    def handle(self, request: HttpRequest) -> HttpResponse:
        # The drop happens before any server-side work, like a broken
        # socket would; it propagates to the client as an exception, not a
        # response.
        fire_fault("web.connection_drop")
        task = self.submit(request)
        timeout = None
        if task.deadline is not None:
            # Give workers a grace window past the budget to deliver
            # their own 504 before the caller abandons the task.
            timeout = max(0.0, task.deadline.remaining()) + 0.1
        response = task.result(timeout)
        if response is None:
            # Still queued past its budget: abandon with 504.  resolve()
            # is write-once, so a worker finishing concurrently wins and
            # its response is returned instead.
            if task.resolve(HttpResponse.error(
                    504, "deadline exceeded waiting for a worker")):
                self.obs.count("web.deadline_exceeded", server=self.name,
                               route=task.route)
            response = task.response
        return response

    def _dispatch(self, task: ScheduledRequest) -> None:
        """Serve one admitted task — runs on a worker (pool) or inline
        (sync); all error→status mapping happens here."""
        request = task.request
        route = task.route
        with self.obs.span("web.handle", server=self.name, route=route) as span:
            try:
                bulkhead = self._route_bulkheads.get(route)
                if bulkhead is not None:
                    with bulkhead:
                        response = self._serve(task)
                else:
                    response = self._serve(task)
            except (BreakerOpen, BulkheadFull) as exc:
                response = HttpResponse.error(
                    503, f"service unavailable: {exc}"
                )
                response.headers["Retry-After"] = str(
                    max(1, math.ceil(exc.retry_after_s))
                )
                self.obs.count("web.shed", server=self.name, route=route)
            except DeadlineExceeded as exc:
                response = HttpResponse.error(504, f"deadline exceeded: {exc}")
                self.obs.count("web.deadline_exceeded", server=self.name,
                               route=route)
            except Exception as exc:
                response = HttpResponse.error(500, f"{type(exc).__name__}: {exc}")
            span.set_tag("status", response.status)
            if span:
                task.exemplar = (span.trace_id, span.span_id)
        task.resolve(response)

    def _serve(self, task: ScheduledRequest) -> HttpResponse:
        if task.deadline is not None:
            with task.deadline:
                task.deadline.check("web.dispatch")
                return self.router.dispatch(task.request)
        return self.router.dispatch(task.request)

    def _account(self, task: ScheduledRequest) -> None:
        """Metric accounting at resolution — every outcome (served, shed,
        expired, abandoned) is counted exactly once."""
        response = task.response
        route = task.route
        elapsed = time.perf_counter() - task.created_at
        histogram = self._route_hists.get(route)
        if histogram is None:
            histogram = self._route_hists[route] = self.obs.histogram(
                "web.request_s", server=self.name, route=route
            )
        if task.exemplar is not None:
            histogram.observe(elapsed, exemplar=task.exemplar)
        else:
            histogram.observe(elapsed)
        threshold = self.obs.slowlog.threshold_for("web.handle")
        if threshold is not None and elapsed >= threshold:
            trace_id, span_id = task.exemplar or (None, None)
            self.obs.slowlog.record(
                "web.handle", elapsed, threshold,
                trace_id=trace_id, span_id=span_id,
                route=route, path=task.request.path, status=response.status,
            )
        self._requests.inc()
        self._bytes.inc(response.size)
        counter_key = (route, response.status)
        counter = self._response_counters.get(counter_key)
        if counter is None:
            counter = self._response_counters[counter_key] = self.obs.counter(
                "web.responses", server=self.name, route=route,
                status=str(response.status),
            )
        counter.inc()

    # -- lifecycle & telemetry -----------------------------------------------

    def enable_canary(self, path: str = "/hedc/catalogs",
                      interval_s: float = 5.0, timeout_s: float = 2.0):
        """Attach a synthetic canary probe to the hub's collector so an
        idle deployment still distinguishes "no traffic" from "down".
        The probe fires on collector ticks (at most once per
        ``interval_s``); start the collector to make it periodic."""
        from ..obs import CanaryProbe

        self.canary = CanaryProbe(self, path=path, interval_s=interval_s,
                                  timeout_s=timeout_s)
        self.obs.collector.add_sampler(self.canary)
        return self.canary

    def shutdown(self) -> None:
        """Stop pool workers and shed anything still queued."""
        self.executor.shutdown()

    def serving_report(self) -> dict[str, Any]:
        """Scheduler/admission state for ``/hedc/metrics`` + ``/hedc/debug``."""
        executor_report = self.executor.report()
        return {
            "scheduler": executor_report["mode"],
            "n_workers": executor_report["n_workers"],
            "queue": executor_report["queue"],
            "routes": {
                route: {"limit": bulkhead.max_concurrent,
                        "in_use": bulkhead.in_use}
                for route, bulkhead in sorted(self._route_bulkheads.items())
            },
        }


_IMG_RE = re.compile(r'(?:src|href)="(/hedc/image[^"]+)"')


@dataclass
class BrowseResult:
    """What one full browse interaction transferred."""

    hle_id: int
    page_bytes: int = 0
    image_bytes: int = 0
    n_images: int = 0
    n_requests: int = 0
    elapsed_s: float = 0.0


class ThinClient:
    """A browser-like client with persistent cookies and a static cache.

    When the server sheds it with 503, the client honors the
    ``Retry-After`` header — sleeping for the server's hint (capped at
    ``max_retry_after_s``) and retrying up to ``max_shed_retries`` times
    — instead of hammering a server that just said it is overloaded.
    """

    def __init__(self, server: WebServer, client_ip: str = "127.0.0.1"):
        self.server = server
        self.obs = server.obs
        self.client_ip = client_ip
        self.cookies: dict[str, str] = {}
        #: Retry-After behavior on 503 (injectable sleep for tests).
        self.honor_retry_after = True
        self.max_shed_retries = 1
        self.max_retry_after_s = 5.0
        self._sleep = time.sleep
        self._static_cache: dict[str, bytes] = {}
        # Browser-style revalidation cache: url -> (etag, body, content_type).
        # Responses carrying an ETag are replayed with If-None-Match; a 304
        # restores the cached body without the payload crossing the wire.
        self._etag_cache: dict[str, tuple[str, bytes, str]] = {}
        self._requests_sent = self.obs.counter("client.requests_sent",
                                               client=client_ip)
        # A browser reconnects on a dropped connection; GET/POST against
        # these servlets are safe to resend.
        self._drop_retry = RetryPolicy(
            name="client.reconnect",
            max_attempts=3,
            base_delay_s=0.0,
            jitter=0.0,
            retryable=(ConnectionDropped,),
            obs=self.obs,
        )

    @property
    def requests_sent(self) -> int:
        return int(self._requests_sent.value)

    def get(self, url: str) -> HttpResponse:
        if url.startswith("/static"):
            if url in self._static_cache:
                self.obs.count("client.static_cache_hits", client=self.client_ip)
                return HttpResponse.image(self._static_cache[url])
            response = self._send(HttpRequest.get(url, self.cookies, self.client_ip))
            if response.status == 200:
                self._static_cache[url] = response.body
            return response
        headers: dict[str, str] = {}
        cached = self._etag_cache.get(url)
        if cached is not None:
            headers["If-None-Match"] = cached[0]
        response = self._send(
            HttpRequest.get(url, self.cookies, self.client_ip, headers=headers)
        )
        if response.status == 304 and cached is not None:
            self.obs.count("client.revalidated", client=self.client_ip)
            return HttpResponse(status=200, body=cached[1], content_type=cached[2],
                                headers=dict(response.headers))
        etag = response.headers.get("ETag")
        if response.status == 200 and etag:
            self._etag_cache[url] = (etag, response.body, response.content_type)
        return response

    def post(self, url: str, params: dict[str, str]) -> HttpResponse:
        return self._send(HttpRequest.post(url, params, self.cookies, self.client_ip))

    def _send(self, request: HttpRequest) -> HttpResponse:
        self._requests_sent.inc()
        response = self._drop_retry.call(self.server.handle, request)
        retries = 0
        while (response.status == 503 and self.honor_retry_after
               and retries < self.max_shed_retries):
            hint = response.headers.get("Retry-After")
            if hint is None:
                break
            # The server's hint is authoritative (it knows its backlog);
            # the cap only bounds a pathological estimate.
            self._sleep(min(float(hint), self.max_retry_after_s))
            self.obs.count("client.retry_after_waits", client=self.client_ip)
            retries += 1
            self._requests_sent.inc()
            response = self._drop_retry.call(self.server.handle, request)
        self.cookies.update(response.set_cookies)
        return response

    def login(self, login: str, password: str) -> bool:
        response = self.post("/hedc/login", {"login": login, "password": password})
        return response.status == 302 and SESSION_COOKIE in self.cookies

    def browse_hle(self, hle_id: int) -> BrowseResult:
        """The §7.2 sequence: HLE page, then every embedded dynamic image."""
        result = BrowseResult(hle_id)
        with self.obs.timed("client.browse_s", client=self.client_ip) as timer:
            page = self.get(f"/hedc/hle?id={hle_id}")
            result.page_bytes = page.size
            result.n_requests += 1
            if page.status == 200:
                for image_url in _IMG_RE.findall(page.text):
                    image = self.get(image_url.replace("&amp;", "&"))
                    result.n_requests += 1
                    if image.status == 200:
                        result.image_bytes += image.size
                        result.n_images += 1
        result.elapsed_s = timer.elapsed_s
        return result
