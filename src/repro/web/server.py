"""The web server and thin client.

:class:`WebServer` wires the servlets into a router (the Apache/Tomcat of
paper §2.3); :class:`ThinClient` drives the typical browse sequence of
§7.2 — "first sends a query to select an HLE, then sends another query to
retrieve all its related analyses, and finally sends requests for all
images related to these analyses" — caching static images client-side
after the first download.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field
from typing import Optional

from .http import HttpRequest, HttpResponse, Router
from .servlets import SESSION_COOKIE, Servlets


class WebServer:
    """One web-server node hosting the HEDC servlets over one DM."""

    def __init__(self, dm, frontend=None, name: str = "web0"):
        self.name = name
        self.dm = dm
        self.servlets = Servlets(dm, frontend=frontend)
        self.router = Router()
        self.router.add("/static", self.servlets.static)
        self.router.add("/hedc/login", self.servlets.login)
        self.router.add("/hedc/catalogs", self.servlets.catalogs)
        self.router.add("/hedc/catalog", self.servlets.catalog)
        self.router.add("/hedc/hle", self.servlets.hle)
        self.router.add("/hedc/ana", self.servlets.ana)
        self.router.add("/hedc/image", self.servlets.image)
        self.router.add("/hedc/download", self.servlets.download)
        self.router.add("/hedc/search", self.servlets.search)
        self.router.add("/hedc/analyze", self.servlets.analyze)
        self.requests_served = 0
        self.bytes_sent = 0

    def handle(self, request: HttpRequest) -> HttpResponse:
        try:
            response = self.router.dispatch(request)
        except Exception as exc:
            response = HttpResponse.error(500, f"{type(exc).__name__}: {exc}")
        self.requests_served += 1
        self.bytes_sent += response.size
        return response


_IMG_RE = re.compile(r'(?:src|href)="(/hedc/image[^"]+)"')


@dataclass
class BrowseResult:
    """What one full browse interaction transferred."""

    hle_id: int
    page_bytes: int = 0
    image_bytes: int = 0
    n_images: int = 0
    n_requests: int = 0
    elapsed_s: float = 0.0


class ThinClient:
    """A browser-like client with persistent cookies and a static cache."""

    def __init__(self, server: WebServer, client_ip: str = "127.0.0.1"):
        self.server = server
        self.client_ip = client_ip
        self.cookies: dict[str, str] = {}
        self._static_cache: dict[str, bytes] = {}
        self.requests_sent = 0

    def get(self, url: str) -> HttpResponse:
        if url.startswith("/static"):
            if url in self._static_cache:
                return HttpResponse.image(self._static_cache[url])
            response = self._send(HttpRequest.get(url, self.cookies, self.client_ip))
            if response.status == 200:
                self._static_cache[url] = response.body
            return response
        return self._send(HttpRequest.get(url, self.cookies, self.client_ip))

    def post(self, url: str, params: dict[str, str]) -> HttpResponse:
        return self._send(HttpRequest.post(url, params, self.cookies, self.client_ip))

    def _send(self, request: HttpRequest) -> HttpResponse:
        self.requests_sent += 1
        response = self.server.handle(request)
        self.cookies.update(response.set_cookies)
        return response

    def login(self, login: str, password: str) -> bool:
        response = self.post("/hedc/login", {"login": login, "password": password})
        return response.status == 302 and SESSION_COOKIE in self.cookies

    def browse_hle(self, hle_id: int) -> BrowseResult:
        """The §7.2 sequence: HLE page, then every embedded dynamic image."""
        started = time.perf_counter()
        result = BrowseResult(hle_id)
        page = self.get(f"/hedc/hle?id={hle_id}")
        result.page_bytes = page.size
        result.n_requests += 1
        if page.status != 200:
            result.elapsed_s = time.perf_counter() - started
            return result
        for image_url in _IMG_RE.findall(page.text):
            image = self.get(image_url.replace("&amp;", "&"))
            result.n_requests += 1
            if image.status == 200:
                result.image_bytes += image.size
                result.n_images += 1
        result.elapsed_s = time.perf_counter() - started
        return result
