"""A small HTML template engine.

HEDC's web responses are built from "multiple HTML template files, which
are populated during query processing" (paper §6.1) — header/footer
templates plus one analysis template per ANA tuple.  The engine supports
``{{ expr }}`` substitution (dot access into dicts/attributes, with HTML
escaping), ``{% for x in expr %}``, ``{% if expr %}/{% else %}`` and
``{% include name %}`` over a template registry.
"""

from __future__ import annotations

import html
import re
from typing import Any, Optional


class TemplateError(Exception):
    """Malformed template or unresolvable expression."""


_TAG_RE = re.compile(r"({{.*?}}|{%.*?%})", re.DOTALL)


def _resolve(expression: str, context: dict[str, Any]) -> Any:
    """Resolve dotted ``a.b.c`` paths through dicts and attributes."""
    expression = expression.strip()
    if expression.startswith(("'", '"')) and expression.endswith(expression[0]):
        return expression[1:-1]
    try:
        return int(expression)
    except ValueError:
        pass
    parts = expression.split(".")
    if parts[0] not in context:
        raise TemplateError(f"unknown template variable {parts[0]!r}")
    value = context[parts[0]]
    for part in parts[1:]:
        if isinstance(value, dict):
            if part not in value:
                raise TemplateError(f"no key {part!r} in {parts[0]!r}")
            value = value[part]
        else:
            if not hasattr(value, part):
                raise TemplateError(f"no attribute {part!r} on {parts[0]!r}")
            value = getattr(value, part)
    return value


class _Node:
    def render(self, context: dict[str, Any], registry: "TemplateRegistry") -> str:
        raise NotImplementedError


class _Text(_Node):
    def __init__(self, text: str):
        self.text = text

    def render(self, context, registry) -> str:
        return self.text


class _Expr(_Node):
    def __init__(self, expression: str, escape: bool = True):
        self.expression = expression
        self.escape = escape

    def render(self, context, registry) -> str:
        value = _resolve(self.expression, context)
        if value is None:
            return ""
        text = f"{value:.6g}" if isinstance(value, float) else str(value)
        return html.escape(text) if self.escape else text


class _For(_Node):
    def __init__(self, variable: str, expression: str, body: list[_Node]):
        self.variable = variable
        self.expression = expression
        self.body = body

    def render(self, context, registry) -> str:
        items = _resolve(self.expression, context)
        rendered = []
        for item in items:
            inner = dict(context)
            inner[self.variable] = item
            rendered.append("".join(node.render(inner, registry) for node in self.body))
        return "".join(rendered)


class _If(_Node):
    def __init__(self, expression: str, then_body: list[_Node], else_body: list[_Node]):
        self.expression = expression
        self.then_body = then_body
        self.else_body = else_body

    def render(self, context, registry) -> str:
        try:
            truthy = bool(_resolve(self.expression, context))
        except TemplateError:
            truthy = False
        branch = self.then_body if truthy else self.else_body
        return "".join(node.render(context, registry) for node in branch)


class _Include(_Node):
    def __init__(self, name: str):
        self.name = name

    def render(self, context, registry) -> str:
        return registry.render(self.name, context)


class Template:
    """A parsed template."""

    def __init__(self, source: str):
        self.nodes = self._parse(iter(_TAG_RE.split(source)), terminators=())[0]

    def _parse(self, pieces, terminators) -> tuple[list[_Node], Optional[str]]:
        nodes: list[_Node] = []
        for piece in pieces:
            if not piece:
                continue
            if piece.startswith("{{"):
                inner = piece[2:-2].strip()
                escape = True
                if inner.endswith("|safe"):
                    inner = inner[:-5].strip()
                    escape = False
                nodes.append(_Expr(inner, escape=escape))
            elif piece.startswith("{%"):
                tag = piece[2:-2].strip()
                if tag in terminators:
                    return nodes, tag
                if tag.startswith("for "):
                    match = re.match(r"for\s+(\w+)\s+in\s+(.+)", tag)
                    if not match:
                        raise TemplateError(f"bad for tag: {tag!r}")
                    body, terminator = self._parse(pieces, ("endfor",))
                    nodes.append(_For(match.group(1), match.group(2), body))
                elif tag.startswith("if "):
                    then_body, terminator = self._parse(pieces, ("else", "endif"))
                    else_body: list[_Node] = []
                    if terminator == "else":
                        else_body, _terminator = self._parse(pieces, ("endif",))
                    nodes.append(_If(tag[3:].strip(), then_body, else_body))
                elif tag.startswith("include "):
                    nodes.append(_Include(tag[8:].strip()))
                else:
                    raise TemplateError(f"unknown tag {tag!r}")
            else:
                nodes.append(_Text(piece))
        if terminators:
            raise TemplateError(f"missing {'/'.join(terminators)}")
        return nodes, None

    def render(self, context: dict[str, Any], registry: Optional["TemplateRegistry"] = None) -> str:
        registry = registry or TemplateRegistry()
        return "".join(node.render(context, registry) for node in self.nodes)


class TemplateRegistry:
    """Named templates so pages can be assembled from parts (§6.1)."""

    def __init__(self) -> None:
        self._templates: dict[str, Template] = {}

    def register(self, name: str, source: str) -> None:
        self._templates[name] = Template(source)

    def render(self, name: str, context: dict[str, Any]) -> str:
        if name not in self._templates:
            raise TemplateError(f"unknown template {name!r}")
        return self._templates[name].render(context, self)

    def __contains__(self, name: str) -> bool:
        return name in self._templates
