"""Presentation tier: templates, servlets, web server and thin client
(paper §6.1)."""

from .http import HttpRequest, HttpResponse, Router
from .pages import build_registry
from .server import BrowseResult, ThinClient, WebServer
from .servlets import SESSION_COOKIE, Servlets
from .templates import Template, TemplateError, TemplateRegistry

__all__ = [
    "BrowseResult",
    "HttpRequest",
    "HttpResponse",
    "Router",
    "SESSION_COOKIE",
    "Servlets",
    "Template",
    "TemplateError",
    "TemplateRegistry",
    "ThinClient",
    "WebServer",
    "build_registry",
]
