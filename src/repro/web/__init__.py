"""Presentation tier: templates, servlets, web server and thin client
(paper §6.1)."""

from .http import HttpRequest, HttpResponse, Router
from .loadgen import (
    LoadResult,
    RemoteDatabase,
    ServingStack,
    browse_mix,
    build_serving_stack,
    mixed_class_mix,
    run_closed_loop,
    run_open_loop,
)
from .pages import build_registry
from .scheduler import (
    CLASS_ANALYSIS,
    CLASS_BROWSE,
    CLASS_BULK,
    AdmissionController,
    ScheduledRequest,
    SynchronousExecutor,
    WorkerPoolExecutor,
    classify_route,
)
from .server import BrowseResult, ThinClient, WebServer
from .servlets import SESSION_COOKIE, Servlets
from .templates import Template, TemplateError, TemplateRegistry

__all__ = [
    "AdmissionController",
    "BrowseResult",
    "CLASS_ANALYSIS",
    "CLASS_BROWSE",
    "CLASS_BULK",
    "HttpRequest",
    "HttpResponse",
    "LoadResult",
    "RemoteDatabase",
    "Router",
    "SESSION_COOKIE",
    "ScheduledRequest",
    "Servlets",
    "ServingStack",
    "SynchronousExecutor",
    "Template",
    "TemplateError",
    "TemplateRegistry",
    "ThinClient",
    "WebServer",
    "WorkerPoolExecutor",
    "browse_mix",
    "build_serving_stack",
    "classify_route",
    "build_registry",
    "mixed_class_mix",
    "run_closed_loop",
    "run_open_loop",
]
