"""Synthetic telemetry generation and raw-data-unit packaging.

Mirrors the flight pipeline of paper §2.1: the raw photon stream is
"segmented along the time axis, packaged into units of roughly 40 MB,
formatted as FITS files and compressed using gnu-zip".  The generator
produces an observation timeline (phenomena on top of background), draws
photons as an inhomogeneous Poisson process, and packages them into
time-segmented gzipped FITS units.

Volumes are scaled down for laptop use; the ``unit_target_photons``
parameter controls segmentation the way the 40 MB target does in flight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..fits import Header, write
from .events import GammaRayBurst, Phenomenon, QuietSun, SaaTransit, SolarFlare
from .instrument import N_COLLIMATORS, SPIN_PERIOD_S
from .photons import PhotonList


@dataclass
class ObservationPlan:
    """A scripted observation window: background plus phenomena."""

    start: float
    duration: float
    background_rate: float = 50.0
    phenomena: list[Phenomenon] = field(default_factory=list)

    @property
    def end(self) -> float:
        return self.start + self.duration

    def add(self, phenomenon: Phenomenon) -> "ObservationPlan":
        if phenomenon.start < self.start or phenomenon.end > self.end:
            raise ValueError("phenomenon outside the observation window")
        self.phenomena.append(phenomenon)
        return self


def standard_day_plan(
    start: float = 0.0,
    duration: float = 3600.0,
    seed: int = 7,
    n_flares: int = 3,
    n_bursts: int = 1,
    n_saa: int = 1,
) -> ObservationPlan:
    """A representative observation window with a mix of phenomena.

    Defaults generate one "scaled day" of an hour containing flares of
    random GOES classes, a gamma-ray burst and an SAA transit — the event
    mix that motivates HEDC's type-free event model (§3.2-3.3).
    """
    rng = np.random.default_rng(seed)
    plan = ObservationPlan(start, duration)
    classes = ["B", "C", "C", "M", "X"]
    slot = duration / max(1, n_flares + n_bursts + n_saa + 1)
    cursor = start + slot * 0.3

    def clamp(wanted: float) -> float:
        """Fit a phenomenon inside the remaining window."""
        return max(1.0, min(wanted, plan.end - cursor - 1.0))

    for index in range(n_flares):
        plan.add(
            SolarFlare(
                start=cursor,
                duration=clamp(float(rng.uniform(80.0, 240.0))),
                goes_class=str(rng.choice(classes)),
                position_arcsec=(float(rng.uniform(-900, 900)), float(rng.uniform(-900, 900))),
            )
        )
        cursor += slot
    for index in range(n_bursts):
        plan.add(GammaRayBurst(start=cursor, duration=clamp(float(rng.uniform(5.0, 30.0)))))
        cursor += slot
    for index in range(n_saa):
        plan.add(SaaTransit(start=cursor, duration=clamp(float(rng.uniform(120.0, 300.0)))))
        cursor += slot
    return plan


class TelemetryGenerator:
    """Draws photon lists from an :class:`ObservationPlan`."""

    def __init__(self, plan: ObservationPlan, seed: int = 0, time_resolution_s: float = 0.5):
        self.plan = plan
        self._rng = np.random.default_rng(seed)
        self.time_resolution_s = time_resolution_s

    def _rate_profile(self) -> tuple[np.ndarray, np.ndarray]:
        """(grid_times, total_rate) over the window, SAA blanking applied."""
        grid = np.arange(self.plan.start, self.plan.end, self.time_resolution_s)
        total = np.full_like(grid, self.plan.background_rate, dtype=np.float64)
        for phenomenon in self.plan.phenomena:
            if isinstance(phenomenon, SaaTransit):
                continue
            total += phenomenon.rate(grid)
        for phenomenon in self.plan.phenomena:
            if isinstance(phenomenon, SaaTransit):
                total[phenomenon.blocks(grid)] = 0.0
        return grid, total

    def generate(self) -> PhotonList:
        """Draw the full photon list for the window."""
        grid, rate = self._rate_profile()
        dt = self.time_resolution_s
        counts = self._rng.poisson(rate * dt)
        n_total = int(counts.sum())
        times = np.empty(n_total, dtype=np.float64)
        position = 0
        nonzero = np.nonzero(counts)[0]
        for index in nonzero:
            n = counts[index]
            times[position:position + n] = grid[index] + self._rng.uniform(0, dt, size=n)
            position += n
        times.sort()
        energies = self._draw_energies(times)
        detectors = self._draw_detectors(times)
        photons = PhotonList(times, energies, detectors)
        photons.validate()
        return photons

    def _draw_energies(self, times: np.ndarray) -> np.ndarray:
        """Attribute each photon to the locally dominant phenomenon."""
        energies = 3.0 + self._rng.exponential(5.0, size=len(times))  # background
        grid_rates = []
        for phenomenon in self.plan.phenomena:
            if isinstance(phenomenon, SaaTransit):
                continue
            rate_here = phenomenon.rate(times)
            grid_rates.append((phenomenon, rate_here))
        if not grid_rates:
            return energies.astype(np.float32)
        background = np.full(len(times), self.plan.background_rate)
        total = background + sum(rate for _phenomenon, rate in grid_rates)
        pick = self._rng.uniform(size=len(times)) * np.maximum(total, 1e-12)
        cumulative = background.copy()
        for phenomenon, rate_here in grid_rates:
            mask = (pick >= cumulative) & (pick < cumulative + rate_here)
            n = int(mask.sum())
            if n:
                energies[mask] = phenomenon.draw_energies(self._rng, n)
            cumulative += rate_here
        return energies.astype(np.float32)

    def _draw_detectors(self, times: np.ndarray) -> np.ndarray:
        """Spin modulation: detector hit pattern rotates with the spacecraft."""
        phase = (times % SPIN_PERIOD_S) / SPIN_PERIOD_S
        weights = 1.0 + 0.3 * np.cos(2 * np.pi * (phase[:, None] - np.arange(N_COLLIMATORS) / N_COLLIMATORS))
        weights /= weights.sum(axis=1, keepdims=True)
        cumulative = np.cumsum(weights, axis=1)
        u = self._rng.uniform(size=len(times))[:, None]
        return (u < cumulative).argmax(axis=1).astype(np.int16) + 1


@dataclass(frozen=True)
class RawDataUnit:
    """One packaged telemetry unit: a gzipped FITS file on disk."""

    unit_id: str
    path: Path
    start: float
    end: float
    n_photons: int
    bytes_on_disk: int
    calibration_version: int = 1


def package_units(
    photons: PhotonList,
    directory: Path,
    unit_target_photons: int = 20_000,
    calibration_version: int = 1,
    prefix: str = "hsi",
) -> list[RawDataUnit]:
    """Segment a photon list along the time axis into gzipped FITS units.

    Equivalent of the flight pipeline's 40 MB-unit packaging, with
    ``unit_target_photons`` standing in for the byte budget.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    units: list[RawDataUnit] = []
    if len(photons) == 0:
        return units
    n_units = max(1, int(np.ceil(len(photons) / unit_target_photons)))
    boundaries = np.linspace(0, len(photons), n_units + 1).astype(int)
    for unit_index in range(n_units):
        lo, hi = boundaries[unit_index], boundaries[unit_index + 1]
        if hi <= lo:
            continue
        segment = PhotonList(
            photons.times[lo:hi], photons.energies[lo:hi], photons.detectors[lo:hi]
        )
        unit_id = f"{prefix}_{unit_index:04d}_{int(segment.start):010d}"
        header = Header()
        header.set("UNITID", unit_id)
        header.set("CALVER", calibration_version, "calibration version")
        path = directory / f"{unit_id}.fits.gz"
        n_bytes = write(path, segment.to_fits(extra_header=header))
        units.append(
            RawDataUnit(
                unit_id=unit_id,
                path=path,
                start=segment.start,
                end=segment.end,
                n_photons=len(segment),
                bytes_on_disk=n_bytes,
                calibration_version=calibration_version,
            )
        )
    return units
