"""Event detection over raw photon streams.

When raw data units reach HEDC "they are once more searched for
interesting events, using programs that detect a wider range of events
such as solar flares, gamma ray bursts, or quiet periods" (paper §2.2).
The detector bins the photon stream, estimates a running background, and
flags threshold excursions, classifying them by hardness and duration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .photons import PhotonList


@dataclass(frozen=True)
class DetectedEvent:
    """One candidate event found in the stream."""

    kind: str              # "flare" | "gamma_ray_burst" | "quiet" | "data_gap"
    start: float
    end: float
    peak_time: float
    peak_rate: float       # counts/s at peak
    total_counts: int
    mean_energy_kev: float
    significance: float    # peak excess in background sigmas

    @property
    def duration(self) -> float:
        return self.end - self.start


class EventDetector:
    """Threshold detector with a median-filter background estimate."""

    def __init__(
        self,
        bin_width_s: float = 4.0,
        threshold_sigma: float = 5.0,
        min_bins: int = 2,
        background_window_bins: int = 31,
    ):
        if bin_width_s <= 0:
            raise ValueError("bin width must be positive")
        if threshold_sigma <= 0:
            raise ValueError("threshold must be positive")
        self.bin_width_s = bin_width_s
        self.threshold_sigma = threshold_sigma
        self.min_bins = min_bins
        self.background_window_bins = background_window_bins

    def _running_median(self, counts: np.ndarray) -> np.ndarray:
        window = self.background_window_bins
        if len(counts) <= window:
            return np.full(len(counts), float(np.median(counts)))
        half = window // 2
        padded = np.pad(counts.astype(float), half, mode="edge")
        view = np.lib.stride_tricks.sliding_window_view(padded, window)
        return np.median(view, axis=1)[: len(counts)]

    def detect(self, photons: PhotonList) -> list[DetectedEvent]:
        """All events in the stream, time-ordered."""
        if len(photons) == 0:
            return []
        edges, counts = photons.bin_counts(self.bin_width_s)
        centers = (edges[:-1] + edges[1:]) / 2.0
        background = self._running_median(counts)
        sigma = np.sqrt(np.maximum(background, 1.0))
        excess = (counts - background) / sigma
        above = excess > self.threshold_sigma

        events: list[DetectedEvent] = []
        events.extend(self._excursions(photons, edges, centers, counts, background, excess, above))
        events.extend(self._gaps(edges, counts))
        events.sort(key=lambda event: event.start)
        return events

    def _excursions(self, photons, edges, centers, counts, background, excess, above):
        events = []
        index = 0
        n = len(counts)
        while index < n:
            if not above[index]:
                index += 1
                continue
            start_index = index
            while index < n and above[index]:
                index += 1
            end_index = index  # exclusive
            if end_index - start_index < self.min_bins:
                continue
            start_time = float(edges[start_index])
            end_time = float(edges[end_index])
            window = photons.select_time(start_time, end_time)
            peak_bin = start_index + int(np.argmax(counts[start_index:end_index]))
            peak_rate = float(counts[peak_bin]) / self.bin_width_s
            mean_energy = float(window.energies.mean()) if len(window) else 0.0
            significance = float(excess[peak_bin])
            events.append(
                DetectedEvent(
                    kind=self._classify(end_time - start_time, mean_energy),
                    start=start_time,
                    end=end_time,
                    peak_time=float(centers[peak_bin]),
                    peak_rate=peak_rate,
                    total_counts=int(counts[start_index:end_index].sum()),
                    mean_energy_kev=mean_energy,
                    significance=significance,
                )
            )
        return events

    def _gaps(self, edges, counts):
        """Zero-count stretches: SAA transits or downlink gaps."""
        events = []
        zero = counts == 0
        index = 0
        n = len(counts)
        min_gap_bins = max(3, self.min_bins)
        while index < n:
            if not zero[index]:
                index += 1
                continue
            start_index = index
            while index < n and zero[index]:
                index += 1
            if index - start_index >= min_gap_bins:
                events.append(
                    DetectedEvent(
                        kind="data_gap",
                        start=float(edges[start_index]),
                        end=float(edges[index]),
                        peak_time=float(edges[start_index]),
                        peak_rate=0.0,
                        total_counts=0,
                        mean_energy_kev=0.0,
                        significance=0.0,
                    )
                )
        return events

    def _classify(self, duration: float, mean_energy_kev: float) -> str:
        """Hard and short → GRB; otherwise a flare.

        RHESSI data can serve non-solar research (paper §3.2): gamma-ray
        bursts are much harder (higher mean energy) and shorter than
        flares.
        """
        if mean_energy_kev > 60.0 and duration < 60.0:
            return "gamma_ray_burst"
        return "flare"


def quiet_periods(
    photons: PhotonList,
    events: Sequence[DetectedEvent],
    min_duration_s: float = 120.0,
) -> list[DetectedEvent]:
    """Stretches between detected events, usable as calibration intervals."""
    periods: list[DetectedEvent] = []
    cursor = photons.start
    boundaries = sorted(
        [(event.start, event.end) for event in events if event.kind != "quiet"]
    )
    for start, end in boundaries + [(photons.end, photons.end)]:
        if start - cursor >= min_duration_s:
            window = photons.select_time(cursor, start)
            mean_energy = float(window.energies.mean()) if len(window) else 0.0
            periods.append(
                DetectedEvent(
                    kind="quiet",
                    start=cursor,
                    end=start,
                    peak_time=(cursor + start) / 2.0,
                    peak_rate=len(window) / max(start - cursor, 1e-9),
                    total_counts=len(window),
                    mean_energy_kev=mean_energy,
                    significance=0.0,
                )
            )
        cursor = max(cursor, end)
    return periods
