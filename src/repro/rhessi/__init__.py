"""Synthetic RHESSI instrument and telemetry substrate.

Replaces flight data (which we do not have) with statistically equivalent
synthetic photon streams: Poisson backgrounds, flares, gamma-ray bursts,
SAA transits, FITS+gzip unit packaging, event detection and calibration
versioning.  See DESIGN.md for the substitution rationale.
"""

from .calibration import Calibration, CalibrationHistory, RecalibrationRecord
from .detect import DetectedEvent, EventDetector, quiet_periods
from .events import GammaRayBurst, Phenomenon, QuietSun, SaaTransit, SolarFlare
from .instrument import (
    COLLIMATOR_PITCHES_ARCSEC,
    ENERGY_MAX_KEV,
    ENERGY_MIN_KEV,
    N_COLLIMATORS,
    SPIN_PERIOD_S,
    STANDARD_ENERGY_BANDS,
    Detector,
    band_index,
    detectors,
)
from .photons import PhotonList, merge
from .telemetry import (
    ObservationPlan,
    RawDataUnit,
    TelemetryGenerator,
    package_units,
    standard_day_plan,
)

__all__ = [
    "COLLIMATOR_PITCHES_ARCSEC",
    "Calibration",
    "CalibrationHistory",
    "DetectedEvent",
    "Detector",
    "ENERGY_MAX_KEV",
    "ENERGY_MIN_KEV",
    "EventDetector",
    "GammaRayBurst",
    "N_COLLIMATORS",
    "ObservationPlan",
    "Phenomenon",
    "PhotonList",
    "QuietSun",
    "RawDataUnit",
    "RecalibrationRecord",
    "SPIN_PERIOD_S",
    "STANDARD_ENERGY_BANDS",
    "SaaTransit",
    "SolarFlare",
    "TelemetryGenerator",
    "band_index",
    "detectors",
    "merge",
    "package_units",
    "quiet_periods",
    "standard_day_plan",
]
