"""Photon event lists.

RHESSI raw data "is a list of photon impacts on the detectors, with an
energy and a time tag attached to each record" (paper §3.4).  A
:class:`PhotonList` is exactly that: parallel numpy arrays of arrival
time (s), energy (keV) and detector index, sorted by time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..fits import BinTableHDU, FitsFile, Header, PrimaryHDU
from .instrument import ENERGY_MAX_KEV, ENERGY_MIN_KEV, N_COLLIMATORS


@dataclass
class PhotonList:
    """Time-ordered photon impact records."""

    times: np.ndarray       # float64 seconds (mission-relative)
    energies: np.ndarray    # float32 keV
    detectors: np.ndarray   # int16 detector index, 1..9

    def __post_init__(self) -> None:
        self.times = np.asarray(self.times, dtype=np.float64)
        self.energies = np.asarray(self.energies, dtype=np.float32)
        self.detectors = np.asarray(self.detectors, dtype=np.int16)
        if not (len(self.times) == len(self.energies) == len(self.detectors)):
            raise ValueError("photon arrays must have equal length")
        if len(self.times) > 1 and np.any(np.diff(self.times) < 0):
            order = np.argsort(self.times, kind="stable")
            self.times = self.times[order]
            self.energies = self.energies[order]
            self.detectors = self.detectors[order]

    def __len__(self) -> int:
        return len(self.times)

    @property
    def start(self) -> float:
        return float(self.times[0]) if len(self) else 0.0

    @property
    def end(self) -> float:
        return float(self.times[-1]) if len(self) else 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    # -- slicing ------------------------------------------------------------

    def select_time(self, start: float, end: float) -> "PhotonList":
        """Photons with start <= t < end."""
        mask = (self.times >= start) & (self.times < end)
        return PhotonList(self.times[mask], self.energies[mask], self.detectors[mask])

    def select_energy(self, low_kev: float, high_kev: float) -> "PhotonList":
        """Photons with low <= E < high."""
        mask = (self.energies >= low_kev) & (self.energies < high_kev)
        return PhotonList(self.times[mask], self.energies[mask], self.detectors[mask])

    def select_detector(self, detector_index: int) -> "PhotonList":
        mask = self.detectors == detector_index
        return PhotonList(self.times[mask], self.energies[mask], self.detectors[mask])

    def concat(self, other: "PhotonList") -> "PhotonList":
        return PhotonList(
            np.concatenate([self.times, other.times]),
            np.concatenate([self.energies, other.energies]),
            np.concatenate([self.detectors, other.detectors]),
        )

    # -- binning -------------------------------------------------------------

    def bin_counts(self, bin_width_s: float, start: Optional[float] = None,
                   end: Optional[float] = None) -> Tuple[np.ndarray, np.ndarray]:
        """(bin_edges, counts) histogram of arrival times."""
        if bin_width_s <= 0:
            raise ValueError("bin width must be positive")
        t0 = self.start if start is None else start
        t1 = self.end if end is None else end
        if t1 <= t0:
            return np.array([t0, t0 + bin_width_s]), np.zeros(1, dtype=np.int64)
        n_bins = max(1, int(np.ceil((t1 - t0) / bin_width_s)))
        edges = t0 + np.arange(n_bins + 1) * bin_width_s
        counts, _edges = np.histogram(self.times, bins=edges)
        return edges, counts.astype(np.int64)

    def spectrum(self, n_bins: int = 64) -> Tuple[np.ndarray, np.ndarray]:
        """Log-spaced energy spectrum: (bin_edges_keV, counts)."""
        edges = np.logspace(
            np.log10(ENERGY_MIN_KEV), np.log10(ENERGY_MAX_KEV), n_bins + 1
        )
        counts, _edges = np.histogram(self.energies, bins=edges)
        return edges, counts.astype(np.int64)

    # -- FITS I/O -----------------------------------------------------------

    EXTENSION_NAME = "PHOTONS"

    def to_fits(self, extra_header: Optional[Header] = None) -> FitsFile:
        primary = PrimaryHDU()
        primary.header.set("TELESCOP", "RHESSI")
        primary.header.set("NPHOTON", len(self))
        primary.header.set("TSTART", self.start)
        primary.header.set("TSTOP", self.end)
        if extra_header is not None:
            for keyword, value, comment in extra_header:
                primary.header.set(keyword, value, comment)
        table = BinTableHDU(
            ["time", "energy", "detector"],
            [self.times, self.energies, self.detectors.astype(np.int32)],
            name=self.EXTENSION_NAME,
        )
        return FitsFile([primary, table])

    @classmethod
    def from_fits(cls, fits_file: FitsFile) -> "PhotonList":
        table = fits_file.table(cls.EXTENSION_NAME)
        return cls(
            table.column("time"),
            table.column("energy"),
            table.column("detector").astype(np.int16),
        )

    def validate(self) -> None:
        """Raise ValueError if any record is physically impossible."""
        if len(self) == 0:
            return
        if np.any(self.energies < 0):
            raise ValueError("negative photon energy")
        if np.any((self.detectors < 1) | (self.detectors > N_COLLIMATORS)):
            raise ValueError("detector index out of range 1..9")


def merge(photon_lists: Sequence[PhotonList]) -> PhotonList:
    """Merge several lists into one time-ordered list."""
    if not photon_lists:
        return PhotonList(np.array([]), np.array([]), np.array([]))
    return PhotonList(
        np.concatenate([pl.times for pl in photon_lists]),
        np.concatenate([pl.energies for pl in photon_lists]),
        np.concatenate([pl.detectors for pl in photon_lists]),
    )
