"""Models of the phenomena the satellite observes.

HEDC deliberately has no fixed data "types" — only *events* (paper §3.3) —
but the telemetry itself is produced by physical phenomena: solar flares,
gamma-ray bursts, quiet sun, and passages through the South Atlantic
Anomaly (during which detectors are effectively blind).  Each phenomenon
is a time-varying photon rate profile plus an energy distribution; the
generator superimposes them on a background and draws an inhomogeneous
Poisson process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

#: GOES class → approximate peak soft-X-ray photon rate multiplier.
GOES_CLASSES = {"A": 0.5, "B": 1.0, "C": 4.0, "M": 16.0, "X": 64.0}


@dataclass(frozen=True)
class Phenomenon:
    """Base class: a photon-rate profile over a time interval."""

    start: float
    duration: float

    @property
    def end(self) -> float:
        return self.start + self.duration

    def rate(self, t: np.ndarray) -> np.ndarray:
        """Photon rate (counts/s, all detectors) at times ``t``."""
        raise NotImplementedError

    def draw_energies(self, rng: np.random.Generator, n: int) -> np.ndarray:
        """Energies (keV) for ``n`` photons of this phenomenon."""
        raise NotImplementedError

    @property
    def kind(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class SolarFlare(Phenomenon):
    """A flare: fast rise, exponential decay, thermal+nonthermal spectrum."""

    goes_class: str = "C"
    peak_rate: float = 400.0  # counts/s above background at peak
    position_arcsec: tuple[float, float] = (300.0, 200.0)  # heliocentric offset

    def __post_init__(self) -> None:
        if self.goes_class not in GOES_CLASSES:
            raise ValueError(f"unknown GOES class {self.goes_class!r}")

    @property
    def scaled_peak_rate(self) -> float:
        return self.peak_rate * GOES_CLASSES[self.goes_class]

    def rate(self, t: np.ndarray) -> np.ndarray:
        rise = self.duration * 0.15
        peak_time = self.start + rise
        decay = self.duration * 0.3
        out = np.zeros_like(t, dtype=np.float64)
        rising = (t >= self.start) & (t < peak_time)
        falling = (t >= peak_time) & (t < self.end)
        out[rising] = self.scaled_peak_rate * (t[rising] - self.start) / rise
        out[falling] = self.scaled_peak_rate * np.exp(-(t[falling] - peak_time) / decay)
        return out

    def draw_energies(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Thermal component (~80%): exponential around 10 keV; nonthermal
        # tail (~20%): power law E^-3 up to hundreds of keV.
        thermal_n = int(round(n * 0.8))
        thermal = 3.0 + rng.exponential(8.0, size=thermal_n)
        u = rng.uniform(size=n - thermal_n)
        # Inverse-CDF sampling of E^-3 between 25 and 500 keV.
        low, high = 25.0, 500.0
        tail = (low ** -2 - u * (low ** -2 - high ** -2)) ** -0.5
        return np.concatenate([thermal, tail])

    @property
    def kind(self) -> str:
        return "flare"


@dataclass(frozen=True)
class GammaRayBurst(Phenomenon):
    """A non-solar event: short, hard-spectrum burst (paper §3.2)."""

    peak_rate: float = 2500.0

    def rate(self, t: np.ndarray) -> np.ndarray:
        # FRED profile: fast rise, exponential decay.
        rise = max(self.duration * 0.05, 0.05)
        peak_time = self.start + rise
        decay = self.duration * 0.25
        out = np.zeros_like(t, dtype=np.float64)
        rising = (t >= self.start) & (t < peak_time)
        falling = (t >= peak_time) & (t < self.end)
        out[rising] = self.peak_rate * (t[rising] - self.start) / rise
        out[falling] = self.peak_rate * np.exp(-(t[falling] - peak_time) / decay)
        return out

    def draw_energies(self, rng: np.random.Generator, n: int) -> np.ndarray:
        # Band-like hard spectrum: power law E^-1.5, 30 keV - 10 MeV.
        u = rng.uniform(size=n)
        low, high = 30.0, 10_000.0
        return (low ** -0.5 - u * (low ** -0.5 - high ** -0.5)) ** -2.0

    @property
    def kind(self) -> str:
        return "gamma_ray_burst"


@dataclass(frozen=True)
class QuietSun(Phenomenon):
    """Quiet period: low, slowly varying soft emission."""

    level: float = 20.0

    def rate(self, t: np.ndarray) -> np.ndarray:
        inside = (t >= self.start) & (t < self.end)
        out = np.zeros_like(t, dtype=np.float64)
        out[inside] = self.level * (1.0 + 0.1 * np.sin(2 * math.pi * t[inside] / 600.0))
        return out

    def draw_energies(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return 3.0 + rng.exponential(3.0, size=n)

    @property
    def kind(self) -> str:
        return "quiet"


@dataclass(frozen=True)
class SaaTransit(Phenomenon):
    """South Atlantic Anomaly passage: detectors off, zero photons."""

    def rate(self, t: np.ndarray) -> np.ndarray:
        return np.zeros_like(t, dtype=np.float64)

    def draw_energies(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.empty(0)

    @property
    def kind(self) -> str:
        return "saa_transit"

    def blocks(self, t: np.ndarray) -> np.ndarray:
        """Boolean mask of times during which this transit blanks the sky."""
        return (t >= self.start) & (t < self.end)
