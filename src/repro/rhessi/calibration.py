"""Detector calibration and recalibration.

"With RHESSI, as in many similar instruments, it is to be expected that
the raw data will be recalibrated several times.  Accordingly, the raw
data and all the derived data based on it must be versioned." (paper §3.1)

A :class:`Calibration` maps recorded pulse heights to energies via a
per-detector gain and offset.  :class:`CalibrationHistory` holds the
version chain; applying version N+1 to version-N data produces a new
photon list and a lineage record, which the DM stores in the operational
part of the schema.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from .instrument import N_COLLIMATORS
from .photons import PhotonList


@dataclass(frozen=True)
class Calibration:
    """One calibration version: per-detector linear energy correction."""

    version: int
    gains: tuple[float, ...]     # multiplicative, one per detector
    offsets: tuple[float, ...]   # additive keV, one per detector
    note: str = ""

    def __post_init__(self) -> None:
        if len(self.gains) != N_COLLIMATORS or len(self.offsets) != N_COLLIMATORS:
            raise ValueError(f"need {N_COLLIMATORS} gains and offsets")
        if any(gain <= 0 for gain in self.gains):
            raise ValueError("gains must be positive")

    @classmethod
    def identity(cls, version: int = 1) -> "Calibration":
        return cls(
            version=version,
            gains=(1.0,) * N_COLLIMATORS,
            offsets=(0.0,) * N_COLLIMATORS,
            note="launch calibration",
        )

    def apply(self, photons: PhotonList) -> PhotonList:
        """Return a new photon list with corrected energies."""
        gains = np.asarray(self.gains)[photons.detectors - 1]
        offsets = np.asarray(self.offsets)[photons.detectors - 1]
        energies = np.maximum(photons.energies * gains + offsets, 0.1)
        return PhotonList(photons.times.copy(), energies.astype(np.float32), photons.detectors.copy())

    def compose_correction(self, previous: "Calibration") -> "Calibration":
        """Correction that maps ``previous``-calibrated data to this version.

        If raw pulse heights satisfy E_prev = g_p * E + o_p and
        E_new = g_n * E + o_n, then E_new = (g_n/g_p) * E_prev +
        (o_n - o_p * g_n/g_p).
        """
        gains = tuple(
            new_gain / old_gain for new_gain, old_gain in zip(self.gains, previous.gains)
        )
        offsets = tuple(
            new_offset - old_offset * ratio
            for new_offset, old_offset, ratio in zip(self.offsets, previous.offsets, gains)
        )
        return Calibration(
            version=self.version,
            gains=gains,
            offsets=offsets,
            note=f"correction v{previous.version} -> v{self.version}",
        )


@dataclass
class RecalibrationRecord:
    """Lineage entry: which data was re-derived, from and to which version."""

    unit_id: str
    from_version: int
    to_version: int
    n_photons: int


class CalibrationHistory:
    """The ordered chain of calibration versions for the mission."""

    def __init__(self) -> None:
        self._versions: dict[int, Calibration] = {1: Calibration.identity(1)}
        self.records: list[RecalibrationRecord] = []

    @property
    def current_version(self) -> int:
        return max(self._versions)

    @property
    def current(self) -> Calibration:
        return self._versions[self.current_version]

    def get(self, version: int) -> Calibration:
        if version not in self._versions:
            raise KeyError(f"unknown calibration version {version}")
        return self._versions[version]

    def publish(self, gains, offsets, note: str = "") -> Calibration:
        """Publish a new calibration version."""
        version = self.current_version + 1
        calibration = Calibration(version, tuple(gains), tuple(offsets), note)
        self._versions[version] = calibration
        return calibration

    def recalibrate(
        self, photons: PhotonList, unit_id: str, from_version: int, to_version: Optional[int] = None
    ) -> tuple[PhotonList, RecalibrationRecord]:
        """Re-derive a photon list from one version to another.

        Returns the corrected photon list plus the lineage record the DM
        should persist.
        """
        target = self.current_version if to_version is None else to_version
        correction = self.get(target).compose_correction(self.get(from_version))
        corrected = correction.apply(photons)
        record = RecalibrationRecord(
            unit_id=unit_id,
            from_version=from_version,
            to_version=target,
            n_photons=len(corrected),
        )
        self.records.append(record)
        return corrected, record
