"""Physical constants of the (simulated) RHESSI instrument.

Values follow the paper's description (§2.1): nine rotating modulation
collimators, each with a germanium detector, covering 3 keV soft X-rays to
20 MeV gamma-rays, ~2.0 GB of raw telemetry per day packaged in ~40 MB
units.  The synthetic generator scales the *volume* down (laptop-scale)
but keeps every structural property: detector count, energy range, spin
modulation, unit segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

N_COLLIMATORS = 9
N_SEGMENTS_PER_DETECTOR = 2  # front and rear germanium segments
ENERGY_MIN_KEV = 3.0
ENERGY_MAX_KEV = 20_000.0
SPIN_PERIOD_S = 4.0  # ~15 rpm spacecraft rotation
SPATIAL_RESOLUTION_ARCSEC = 2.0
SPECTRAL_RESOLUTION_KEV = 1.0

RAW_BYTES_PER_DAY = 2_000_000_000  # 2.0 GB/day (paper)
UNIT_BYTES = 40_000_000            # ~40 MB raw-data units (paper)

#: Grid-pair angular pitches of the nine collimators (arcsec), coarsest to
#: finest; used by the imaging back-projection kernel.
COLLIMATOR_PITCHES_ARCSEC = (
    2.26, 3.92, 6.79, 11.76, 20.36, 35.27, 61.08, 105.8, 183.2,
)

#: Standard analysis energy bands (keV) used by the extended catalog.
STANDARD_ENERGY_BANDS = (
    (3.0, 6.0),
    (6.0, 12.0),
    (12.0, 25.0),
    (25.0, 50.0),
    (50.0, 100.0),
    (100.0, 300.0),
    (300.0, 800.0),
    (800.0, 7000.0),
    (7000.0, 20000.0),
)


@dataclass(frozen=True)
class Detector:
    """One germanium detector behind one collimator."""

    index: int            # 1..9
    pitch_arcsec: float   # grid pitch of the collimator in front
    live: bool = True     # detectors drop out occasionally in flight

    @property
    def name(self) -> str:
        return f"G{self.index}"


def detectors() -> list[Detector]:
    """The standard set of nine detectors."""
    return [
        Detector(index + 1, pitch)
        for index, pitch in enumerate(COLLIMATOR_PITCHES_ARCSEC)
    ]


def band_index(energy_kev: float) -> int:
    """Index of the standard energy band containing ``energy_kev``."""
    for index, (low, high) in enumerate(STANDARD_ENERGY_BANDS):
        if low <= energy_kev < high:
            return index
    return len(STANDARD_ENERGY_BANDS) - 1
