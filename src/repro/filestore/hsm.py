"""Hierarchical storage management across archives.

The paper rejects DBMS LOBs partly because they "lack support for the
hierarchical storage management systems needed to provide vendor
independent, scalable, and robust data access, migration and backup
across different file systems and platforms" (§4.2).  This manager is
that missing layer: it registers archives, places new data by policy,
migrates items between tiers with checksum verification and compensation,
and stages tape items through a scratch disk.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .archive import (
    Archive,
    ArchiveError,
    ArchiveKind,
    ChecksumError,
    DiskArchive,
    StoredItem,
    TapeArchive,
)
from .checksums import checksum_bytes


@dataclass(frozen=True)
class MigrationResult:
    """Outcome of one item migration (recorded as lineage by the DM)."""

    rel_path: str
    from_archive: str
    to_archive: str
    size: int
    checksum: str


class StorageManager:
    """Registry and mover over a set of archives."""

    def __init__(self, scratch_dir: Optional[Union[str, Path]] = None):
        self._archives: dict[str, Archive] = {}
        self._scratch: Optional[DiskArchive] = None
        if scratch_dir is not None:
            self._scratch = DiskArchive("__scratch__", scratch_dir)
        self.migrations: list[MigrationResult] = []
        # Checksums recorded at placement time, verified on every read.
        self._checksums: dict[tuple[str, str], str] = {}

    # -- registry ------------------------------------------------------------

    def scratch_path(self, sub_dir: str) -> Path:
        """A working directory outside every archive (staging, repacking)."""
        if self._scratch is not None:
            path = self._scratch.root / sub_dir
        else:
            import tempfile

            path = Path(tempfile.mkdtemp(prefix="hsm-scratch-")) / sub_dir
        path.mkdir(parents=True, exist_ok=True)
        return path

    def register(self, archive: Archive) -> None:
        if archive.archive_id in self._archives:
            raise ArchiveError(f"archive {archive.archive_id!r} already registered")
        self._archives[archive.archive_id] = archive

    def archive(self, archive_id: str) -> Archive:
        if archive_id not in self._archives:
            raise ArchiveError(f"unknown archive {archive_id!r}")
        return self._archives[archive_id]

    def archive_ids(self) -> list[str]:
        return sorted(self._archives)

    def online_disks(self) -> list[Archive]:
        return [
            archive
            for archive in self._archives.values()
            if archive.online and archive.kind is ArchiveKind.DISK
        ]

    # -- placement ------------------------------------------------------------

    def place(self, rel_path: str, payload: bytes, prefer: Optional[str] = None) -> StoredItem:
        """Store new data on a preferred or any online disk with room."""
        candidates: list[Archive] = []
        if prefer is not None:
            candidates.append(self.archive(prefer))
        candidates.extend(
            archive for archive in self.online_disks() if archive.archive_id != prefer
        )
        last_error: Optional[Exception] = None
        for archive in candidates:
            if not archive.online:
                continue
            left = archive.capacity_left
            if left is not None and left < len(payload):
                continue
            try:
                item = archive.store(rel_path, payload)
            except ArchiveError as exc:
                last_error = exc
            else:
                self._checksums[(item.archive_id, rel_path)] = item.checksum
                return item
        raise ArchiveError(f"no archive can hold {rel_path!r}: {last_error}")

    def record_checksum(self, archive_id: str, rel_path: str, checksum: str) -> None:
        """Register an expected checksum for data stored out of band."""
        self._checksums[(archive_id, rel_path)] = checksum

    # -- retrieval --------------------------------------------------------------

    def retrieve(self, archive_id: str, rel_path: str) -> bytes:
        """Fetch bytes, transparently staging tape items via scratch.

        When a checksum was recorded at placement time the payload is
        verified against it; a mismatch raises :class:`ChecksumError`
        rather than handing corrupt bytes to the DM.
        """
        archive = self.archive(archive_id)
        if isinstance(archive, TapeArchive):
            archive.stage(rel_path)
        payload = archive.retrieve(rel_path)
        self._verify(archive_id, rel_path, payload)
        return payload

    def _verify(self, archive_id: str, rel_path: str, payload: bytes) -> None:
        expected = self._checksums.get((archive_id, rel_path))
        if expected is not None and checksum_bytes(payload) != expected:
            raise ChecksumError(
                f"checksum mismatch reading {archive_id}:{rel_path} "
                f"(expected {expected})"
            )

    def verify_recorded(self) -> list[tuple[str, str]]:
        """Audit every recorded item; return the (archive, path) pairs
        whose on-media bytes no longer match (empty list = all clean)."""
        corrupt = []
        for (archive_id, rel_path), expected in sorted(self._checksums.items()):
            archive = self.archive(archive_id)
            if isinstance(archive, TapeArchive):
                archive.stage(rel_path)
            if checksum_bytes(archive.retrieve(rel_path)) != expected:
                corrupt.append((archive_id, rel_path))
        return corrupt

    def local_path(self, archive_id: str, rel_path: str) -> Path:
        """A direct path for external programs; stages tape items first."""
        archive = self.archive(archive_id)
        if isinstance(archive, TapeArchive):
            archive.stage(rel_path)
            if self._scratch is not None:
                scratch_rel = f"{archive_id}/{rel_path}"
                if not self._scratch.exists(scratch_rel):
                    self._scratch.store(scratch_rel, archive.retrieve(rel_path))
                return self._scratch.local_path(scratch_rel)
        return archive.local_path(rel_path)

    # -- migration ----------------------------------------------------------------

    def migrate(self, rel_path: str, from_id: str, to_id: str) -> MigrationResult:
        """Move one item between archives.

        Copy-verify-delete with compensation: the source is removed only
        after the destination copy's checksum matches; on failure the
        destination copy is removed (the paper's §5.2 "compensating
        actions are taken if failures occur").
        """
        source = self.archive(from_id)
        destination = self.archive(to_id)
        if isinstance(source, TapeArchive):
            source.stage(rel_path)
        payload = source.retrieve(rel_path)
        # Never propagate a corrupt source copy to another tier.
        self._verify(from_id, rel_path, payload)
        expected = checksum_bytes(payload)
        item = destination.store(rel_path, payload)
        if item.checksum != expected:
            # Compensation: never leave a corrupt copy behind.
            destination.remove(rel_path)
            raise ArchiveError(
                f"checksum mismatch migrating {rel_path!r} {from_id}->{to_id}"
            )
        source.remove(rel_path)
        if (from_id, rel_path) in self._checksums:
            self._checksums[(to_id, rel_path)] = self._checksums.pop(
                (from_id, rel_path)
            )
        else:
            self._checksums[(to_id, rel_path)] = expected
        result = MigrationResult(rel_path, from_id, to_id, item.size, item.checksum)
        self.migrations.append(result)
        return result

    # -- backup/restore ----------------------------------------------------------

    def backup(self, archive_id: str, backup_id: str) -> int:
        """Copy every item of one archive into a backup archive."""
        source = self.archive(archive_id)
        destination = self.archive(backup_id)
        copied = 0
        for rel_path in source.list_items():
            if destination.exists(rel_path):
                continue
            if isinstance(source, TapeArchive):
                source.stage(rel_path)
            destination.store(rel_path, source.retrieve(rel_path))
            copied += 1
        return copied

    def restore(self, backup_id: str, archive_id: str) -> int:
        """Restore missing items of an archive from its backup."""
        return StorageManager.backup(self, backup_id, archive_id)

    def total_status(self) -> list[dict]:
        return [archive.status() for archive in self._archives.values()]
