"""File archives: the half of HEDC's storage split that holds the data
(the other half, the metadata, lives in :mod:`repro.metadb`)."""

from .archive import (
    Archive,
    ArchiveError,
    ArchiveKind,
    ArchiveOffline,
    ChecksumError,
    DiskArchive,
    NotStaged,
    RemoteArchive,
    StoredItem,
    TapeArchive,
)
from .checksums import checksum_bytes, checksum_file, verify_file
from .hsm import MigrationResult, StorageManager

__all__ = [
    "Archive",
    "ArchiveError",
    "ArchiveKind",
    "ArchiveOffline",
    "ChecksumError",
    "DiskArchive",
    "MigrationResult",
    "NotStaged",
    "RemoteArchive",
    "StorageManager",
    "StoredItem",
    "TapeArchive",
    "checksum_bytes",
    "checksum_file",
    "verify_file",
]
