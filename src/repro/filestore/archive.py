"""Archive types.

HEDC's resource tier mixes storage classes (paper §2.3): RAID with tape
backup for critical data, no-backup RAID5, plain disks archived to CD,
NFS-linked remote archives, and a tape archive for data "not needed
on-line".  Each class is modelled as an :class:`Archive` with its own
availability and access-latency semantics; the hierarchical storage
manager composes them.

All stored data is read-only: storing to an existing name raises.
"""

from __future__ import annotations

import enum
import shutil
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from ..resil.faults import fire as fire_fault, maybe_corrupt
from .checksums import checksum_bytes, checksum_file


class ArchiveError(Exception):
    """Storage operation failure."""


class ChecksumError(ArchiveError):
    """Payload bytes no longer match the checksum recorded at store time."""


class ArchiveOffline(ArchiveError):
    """Access to an archive that is not online."""


class NotStaged(ArchiveError):
    """A near-line (tape) item must be staged before direct access."""


class ArchiveKind(enum.Enum):
    DISK = "disk"
    TAPE = "tape"
    REMOTE = "remote"


@dataclass(frozen=True)
class StoredItem:
    """Receipt for a stored file."""

    archive_id: str
    rel_path: str
    size: int
    checksum: str


class Archive:
    """Base archive: a named, capacity-limited file container."""

    kind = ArchiveKind.DISK

    def __init__(self, archive_id: str, root: Union[str, Path], capacity_bytes: Optional[int] = None):
        self.archive_id = archive_id
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.capacity_bytes = capacity_bytes
        self.online = True
        self.bytes_stored = 0
        self.reads = 0
        self.writes = 0

    # -- helpers ------------------------------------------------------------

    def _require_online(self) -> None:
        if not self.online:
            raise ArchiveOffline(f"archive {self.archive_id!r} is offline")

    def _full_path(self, rel_path: str) -> Path:
        path = (self.root / rel_path).resolve()
        if self.root.resolve() not in path.parents and path != self.root.resolve():
            raise ArchiveError(f"path escapes archive root: {rel_path!r}")
        return path

    @property
    def capacity_left(self) -> Optional[int]:
        if self.capacity_bytes is None:
            return None
        return max(0, self.capacity_bytes - self.bytes_stored)

    # -- operations -----------------------------------------------------------

    def store(self, rel_path: str, payload: bytes) -> StoredItem:
        """Store immutable content under ``rel_path``."""
        self._require_online()
        fire_fault("filestore.store")
        path = self._full_path(rel_path)
        if path.exists():
            raise ArchiveError(
                f"{self.archive_id}:{rel_path} already exists (file data is read-only)"
            )
        if self.capacity_bytes is not None and self.bytes_stored + len(payload) > self.capacity_bytes:
            raise ArchiveError(f"archive {self.archive_id!r} is full")
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(payload)
        self.bytes_stored += len(payload)
        self.writes += 1
        return StoredItem(self.archive_id, rel_path, len(payload), checksum_bytes(payload))

    def store_file(self, rel_path: str, source: Union[str, Path]) -> StoredItem:
        """Store by copying an existing file (large payloads)."""
        self._require_online()
        source = Path(source)
        path = self._full_path(rel_path)
        if path.exists():
            raise ArchiveError(
                f"{self.archive_id}:{rel_path} already exists (file data is read-only)"
            )
        size = source.stat().st_size
        if self.capacity_bytes is not None and self.bytes_stored + size > self.capacity_bytes:
            raise ArchiveError(f"archive {self.archive_id!r} is full")
        path.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(source, path)
        self.bytes_stored += size
        self.writes += 1
        return StoredItem(self.archive_id, rel_path, size, checksum_file(path))

    def retrieve(self, rel_path: str) -> bytes:
        self._require_online()
        fire_fault("filestore.read")
        path = self._full_path(rel_path)
        if not path.exists():
            raise ArchiveError(f"{self.archive_id}:{rel_path} not found")
        self.reads += 1
        # Chaos corruption happens on the read path (a flaky controller,
        # not bad media): the stored bytes stay intact, so a verified
        # re-read can succeed.
        return maybe_corrupt("filestore.corrupt", path.read_bytes())

    def exists(self, rel_path: str) -> bool:
        if not self.online:
            return False
        return self._full_path(rel_path).exists()

    def local_path(self, rel_path: str) -> Path:
        """Direct filesystem path — components "simply copy files to the
        appropriate location" (paper §4.2)."""
        self._require_online()
        path = self._full_path(rel_path)
        if not path.exists():
            raise ArchiveError(f"{self.archive_id}:{rel_path} not found")
        return path

    def remove(self, rel_path: str) -> int:
        """Delete an item (migration/purging only — DM-coordinated)."""
        self._require_online()
        path = self._full_path(rel_path)
        if not path.exists():
            raise ArchiveError(f"{self.archive_id}:{rel_path} not found")
        size = path.stat().st_size
        path.unlink()
        self.bytes_stored = max(0, self.bytes_stored - size)
        return size

    def list_items(self) -> list[str]:
        if not self.online:
            return []
        return sorted(
            str(path.relative_to(self.root))
            for path in self.root.rglob("*")
            if path.is_file()
        )

    def status(self) -> dict:
        """Archive status as tracked in the operational schema (§4.1)."""
        return {
            "archive_id": self.archive_id,
            "kind": self.kind.value,
            "online": self.online,
            "bytes_stored": self.bytes_stored,
            "capacity_left": self.capacity_left,
            "reads": self.reads,
            "writes": self.writes,
        }


class DiskArchive(Archive):
    """Always-online direct-access disk storage."""

    kind = ArchiveKind.DISK


class TapeArchive(Archive):
    """Near-line storage: items must be staged to disk before access.

    ``retrieve``/``local_path`` raise :class:`NotStaged` unless the item
    has been staged; ``stage_latency_s`` simulates robot mount time (kept
    tiny by default so tests stay fast, but measurable for benches).
    """

    kind = ArchiveKind.TAPE

    def __init__(self, archive_id: str, root, capacity_bytes=None, stage_latency_s: float = 0.0):
        super().__init__(archive_id, root, capacity_bytes)
        self.stage_latency_s = stage_latency_s
        self._staged: set[str] = set()
        self.stages = 0

    def stage(self, rel_path: str) -> None:
        self._require_online()
        if not self._full_path(rel_path).exists():
            raise ArchiveError(f"{self.archive_id}:{rel_path} not found")
        if rel_path in self._staged:
            return
        if self.stage_latency_s > 0:
            time.sleep(self.stage_latency_s)
        self._staged.add(rel_path)
        self.stages += 1

    def unstage(self, rel_path: str) -> None:
        self._staged.discard(rel_path)

    def is_staged(self, rel_path: str) -> bool:
        return rel_path in self._staged

    def retrieve(self, rel_path: str) -> bytes:
        if rel_path not in self._staged:
            raise NotStaged(f"{self.archive_id}:{rel_path} is on tape; stage it first")
        return super().retrieve(rel_path)

    def local_path(self, rel_path: str) -> Path:
        if rel_path not in self._staged:
            raise NotStaged(f"{self.archive_id}:{rel_path} is on tape; stage it first")
        return super().local_path(rel_path)


class RemoteArchive(Archive):
    """An NFS-linked remote archive: reachable but slower, can drop out."""

    kind = ArchiveKind.REMOTE

    def __init__(self, archive_id: str, root, capacity_bytes=None, access_latency_s: float = 0.0):
        super().__init__(archive_id, root, capacity_bytes)
        self.access_latency_s = access_latency_s

    def retrieve(self, rel_path: str) -> bytes:
        if self.access_latency_s > 0:
            time.sleep(self.access_latency_s)
        return super().retrieve(rel_path)
