"""Content checksums for archive integrity.

All file data in HEDC is read-only (paper §4.1); a checksum recorded at
store time lets migration, staging and backup/restore verify that no copy
step corrupted the bytes.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Union

_CHUNK = 1 << 20


def checksum_bytes(payload: bytes) -> str:
    """Hex SHA-256 of a byte string."""
    return hashlib.sha256(payload).hexdigest()


def checksum_file(path: Union[str, Path]) -> str:
    """Hex SHA-256 of a file, streamed."""
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(_CHUNK)
            if not chunk:
                break
            digest.update(chunk)
    return digest.hexdigest()


def verify_file(path: Union[str, Path], expected: str) -> bool:
    """True when the file's checksum matches ``expected``."""
    return checksum_file(path) == expected
