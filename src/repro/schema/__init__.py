"""The two-part HEDC database schema (paper §4.1).

``install_generic`` and ``install_rhessi`` are deliberately separate
entry points: the generic part carries no instrument knowledge, and the
domain part can be swapped for another instrument's schema without
touching it — the paper's central change-absorption mechanism.
"""

from .generic import GENERIC_SCHEMAS, install_generic
from .rhessi_schema import RHESSI_SCHEMAS, install_rhessi


def install_all(database) -> None:
    """Create the full schema: generic first, then the RHESSI part."""
    install_generic(database)
    install_rhessi(database)


__all__ = [
    "GENERIC_SCHEMAS",
    "RHESSI_SCHEMAS",
    "install_all",
    "install_generic",
    "install_rhessi",
]
