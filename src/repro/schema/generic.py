"""The generic half of the database schema (paper §4.1).

Three sections, independent of any instrument:

* administrative (3 tables) — configuration, available services and
  connected clients, user/group profiles;
* operational (4 tables) — logs/messages, data lineage, archive status,
  usage monitoring;
* location (4 tables) — archives, file references, tuple identifiers and
  download URLs used by dynamic name mapping (§4.3).

The generic part never references the domain part, so the RHESSI schema
can change (and has changed, per §3.1) without touching these tables.
"""

from __future__ import annotations

import time

from ..metadb import Column, ColumnType, ForeignKey, TableSchema

I = ColumnType.INTEGER
R = ColumnType.REAL
T = ColumnType.TEXT
B = ColumnType.BOOLEAN
TS = ColumnType.TIMESTAMP


def _now() -> float:
    return time.time()


# -- administrative section (3 tables) -------------------------------------


def admin_config() -> TableSchema:
    """Configuration parameters: schema lineage descriptions, database
    instances and partitions, refresh/purge rules, predefined queries."""
    return TableSchema(
        "admin_config",
        [
            Column("config_id", I, nullable=False),
            Column("section", T, nullable=False),   # schema|partition|rule|query|general
            Column("key", T, nullable=False),
            Column("value", T),
            Column("description", T),
            Column("updated_at", TS, default=_now),
        ],
        primary_key="config_id",
        unique=[("section", "key")],
        indexes=[("section",)],
    )


def admin_services() -> TableSchema:
    """Available services and connected clients (type, location, status)."""
    return TableSchema(
        "admin_services",
        [
            Column("service_id", I, nullable=False),
            Column("kind", T, nullable=False),      # dm|pl|idl|web|client
            Column("location", T, nullable=False),  # host:port or node name
            Column("prerequisites", T),
            Column("status", T, nullable=False, default="online"),
            Column("client_ip", T),
            Column("registered_at", TS, default=_now),
            Column("heartbeat_at", TS),
        ],
        primary_key="service_id",
        indexes=[("kind",)],
    )


def admin_users() -> TableSchema:
    """User and user-group profiles: access rights, sessions, status."""
    return TableSchema(
        "admin_users",
        [
            Column("user_id", I, nullable=False),
            Column("login", T, nullable=False),
            Column("password_hash", T, nullable=False),
            Column("user_group", T, nullable=False, default="guest"),
            Column("rights", T, nullable=False, default="browse"),  # csv of rights
            Column("status", T, nullable=False, default="active"),
            Column("quota_mb", R),
            Column("created_at", TS, default=_now),
            Column("last_login_at", TS),
        ],
        primary_key="user_id",
        unique=[("login",)],
    )


# -- operational section (4 tables) ------------------------------------------


def ops_log() -> TableSchema:
    """Logs and messages collected during operation."""
    return TableSchema(
        "ops_log",
        [
            Column("log_id", I, nullable=False),
            Column("at", TS, nullable=False, default=_now),
            Column("level", T, nullable=False, default="info"),
            Column("component", T, nullable=False),
            Column("message", T, nullable=False),
            Column("user_id", I),
        ],
        primary_key="log_id",
        indexes=[("at",), ("component",)],
        # §7-style analytics aggregate over the whole log; columnar copy
        # feeds the vectorized path (HEDC_COLUMNAR=0 disables).
        columnar=True,
    )


def ops_lineage() -> TableSchema:
    """Lineage of migrated or transformed data (incl. recalibration)."""
    return TableSchema(
        "ops_lineage",
        [
            Column("lineage_id", I, nullable=False),
            Column("at", TS, nullable=False, default=_now),
            Column("kind", T, nullable=False),      # migration|recalibration|derivation
            Column("source_ref", T, nullable=False),
            Column("target_ref", T, nullable=False),
            Column("detail", T),
        ],
        primary_key="lineage_id",
        indexes=[("kind",), ("source_ref",)],
    )


def ops_archives() -> TableSchema:
    """Status of archives: online, capacity left, type."""
    return TableSchema(
        "ops_archives",
        [
            Column("archive_id", T, nullable=False),
            Column("kind", T, nullable=False),       # disk|tape|remote
            Column("online", B, nullable=False, default=True),
            Column("bytes_stored", I, nullable=False, default=0),
            Column("capacity_left", I),
            Column("checked_at", TS, default=_now),
        ],
        primary_key="archive_id",
    )


def ops_usage() -> TableSchema:
    """Monitoring: usage statistics and audit trail."""
    return TableSchema(
        "ops_usage",
        [
            Column("usage_id", I, nullable=False),
            Column("at", TS, nullable=False, default=_now),
            Column("user_id", I),
            Column("operation", T, nullable=False),
            Column("target", T),
            Column("duration_ms", R),
        ],
        primary_key="usage_id",
        indexes=[("at",), ("operation",)],
        columnar=True,
    )


# -- location section (4 tables) ----------------------------------------------


def loc_archives() -> TableSchema:
    """Physical archives and their current root paths.

    Changing a row here relocates every file it hosts — dynamic name
    mapping resolves [path] through this table at request time (§4.3).
    """
    return TableSchema(
        "loc_archives",
        [
            Column("archive_id", T, nullable=False),
            Column("kind", T, nullable=False, default="disk"),
            Column("root_path", T, nullable=False),
            Column("online", B, nullable=False, default=True),
        ],
        primary_key="archive_id",
    )


def loc_files() -> TableSchema:
    """File references: maps item identifiers to archive-relative paths."""
    return TableSchema(
        "loc_files",
        [
            Column("file_id", I, nullable=False),
            Column("item_id", T, nullable=False),    # domain tuple's item identifier
            Column("archive_id", T, nullable=False),
            Column("rel_path", T, nullable=False),
            Column("role", T, nullable=False, default="data"),  # data|image|params|log
            Column("size_bytes", I),
            Column("checksum", T),
            Column("compressed", B, nullable=False, default=False),
        ],
        primary_key="file_id",
        unique=[("archive_id", "rel_path")],
        indexes=[("item_id",)],
        foreign_keys=[ForeignKey("archive_id", "loc_archives", "archive_id")],
    )


def loc_tuples() -> TableSchema:
    """Tuple identifiers: DBMS-location-independent references to tuples."""
    return TableSchema(
        "loc_tuples",
        [
            Column("tuple_ref", T, nullable=False),
            Column("item_id", T, nullable=False),
            Column("table_name", T, nullable=False),
            Column("database_name", T, nullable=False, default="metadb"),
        ],
        primary_key="tuple_ref",
        indexes=[("item_id",)],
    )


def loc_urls() -> TableSchema:
    """Download URLs, optionally via a transformation (e.g. gunzip)."""
    return TableSchema(
        "loc_urls",
        [
            Column("url_id", I, nullable=False),
            Column("item_id", T, nullable=False),
            Column("url", T, nullable=False),
            Column("transform", T),                  # e.g. "gunzip"
        ],
        primary_key="url_id",
        indexes=[("item_id",)],
    )


GENERIC_SCHEMAS = (
    admin_config,
    admin_services,
    admin_users,
    ops_log,
    ops_lineage,
    ops_archives,
    ops_usage,
    loc_archives,
    loc_files,
    loc_tuples,
    loc_urls,
)


def install_generic(database) -> None:
    """Create all generic tables (idempotent)."""
    for schema_factory in GENERIC_SCHEMAS:
        schema = schema_factory()
        if not database.has_table(schema.name):
            database.create_table(schema)
