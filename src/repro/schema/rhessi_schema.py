"""The domain-specific (RHESSI) half of the schema — seven tables.

HLE tuples carry ~25 attributes and ANA tuples ~45 (paper §4.1); every
domain tuple references the location tables through its ``item_id`` and
the user table through ``owner_id`` so access rights are enforceable.
This half may be replaced wholesale for another instrument without
touching the generic half.
"""

from __future__ import annotations

import time

from ..metadb import Column, ColumnType, ForeignKey, TableSchema

I = ColumnType.INTEGER
R = ColumnType.REAL
T = ColumnType.TEXT
B = ColumnType.BOOLEAN
TS = ColumnType.TIMESTAMP


def _now() -> float:
    return time.time()


def hle() -> TableSchema:
    """High Level Events: a time/energy window some user deems relevant."""
    return TableSchema(
        "hle",
        [
            Column("hle_id", I, nullable=False),
            Column("item_id", T, nullable=False),        # -> location tables
            Column("owner_id", I, nullable=False),       # -> admin_users
            Column("public", B, nullable=False, default=False),
            Column("kind", T),                           # user label, NOT a fixed type
            Column("title", T),
            Column("start_time", R, nullable=False),
            Column("end_time", R, nullable=False),
            Column("peak_time", R),
            Column("energy_low_kev", R),
            Column("energy_high_kev", R),
            Column("peak_rate", R),
            Column("total_counts", I),
            Column("mean_energy_kev", R),
            Column("significance", R),
            Column("position_x_arcsec", R),
            Column("position_y_arcsec", R),
            Column("goes_class", T),
            Column("detector_mask", T),                  # e.g. "111111111"
            Column("calibration_version", I, nullable=False, default=1),
            Column("source_unit", T),                    # raw data unit id
            Column("quality", R),
            Column("n_analyses", I, nullable=False, default=0),
            Column("created_at", TS, default=_now),
            Column("updated_at", TS),
            Column("notes", T),
        ],
        primary_key="hle_id",
        unique=[("item_id",)],
        indexes=[("start_time",), ("peak_rate",), ("kind",), ("owner_id",)],
        foreign_keys=[ForeignKey("owner_id", "admin_users", "user_id")],
        # Synoptic-catalog sweeps scan this table whole; keep a columnar
        # copy for the vectorized path (HEDC_COLUMNAR=0 disables).
        columnar=True,
    )


def ana() -> TableSchema:
    """Results of analyses: one tuple per analysis run (~45 attributes)."""
    return TableSchema(
        "ana",
        [
            Column("ana_id", I, nullable=False),
            Column("item_id", T, nullable=False),
            Column("hle_id", I, nullable=False),
            Column("owner_id", I, nullable=False),
            Column("public", B, nullable=False, default=False),
            Column("algorithm", T, nullable=False),       # imaging|lightcurve|...
            Column("algorithm_version", T, default="1.0"),
            Column("status", T, nullable=False, default="committed"),
            # time/energy selection
            Column("start_time", R),
            Column("end_time", R),
            Column("energy_low_kev", R),
            Column("energy_high_kev", R),
            Column("detector_mask", T),
            # imaging parameters
            Column("n_pixels", I),
            Column("extent_arcsec", R),
            Column("center_x_arcsec", R),
            Column("center_y_arcsec", R),
            Column("projection", T),
            # binning parameters
            Column("time_bin_s", R),
            Column("n_energy_bins", I),
            Column("n_bins", I),
            Column("attribute", T),
            # approximation / progressive processing
            Column("approximated", B, nullable=False, default=False),
            Column("detail_levels", I),
            Column("input_reduction", R),
            # resource accounting
            Column("input_bytes", I),
            Column("output_bytes", I),
            Column("n_photons_used", I),
            Column("cpu_seconds", R),
            Column("wall_seconds", R),
            Column("executed_on", T),                     # server|client node name
            Column("queries_issued", I),
            Column("edits_issued", I),
            # result summary
            Column("peak_value", R),
            Column("peak_x", R),
            Column("peak_y", R),
            Column("total_counts", I),
            Column("dynamic_range", R),
            Column("rms_error", R),
            Column("n_images", I, nullable=False, default=0),
            # provenance
            Column("calibration_version", I, nullable=False, default=1),
            Column("parent_ana_id", I),
            Column("request_id", T),
            Column("created_at", TS, default=_now),
            Column("committed_at", TS),
            Column("notes", T),
        ],
        primary_key="ana_id",
        unique=[("item_id",)],
        indexes=[("hle_id",), ("algorithm",), ("owner_id",), ("created_at",)],
        foreign_keys=[
            ForeignKey("hle_id", "hle", "hle_id"),
            ForeignKey("owner_id", "admin_users", "user_id"),
        ],
    )


def catalogs() -> TableSchema:
    """Catalogs group HLEs: standard, extended, and private workspaces."""
    return TableSchema(
        "catalogs",
        [
            Column("catalog_id", I, nullable=False),
            Column("item_id", T, nullable=False),
            Column("owner_id", I, nullable=False),
            Column("public", B, nullable=False, default=False),
            Column("name", T, nullable=False),
            Column("description", T),
            Column("criteria", T),                        # selection criteria text
            Column("n_members", I, nullable=False, default=0),
            Column("created_at", TS, default=_now),
        ],
        primary_key="catalog_id",
        unique=[("owner_id", "name")],
        foreign_keys=[ForeignKey("owner_id", "admin_users", "user_id")],
    )


def catalog_members() -> TableSchema:
    """Membership of HLEs in catalogs (many-to-many)."""
    return TableSchema(
        "catalog_members",
        [
            Column("member_id", I, nullable=False),
            Column("catalog_id", I, nullable=False),
            Column("hle_id", I, nullable=False),
            Column("added_at", TS, default=_now),
        ],
        primary_key="member_id",
        unique=[("catalog_id", "hle_id")],
        indexes=[("catalog_id",), ("hle_id",)],
        foreign_keys=[
            ForeignKey("catalog_id", "catalogs", "catalog_id"),
            ForeignKey("hle_id", "hle", "hle_id"),
        ],
    )


def raw_units() -> TableSchema:
    """Raw data units: the FITS+gzip files as delivered."""
    return TableSchema(
        "raw_units",
        [
            Column("unit_id", T, nullable=False),
            Column("item_id", T, nullable=False),
            Column("start_time", R, nullable=False),
            Column("end_time", R, nullable=False),
            Column("n_photons", I, nullable=False),
            Column("bytes_on_disk", I, nullable=False),
            Column("calibration_version", I, nullable=False, default=1),
            Column("superseded_by", T),                  # unit id of recalibrated copy
            Column("loaded_at", TS, default=_now),
        ],
        primary_key="unit_id",
        unique=[("item_id",)],
        indexes=[("start_time",)],
        columnar=True,
    )


def calibrations() -> TableSchema:
    """Published calibration versions (the versioning axis of §3.1)."""
    return TableSchema(
        "calibrations",
        [
            Column("version", I, nullable=False),
            Column("gains", T, nullable=False),          # csv of 9 floats
            Column("offsets", T, nullable=False),
            Column("note", T),
            Column("published_at", TS, default=_now),
        ],
        primary_key="version",
    )


def views() -> TableSchema:
    """Wavelet-compressed range-partitioned views over raw units (§3.4)."""
    return TableSchema(
        "views",
        [
            Column("view_id", I, nullable=False),
            Column("item_id", T, nullable=False),
            Column("unit_id", T, nullable=False),
            Column("signal", T, nullable=False),         # counts|energy
            Column("domain_start", R, nullable=False),
            Column("domain_step", R, nullable=False),
            Column("n_partitions", I, nullable=False),
            Column("encoded_bytes", I, nullable=False),
            Column("filter_name", T, nullable=False, default="cdf22"),
            Column("created_at", TS, default=_now),
        ],
        primary_key="view_id",
        unique=[("unit_id", "signal")],
        indexes=[("unit_id",)],
        foreign_keys=[ForeignKey("unit_id", "raw_units", "unit_id")],
    )


RHESSI_SCHEMAS = (hle, ana, catalogs, catalog_members, raw_units, calibrations, views)


def install_rhessi(database) -> None:
    """Create the seven domain tables (requires the generic part first)."""
    for schema_factory in RHESSI_SCHEMAS:
        schema = schema_factory()
        if not database.has_table(schema.name):
            database.create_table(schema)
