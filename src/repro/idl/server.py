"""IDL server lifecycle — what the PL's server manager manages.

The paper's IDL servers "provide only rudimentary job control, data
management, and error recovery functionality" (§2.3); the PL compensates
with start/stop/restart, sync/async invocation, timeouts and
resource-drain handling (§5.1).  This module provides exactly that raw
material: a server wrapping one interpreter session, with explicit
lifecycle states and failure modes the manager must cope with.
"""

from __future__ import annotations

import contextvars
import enum
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from ..obs import Observability, resolve as resolve_obs
from ..resil.faults import fire as fire_fault
from ..rhessi.photons import PhotonList
from .interpreter import IdlResourceError, IdlRuntimeError, Interpreter
from .ssw import SswLibrary


class ServerState(enum.Enum):
    STOPPED = "stopped"
    READY = "ready"
    BUSY = "busy"
    CRASHED = "crashed"


class IdlServerError(Exception):
    """Invocation against a server in the wrong state."""


@dataclass
class InvocationResult:
    """Outcome of one invocation."""

    ok: bool
    value: Any = None
    error: Optional[str] = None
    steps: int = 0
    printed: list[str] = field(default_factory=list)


class IdlServer:
    """One interpreter session with lifecycle management.

    ``fault_hook`` (tests, fault-injection benches) is called before each
    invocation; raising from it simulates an interpreter crash.
    """

    def __init__(
        self,
        name: str = "idl0",
        step_budget: int = 5_000_000,
        default_timeout_s: Optional[float] = None,
        fault_hook: Optional[Callable[[], None]] = None,
        on_start: Optional[Callable[[Interpreter], None]] = None,
        obs: Optional[Observability] = None,
    ):
        self.name = name
        self.step_budget = step_budget
        self.default_timeout_s = default_timeout_s
        self.fault_hook = fault_hook
        self.obs = resolve_obs(obs)
        #: Called with the fresh interpreter on every (re)start — the PL
        #: uses it to load published user routines into the session.
        self.on_start = on_start
        self.state = ServerState.STOPPED
        self._interpreter: Optional[Interpreter] = None
        self._ssw: Optional[SswLibrary] = None
        self._lock = threading.Lock()
        self.invocations = 0
        self.failures = 0
        self.restarts = 0

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        with self._lock:
            if self.state in (ServerState.READY, ServerState.BUSY):
                return
            self._interpreter = Interpreter(step_budget=self.step_budget)
            self._ssw = SswLibrary(self._interpreter)
            if self.on_start is not None:
                self.on_start(self._interpreter)
            self.state = ServerState.READY

    def stop(self) -> None:
        with self._lock:
            self._interpreter = None
            self._ssw = None
            self.state = ServerState.STOPPED

    def restart(self) -> None:
        self.stop()
        self.start()
        self.restarts += 1
        self.obs.count("idl.restarts", server=self.name)
        self.obs.event("info", "idl", "server.restarted",
                       f"IDL server {self.name!r} restarted",
                       server=self.name, restarts=self.restarts)

    @property
    def available(self) -> bool:
        return self.state is ServerState.READY

    # -- data binding -----------------------------------------------------------

    def bind_photons(self, photons: PhotonList) -> None:
        if self.state is not ServerState.READY:
            raise IdlServerError(f"server {self.name} is {self.state.value}")
        self._ssw.bind_photons(photons)

    # -- invocation ---------------------------------------------------------------

    def invoke(self, source: str, timeout_s: Optional[float] = None) -> InvocationResult:
        """Run IDL source synchronously.

        A resource-drain (step/deadline) failure marks the server CRASHED;
        an ordinary runtime error leaves it READY.
        """
        started = time.perf_counter()
        with self.obs.span("idl.invoke", server=self.name) as span:
            result = self._invoke(source, timeout_s)
            span.set_tag("ok", result.ok)
        self.obs.observe("idl.invoke_s", time.perf_counter() - started,
                         server=self.name)
        self.obs.count("idl.invocations", server=self.name)
        if not result.ok:
            self.obs.count("idl.failures", server=self.name)
        return result

    def _invoke(self, source: str, timeout_s: Optional[float]) -> InvocationResult:
        with self._lock:
            if self.state is not ServerState.READY:
                raise IdlServerError(f"server {self.name} is {self.state.value}")
            self.state = ServerState.BUSY
        interpreter = self._interpreter
        interpreter.deadline_s = timeout_s if timeout_s is not None else self.default_timeout_s
        interpreter.printed = []
        self.invocations += 1
        try:
            if self.fault_hook is not None:
                self.fault_hook()
            # idl.crash kills the session (generic except below -> CRASHED);
            # idl.hang is typically armed stall-only (error=None, delay_s).
            fire_fault("idl.crash")
            fire_fault("idl.hang")
            value = interpreter.run(source)
        except IdlResourceError as exc:
            self.failures += 1
            with self._lock:
                self.state = ServerState.CRASHED
            self.obs.event("error", "idl", "server.crashed",
                           f"IDL server {self.name!r} crashed: resource drain",
                           server=self.name, reason="resource_drain",
                           error=str(exc))
            return InvocationResult(
                ok=False, error=f"resource drain: {exc}", steps=interpreter.steps_used
            )
        except IdlRuntimeError as exc:
            self.failures += 1
            with self._lock:
                self.state = ServerState.READY
            return InvocationResult(
                ok=False,
                error=str(exc),
                steps=interpreter.steps_used,
                printed=list(interpreter.printed),
            )
        except Exception as exc:  # interpreter process "crash"
            self.failures += 1
            with self._lock:
                self.state = ServerState.CRASHED
            self.obs.event("error", "idl", "server.crashed",
                           f"IDL server {self.name!r} crashed: {exc}",
                           server=self.name, reason="crash", error=str(exc))
            return InvocationResult(ok=False, error=f"crashed: {exc}")
        with self._lock:
            self.state = ServerState.READY
        return InvocationResult(
            ok=True,
            value=value,
            steps=interpreter.steps_used,
            printed=list(interpreter.printed),
        )

    def invoke_async(
        self, source: str, timeout_s: Optional[float] = None
    ) -> "Future[InvocationResult]":
        """Run IDL source on a worker thread; returns a future.

        The caller's tracing context is carried into the worker, so the
        asynchronous ``idl.invoke`` span still nests under the request
        span that scheduled it.
        """
        future: Future[InvocationResult] = Future()
        ctx = contextvars.copy_context()

        def worker() -> None:
            try:
                future.set_result(ctx.run(self.invoke, source, timeout_s=timeout_s))
            except Exception as exc:
                future.set_exception(exc)

        thread = threading.Thread(target=worker, name=f"{self.name}-async", daemon=True)
        thread.start()
        return future
