"""The simulated Solar SoftWare (SSW) library.

SSW is the analysis package distributed with RHESSI data (paper §2.1).
Here it is the bridge between the IDL interpreter and the numpy analysis
kernels: :class:`SswLibrary` binds a photon list into an interpreter
session and registers ``hsi_*`` builtins over it, plus a small library of
routines written *in the IDL language itself* — demonstrating the paper's
point that users submit their own analysis routines for inclusion
(§3.3).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..analysis import back_projection, histogram, lightcurve, spectrogram
from ..rhessi.photons import PhotonList
from .interpreter import IdlRuntimeError, Interpreter

#: Routines shipped as IDL source — loaded into every server session.
SSW_IDL_SOURCE = """
; Solar SoftWare (simulated) - IDL-level helper routines.

function flare_hardness, energies
  ; ratio of counts above 25 keV to counts below - crude hardness proxy
  hi = n_elements(where(energies ge 25.0))
  lo = n_elements(where(energies lt 25.0))
  if lo eq 0 then return, 0.0
  return, float(hi) / float(lo)
end

function peak_rate, rates
  return, max(rates)
end

function background_subtract, rates, width
  bg = smooth(rates, width)
  return, rates - bg
end

pro summarize_counts, counts
  print, 'total counts', total(counts)
  print, 'peak', max(counts)
end
"""


class SswLibrary:
    """Binds photon data into an interpreter and registers analysis builtins."""

    def __init__(self, interpreter: Interpreter):
        self.interpreter = interpreter
        self._photons: Optional[PhotonList] = None
        self._register_builtins()
        interpreter.run(SSW_IDL_SOURCE)

    def bind_photons(self, photons: PhotonList) -> None:
        """Make ``photons`` the current data set of the session."""
        self._photons = photons
        self.interpreter.globals["ph_times"] = photons.times
        self.interpreter.globals["ph_energies"] = photons.energies.astype(np.float64)
        self.interpreter.globals["ph_detectors"] = photons.detectors.astype(np.int64)

    def _require_photons(self) -> PhotonList:
        if self._photons is None:
            raise IdlRuntimeError("no photon data bound; call bind_photons first")
        return self._photons

    def _register_builtins(self) -> None:
        interpreter = self.interpreter

        def hsi_lightcurve(bin_width=4.0):
            photons = self._require_photons()
            curve = lightcurve(photons, bin_width_s=float(bin_width))
            return curve.total_rate()

        def hsi_spectrogram(time_bin=4.0, n_energy_bins=32):
            photons = self._require_photons()
            result = spectrogram(
                photons, time_bin_s=float(time_bin), n_energy_bins=int(n_energy_bins)
            )
            return result.counts

        def hsi_histogram(attribute="energy", n_bins=64):
            photons = self._require_photons()
            result = histogram(photons, attribute=str(attribute), n_bins=int(n_bins))
            return result.counts

        def hsi_image(n_pixels=32, extent=2048.0, center_x=0.0, center_y=0.0):
            photons = self._require_photons()
            result = back_projection(
                photons,
                n_pixels=int(n_pixels),
                extent_arcsec=float(extent),
                center_arcsec=(float(center_x), float(center_y)),
                source_position=(float(center_x), float(center_y)),
            )
            return result.image

        def hsi_select_energy(low, high):
            photons = self._require_photons()
            self.bind_photons(photons.select_energy(float(low), float(high)))
            return len(self._photons)

        def hsi_select_time(start, end):
            photons = self._require_photons()
            self.bind_photons(photons.select_time(float(start), float(end)))
            return len(self._photons)

        interpreter.register_builtin("hsi_lightcurve", hsi_lightcurve)
        interpreter.register_builtin("hsi_spectrogram", hsi_spectrogram)
        interpreter.register_builtin("hsi_histogram", hsi_histogram)
        interpreter.register_builtin("hsi_image", hsi_image)
        interpreter.register_builtin("hsi_select_energy", hsi_select_energy)
        interpreter.register_builtin("hsi_select_time", hsi_select_time)
