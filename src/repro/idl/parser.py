"""Recursive-descent parser for the IDL-like language."""

from __future__ import annotations

from typing import Optional

from .ast_nodes import (
    ArrayLiteral,
    Assign,
    BinaryOp,
    Call,
    For,
    If,
    Index,
    IndexAssign,
    Literal,
    Node,
    ProcCall,
    ProcedureDef,
    Return,
    UnaryOp,
    Variable,
    While,
)
from .lexer import IdlSyntaxError, Token, tokenize


class Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._position = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._position]

    def _next(self) -> Token:
        token = self._tokens[self._position]
        if token.kind != "EOF":
            self._position += 1
        return token

    def _accept(self, kind: str, value=None) -> Optional[Token]:
        token = self._peek()
        if token.kind == kind and (value is None or token.value == value):
            return self._next()
        return None

    def _expect(self, kind: str, value=None) -> Token:
        token = self._accept(kind, value)
        if token is None:
            actual = self._peek()
            raise IdlSyntaxError(
                f"expected {value or kind}, got {actual.value!r}", actual.line
            )
        return token

    def _skip_newlines(self) -> None:
        while self._accept("NEWLINE"):
            pass

    # -- program ------------------------------------------------------------

    def parse_program(self) -> list[Node]:
        """Top level: procedure/function definitions and loose statements."""
        nodes: list[Node] = []
        self._skip_newlines()
        while self._peek().kind != "EOF":
            token = self._peek()
            if token.kind == "KEYWORD" and token.value in ("pro", "function"):
                nodes.append(self._procedure_def())
            else:
                nodes.append(self._statement())
            self._skip_newlines()
        return nodes

    def _procedure_def(self) -> ProcedureDef:
        keyword = self._next()
        is_function = keyword.value == "function"
        name = self._expect("NAME").value
        params: list[str] = []
        while self._accept("OP", ","):
            params.append(self._expect("NAME").value)
        self._expect("NEWLINE")
        body = self._block_until({"end"})
        self._expect("KEYWORD", "end")
        return ProcedureDef(
            line=keyword.line,
            name=name,
            params=tuple(params),
            body=tuple(body),
            is_function=is_function,
        )

    def _block_until(self, terminators: set[str]) -> list[Node]:
        body: list[Node] = []
        self._skip_newlines()
        while True:
            token = self._peek()
            if token.kind == "EOF":
                raise IdlSyntaxError(f"missing {'/'.join(sorted(terminators))}", token.line)
            if token.kind == "KEYWORD" and token.value in terminators:
                return body
            body.append(self._statement())
            self._skip_newlines()

    # -- statements ----------------------------------------------------------

    def _statement(self) -> Node:
        token = self._peek()
        if token.kind == "KEYWORD":
            if token.value == "if":
                return self._if()
            if token.value == "for":
                return self._for()
            if token.value == "while":
                return self._while()
            if token.value == "return":
                self._next()
                value = None
                if self._accept("OP", ","):
                    value = self._expression()
                return Return(line=token.line, value=value)
            if token.value == "not":
                return self._expression()
            raise IdlSyntaxError(f"unexpected keyword {token.value!r}", token.line)
        if token.kind == "NAME":
            return self._assignment_or_call()
        # Bare expression statement: a literal, parenthesised expression,
        # unary minus or array literal at statement position.
        return self._expression()

    def _assignment_or_call(self) -> Node:
        name_token = self._expect("NAME")
        name = name_token.value
        if self._peek().kind == "OP" and self._peek().value == "(":
            # Bare expression statement: ``total(y)`` — rewind and parse
            # the whole thing as an expression.
            self._position -= 1
            return self._expression()
        if self._accept("OP", "="):
            value = self._expression()
            return Assign(line=name_token.line, name=name, value=value)
        if self._peek().kind == "OP" and self._peek().value == "[":
            # Indexed assignment ``x[i] = v``, or an indexing expression
            # used as a statement (``x[1]``) — decide after the bracket.
            saved = self._position
            self._next()
            index = self._expression()
            if self._peek().kind == "OP" and self._peek().value == ":":
                # A slice can never be assigned to in this dialect; it is
                # an expression statement.
                self._position = saved - 1
                return self._expression()
            self._expect("OP", "]")
            if self._accept("OP", "="):
                value = self._expression()
                return IndexAssign(
                    line=name_token.line, name=name, index=index, value=value
                )
            self._position = saved - 1  # rewind to the NAME
            return self._expression()
        token = self._peek()
        if token.kind == "OP" and token.value in ("+", "-", "*", "/", "^", "##"):
            # Expression statement starting with a variable: ``m ## v``.
            self._position -= 1
            return self._expression()
        if token.kind == "KEYWORD" and token.value in (
            "eq", "ne", "lt", "le", "gt", "ge", "and", "or", "mod",
        ):
            self._position -= 1
            return self._expression()
        # Procedure call: name, arg1, arg2 ...  (or bare name)
        args: list[Node] = []
        while self._accept("OP", ","):
            args.append(self._expression())
        return ProcCall(line=name_token.line, name=name, args=tuple(args))

    def _statement_or_block(self) -> tuple:
        """A single statement, or BEGIN ... END block."""
        if self._accept("KEYWORD", "begin"):
            self._skip_newlines()
            body = self._block_until({"end", "endif", "endelse", "endfor", "endwhile"})
            self._next()  # consume the terminator
            return tuple(body)
        return (self._statement(),)

    def _if(self) -> If:
        token = self._expect("KEYWORD", "if")
        condition = self._expression()
        self._expect("KEYWORD", "then")
        then_body = self._statement_or_block()
        else_body: tuple = ()
        self._skip_newlines()
        if self._accept("KEYWORD", "else"):
            else_body = self._statement_or_block()
        return If(line=token.line, condition=condition, then_body=then_body, else_body=else_body)

    def _for(self) -> For:
        token = self._expect("KEYWORD", "for")
        variable = self._expect("NAME").value
        self._expect("OP", "=")
        start = self._expression()
        self._expect("OP", ",")
        stop = self._expression()
        self._expect("KEYWORD", "do")
        body = self._statement_or_block()
        return For(line=token.line, variable=variable, start=start, stop=stop, body=body)

    def _while(self) -> While:
        token = self._expect("KEYWORD", "while")
        condition = self._expression()
        self._expect("KEYWORD", "do")
        body = self._statement_or_block()
        return While(line=token.line, condition=condition, body=body)

    # -- expressions (precedence climbing) -------------------------------------

    def _expression(self) -> Node:
        return self._or()

    def _or(self) -> Node:
        left = self._and()
        while True:
            token = self._accept("KEYWORD", "or")
            if token is None:
                return left
            left = BinaryOp(line=token.line, op="or", left=left, right=self._and())

    def _and(self) -> Node:
        left = self._not()
        while True:
            token = self._accept("KEYWORD", "and")
            if token is None:
                return left
            left = BinaryOp(line=token.line, op="and", left=left, right=self._not())

    def _not(self) -> Node:
        token = self._accept("KEYWORD", "not")
        if token is not None:
            return UnaryOp(line=token.line, op="not", operand=self._not())
        return self._comparison()

    _COMPARISONS = {"eq": "eq", "ne": "ne", "lt": "lt", "le": "le", "gt": "gt", "ge": "ge"}

    def _comparison(self) -> Node:
        left = self._additive()
        token = self._peek()
        if token.kind == "KEYWORD" and token.value in self._COMPARISONS:
            self._next()
            right = self._additive()
            return BinaryOp(line=token.line, op=token.value, left=left, right=right)
        return left

    def _additive(self) -> Node:
        left = self._multiplicative()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value in ("+", "-"):
                self._next()
                left = BinaryOp(
                    line=token.line, op=token.value, left=left, right=self._multiplicative()
                )
            else:
                return left

    def _multiplicative(self) -> Node:
        left = self._unary()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value in ("*", "/", "##"):
                self._next()
                left = BinaryOp(line=token.line, op=token.value, left=left, right=self._unary())
            elif token.kind == "KEYWORD" and token.value == "mod":
                self._next()
                left = BinaryOp(line=token.line, op="mod", left=left, right=self._unary())
            else:
                return left

    def _unary(self) -> Node:
        token = self._peek()
        if token.kind == "OP" and token.value == "-":
            self._next()
            return UnaryOp(line=token.line, op="-", operand=self._unary())
        if token.kind == "OP" and token.value == "+":
            self._next()
            return self._unary()
        return self._power()

    def _power(self) -> Node:
        base = self._postfix()
        token = self._peek()
        if token.kind == "OP" and token.value == "^":
            self._next()
            return BinaryOp(line=token.line, op="^", left=base, right=self._unary())
        return base

    def _postfix(self) -> Node:
        node = self._primary()
        while True:
            token = self._peek()
            if token.kind == "OP" and token.value == "[":
                self._next()
                start = self._expression()
                if self._accept("OP", ":"):
                    stop = self._expression()
                    self._expect("OP", "]")
                    node = Index(line=token.line, target=node, start=start, stop=stop, is_slice=True)
                else:
                    self._expect("OP", "]")
                    node = Index(line=token.line, target=node, start=start)
            else:
                return node

    def _primary(self) -> Node:
        token = self._next()
        if token.kind == "NUMBER" or token.kind == "STRING":
            return Literal(line=token.line, value=token.value)
        if token.kind == "OP" and token.value == "(":
            inner = self._expression()
            self._expect("OP", ")")
            return inner
        if token.kind == "OP" and token.value == "[":
            elements = [self._expression()]
            while self._accept("OP", ","):
                elements.append(self._expression())
            self._expect("OP", "]")
            return ArrayLiteral(line=token.line, elements=tuple(elements))
        if token.kind == "NAME":
            if self._peek().kind == "OP" and self._peek().value == "(":
                self._next()
                args: list[Node] = []
                if not (self._peek().kind == "OP" and self._peek().value == ")"):
                    args.append(self._expression())
                    while self._accept("OP", ","):
                        args.append(self._expression())
                self._expect("OP", ")")
                return Call(line=token.line, name=token.value, args=tuple(args))
            return Variable(line=token.line, name=token.value)
        raise IdlSyntaxError(f"unexpected token {token.value!r}", token.line)


def parse(source: str) -> list[Node]:
    """Parse IDL source into a list of top-level nodes."""
    return Parser(tokenize(source)).parse_program()
