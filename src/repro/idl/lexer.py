"""Lexer for the miniature IDL-like analysis language.

The Solar SoftWare routines HEDC runs are IDL programs (paper §2.1); the
PL treats IDL as an opaque interpreter with start/stop/timeout semantics.
We implement a compact interpreted language with IDL's flavour — case-
insensitive keywords, ``PRO``/``FUNCTION`` units, comma-separated
procedure calls, ``;`` comments — so the PL manages a *real* interpreter
with real lifecycle behaviour rather than a stub.
"""

from __future__ import annotations

import re
from dataclasses import dataclass


class IdlSyntaxError(Exception):
    """Lexical or syntactic error in IDL source."""

    def __init__(self, message: str, line: int = 0):
        super().__init__(f"line {line}: {message}" if line else message)
        self.line = line


@dataclass(frozen=True)
class Token:
    kind: str    # NUMBER STRING NAME KEYWORD OP NEWLINE EOF
    value: object
    line: int


KEYWORDS = {
    "pro", "function", "end", "endif", "endelse", "endfor", "endwhile",
    "if", "then", "else", "for", "do", "while", "begin", "return",
    "and", "or", "not", "eq", "ne", "lt", "le", "gt", "ge", "mod",
}

_TOKEN_RE = re.compile(
    r"""
      (?P<comment>;[^\n]*)
    | (?P<number>\d+\.\d*(?:[eEdD][+-]?\d+)?|\.\d+(?:[eEdD][+-]?\d+)?|\d+(?:[eEdD][+-]?\d+)?)
    | (?P<string>'(?:[^'\n]|'')*'|"(?:[^"\n]|"")*")
    | (?P<name>[A-Za-z_][A-Za-z_0-9$]*)
    | (?P<op>\#\#|\^|\*|\+|-|/|=|<|>|\(|\)|\[|\]|,|&|:)
    | (?P<newline>\n)
    | (?P<space>[ \t\r]+)
    """,
    re.VERBOSE,
)


def tokenize(source: str) -> list[Token]:
    """Tokenize IDL source; ``&`` and newlines both end statements."""
    tokens: list[Token] = []
    line = 1
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if not match:
            raise IdlSyntaxError(f"unexpected character {source[position]!r}", line)
        position = match.end()
        if match.group("space") or match.group("comment"):
            continue
        if match.group("newline"):
            if tokens and tokens[-1].kind != "NEWLINE":
                tokens.append(Token("NEWLINE", "\n", line))
            line += 1
            continue
        if match.group("number") is not None:
            raw = match.group("number").lower().replace("d", "e")
            value = float(raw) if ("." in raw or "e" in raw) else int(raw)
            tokens.append(Token("NUMBER", value, line))
            continue
        if match.group("string") is not None:
            raw = match.group("string")
            quote = raw[0]
            inner = raw[1:-1].replace(quote * 2, quote)
            tokens.append(Token("STRING", inner, line))
            continue
        if match.group("name") is not None:
            name = match.group("name").lower()
            if name in KEYWORDS:
                tokens.append(Token("KEYWORD", name, line))
            else:
                tokens.append(Token("NAME", name, line))
            continue
        operator = match.group("op")
        if operator == "&":
            if tokens and tokens[-1].kind != "NEWLINE":
                tokens.append(Token("NEWLINE", "&", line))
            continue
        tokens.append(Token("OP", operator, line))
    if tokens and tokens[-1].kind != "NEWLINE":
        tokens.append(Token("NEWLINE", "\n", line))
    tokens.append(Token("EOF", None, line))
    return tokens
