"""Evaluator for the IDL-like language.

Arrays are numpy arrays; scalars are Python ints/floats/strings.  A step
budget bounds runaway programs (the PL's "resource drain" error handling,
paper §5.1): every statement and loop iteration costs a step, and
exceeding the budget raises :class:`IdlResourceError`, which the IDL
server manager maps to a restart.
"""

from __future__ import annotations

import math
import time
from typing import Any, Callable, Optional

import numpy as np

from .ast_nodes import (
    ArrayLiteral,
    Assign,
    BinaryOp,
    Call,
    For,
    If,
    Index,
    IndexAssign,
    Literal,
    Node,
    ProcCall,
    ProcedureDef,
    Return,
    UnaryOp,
    Variable,
    While,
)
from .parser import parse


class IdlRuntimeError(Exception):
    """Error raised during IDL evaluation."""


class IdlResourceError(IdlRuntimeError):
    """Step budget or wall-clock deadline exceeded."""


class _ReturnSignal(Exception):
    def __init__(self, value: Any):
        self.value = value


def _idl_truth(value: Any) -> bool:
    if isinstance(value, np.ndarray):
        return bool(value.all()) if value.size else False
    return bool(value)


class Interpreter:
    """One IDL session: variables, user procedures, builtins."""

    def __init__(self, step_budget: int = 2_000_000, deadline_s: Optional[float] = None):
        self.globals: dict[str, Any] = {}
        self.procedures: dict[str, ProcedureDef] = {}
        self.builtins: dict[str, Callable] = {}
        self.printed: list[str] = []
        self.step_budget = step_budget
        self.deadline_s = deadline_s
        self._steps = 0
        self._deadline_at: Optional[float] = None
        self._install_standard_builtins()

    # -- public API -------------------------------------------------------

    def register_builtin(self, name: str, function: Callable) -> None:
        """Expose a Python callable as an IDL function/procedure."""
        self.builtins[name.lower()] = function

    def run(self, source: str) -> Any:
        """Parse and execute source; returns the last expression value."""
        self._steps = 0
        if self.deadline_s is not None:
            self._deadline_at = time.monotonic() + self.deadline_s
        nodes = parse(source)
        result: Any = None
        for node in nodes:
            if isinstance(node, ProcedureDef):
                self.procedures[node.name] = node
            else:
                result = self._exec(node, self.globals)
        return result

    def call(self, name: str, *args: Any) -> Any:
        """Call a defined function/procedure or builtin directly."""
        self._steps = 0
        if self.deadline_s is not None:
            self._deadline_at = time.monotonic() + self.deadline_s
        return self._invoke(name.lower(), list(args), line=0)

    @property
    def steps_used(self) -> int:
        return self._steps

    # -- execution ----------------------------------------------------------

    def _tick(self, line: int) -> None:
        self._steps += 1
        if self._steps > self.step_budget:
            raise IdlResourceError(f"step budget exhausted at line {line}")
        if self._deadline_at is not None and self._steps % 1024 == 0:
            if time.monotonic() > self._deadline_at:
                raise IdlResourceError(f"deadline exceeded at line {line}")

    def _exec(self, node: Node, env: dict[str, Any]) -> Any:
        self._tick(node.line)
        if isinstance(node, Assign):
            env[node.name] = self._eval(node.value, env)
            return None
        if isinstance(node, IndexAssign):
            target = env.get(node.name)
            if not isinstance(target, np.ndarray):
                raise IdlRuntimeError(f"cannot index non-array {node.name!r}")
            index = int(self._eval(node.index, env))
            target[index] = self._eval(node.value, env)
            return None
        if isinstance(node, ProcCall):
            if (
                not node.args
                and node.name not in self.procedures
                and node.name not in self.builtins
            ):
                # A bare variable used as an expression statement.
                if node.name in env:
                    return env[node.name]
                if node.name in self.globals:
                    return self.globals[node.name]
            args = [self._eval(arg, env) for arg in node.args]
            if node.name == "print":
                text = " ".join(self._format(arg) for arg in args)
                self.printed.append(text)
                return None
            return self._invoke(node.name, args, node.line)
        if isinstance(node, If):
            branch = node.then_body if _idl_truth(self._eval(node.condition, env)) else node.else_body
            result = None
            for statement in branch:
                result = self._exec(statement, env)
            return result
        if isinstance(node, For):
            start = int(self._eval(node.start, env))
            stop = int(self._eval(node.stop, env))
            result = None
            for loop_value in range(start, stop + 1):  # IDL FOR is inclusive
                self._tick(node.line)
                env[node.variable] = loop_value
                for statement in node.body:
                    result = self._exec(statement, env)
            return result
        if isinstance(node, While):
            result = None
            while _idl_truth(self._eval(node.condition, env)):
                self._tick(node.line)
                for statement in node.body:
                    result = self._exec(statement, env)
            return result
        if isinstance(node, Return):
            raise _ReturnSignal(None if node.value is None else self._eval(node.value, env))
        # Expression used as a statement.
        return self._eval(node, env)

    def _invoke(self, name: str, args: list[Any], line: int) -> Any:
        if name in self.procedures:
            procedure = self.procedures[name]
            if len(args) > len(procedure.params):
                raise IdlRuntimeError(
                    f"{name} takes {len(procedure.params)} args, got {len(args)}"
                )
            local_env: dict[str, Any] = dict(zip(procedure.params, args))
            try:
                for statement in procedure.body:
                    self._exec(statement, local_env)
            except _ReturnSignal as signal:
                return signal.value
            return None
        if name in self.builtins:
            try:
                return self.builtins[name](*args)
            except (IdlRuntimeError, IdlResourceError):
                raise
            except Exception as exc:
                raise IdlRuntimeError(f"builtin {name!r} failed: {exc}") from exc
        raise IdlRuntimeError(f"undefined procedure or function {name!r} (line {line})")

    # -- evaluation ----------------------------------------------------------

    def _eval(self, node: Node, env: dict[str, Any]) -> Any:
        self._tick(node.line)
        if isinstance(node, Literal):
            return node.value
        if isinstance(node, Variable):
            if node.name in env:
                return env[node.name]
            if node.name in self.globals:
                return self.globals[node.name]
            raise IdlRuntimeError(f"undefined variable {node.name!r} (line {node.line})")
        if isinstance(node, ArrayLiteral):
            return np.array([self._eval(element, env) for element in node.elements])
        if isinstance(node, UnaryOp):
            value = self._eval(node.operand, env)
            if node.op == "-":
                return -value
            if node.op == "not":
                return not _idl_truth(value)
            raise IdlRuntimeError(f"unknown unary op {node.op!r}")
        if isinstance(node, BinaryOp):
            return self._binary(node, env)
        if isinstance(node, Call):
            # IDL overloads f(x): builtin/function call, else array index.
            if node.name in self.procedures or node.name in self.builtins:
                args = [self._eval(arg, env) for arg in node.args]
                return self._invoke(node.name, args, node.line)
            target = env.get(node.name, self.globals.get(node.name))
            if isinstance(target, np.ndarray) and len(node.args) == 1:
                return target[int(self._eval(node.args[0], env))]
            raise IdlRuntimeError(f"undefined function {node.name!r} (line {node.line})")
        if isinstance(node, Index):
            target = self._eval(node.target, env)
            if node.is_slice:
                start = int(self._eval(node.start, env))
                stop = int(self._eval(node.stop, env))
                return target[start:stop + 1]  # IDL slices are inclusive
            index = self._eval(node.start, env)
            if isinstance(index, np.ndarray):
                return target[index.astype(int)]
            return target[int(index)]
        raise IdlRuntimeError(f"cannot evaluate {type(node).__name__}")

    def _binary(self, node: BinaryOp, env: dict[str, Any]) -> Any:
        left = self._eval(node.left, env)
        op = node.op
        if op == "and":
            if not _idl_truth(left):
                return False
            return _idl_truth(self._eval(node.right, env))
        if op == "or":
            if _idl_truth(left):
                return True
            return _idl_truth(self._eval(node.right, env))
        right = self._eval(node.right, env)
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                # IDL integer division truncates.
                if isinstance(left, (int, np.integer)) and isinstance(right, (int, np.integer)):
                    return int(left // right)
                return left / right
            if op == "mod":
                return left % right
            if op == "^":
                return left ** right
            if op == "##":
                return np.matmul(left, right)
            if op == "eq":
                return left == right
            if op == "ne":
                return left != right
            if op == "lt":
                return left < right
            if op == "le":
                return left <= right
            if op == "gt":
                return left > right
            if op == "ge":
                return left >= right
        except (ZeroDivisionError, ValueError, TypeError) as exc:
            raise IdlRuntimeError(f"arithmetic error at line {node.line}: {exc}") from exc
        raise IdlRuntimeError(f"unknown operator {op!r}")

    # -- builtins -------------------------------------------------------------

    def _format(self, value: Any) -> str:
        if isinstance(value, float):
            return f"{value:g}"
        if isinstance(value, np.ndarray):
            return np.array2string(value, precision=4, threshold=8)
        return str(value)

    def _install_standard_builtins(self) -> None:
        def _where(condition):
            condition = np.asarray(condition)
            return np.nonzero(condition)[0]

        def _smooth(values, width):
            values = np.asarray(values, dtype=float)
            width = max(1, int(width))
            kernel = np.ones(width) / width
            return np.convolve(values, kernel, mode="same")

        def _histogram(values, nbins=10):
            counts, _edges = np.histogram(np.asarray(values, dtype=float), bins=int(nbins))
            return counts

        standard: dict[str, Callable] = {
            "indgen": lambda n: np.arange(int(n)),
            "findgen": lambda n: np.arange(int(n), dtype=float),
            "fltarr": lambda n: np.zeros(int(n)),
            "n_elements": lambda x: int(np.size(x)),
            "total": lambda x: float(np.sum(x)),
            "min": lambda x: float(np.min(x)),
            "max": lambda x: float(np.max(x)),
            "mean": lambda x: float(np.mean(x)),
            "stddev": lambda x: float(np.std(x, ddof=1)) if np.size(x) > 1 else 0.0,
            "median": lambda x: float(np.median(x)),
            "sqrt": np.sqrt,
            "abs": np.abs,
            "exp": np.exp,
            "alog": np.log,
            "alog10": np.log10,
            "sin": np.sin,
            "cos": np.cos,
            "tan": np.tan,
            "atan": np.arctan,
            "floor": lambda x: np.floor(x) if isinstance(x, np.ndarray) else math.floor(x),
            "ceil": lambda x: np.ceil(x) if isinstance(x, np.ndarray) else math.ceil(x),
            "round": lambda x: np.round(x) if isinstance(x, np.ndarray) else round(x),
            "fix": lambda x: x.astype(int) if isinstance(x, np.ndarray) else int(x),
            "float": lambda x: x.astype(float) if isinstance(x, np.ndarray) else float(x),
            "sort": lambda x: np.argsort(x),
            "reverse": lambda x: np.asarray(x)[::-1],
            "where": _where,
            "smooth": _smooth,
            "histogram": _histogram,
            "string": lambda x: self._format(x),
            "strlen": lambda s: len(s),
            "strupcase": lambda s: s.upper(),
            "strlowcase": lambda s: s.lower(),
            "systime": lambda: time.time(),
        }
        self.builtins.update(standard)
