"""A miniature IDL-like interpreted language and server.

Stands in for IDL 5.4 + the Solar SoftWare tree: a real lexer/parser/
evaluator over numpy arrays, with ``hsi_*`` analysis builtins and a
lifecycle-managed server wrapper the Processing Logic controls.
"""

from .interpreter import IdlResourceError, IdlRuntimeError, Interpreter
from .lexer import IdlSyntaxError, Token, tokenize
from .parser import parse
from .server import IdlServer, IdlServerError, InvocationResult, ServerState
from .ssw import SSW_IDL_SOURCE, SswLibrary

__all__ = [
    "IdlResourceError",
    "IdlRuntimeError",
    "IdlServer",
    "IdlServerError",
    "IdlSyntaxError",
    "Interpreter",
    "InvocationResult",
    "SSW_IDL_SOURCE",
    "ServerState",
    "SswLibrary",
    "Token",
    "parse",
    "tokenize",
]
