"""AST node definitions for the IDL-like language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence


@dataclass(frozen=True)
class Node:
    line: int = 0


# -- expressions ----------------------------------------------------------


@dataclass(frozen=True)
class Literal(Node):
    value: Any = None


@dataclass(frozen=True)
class Variable(Node):
    name: str = ""


@dataclass(frozen=True)
class ArrayLiteral(Node):
    elements: tuple = ()


@dataclass(frozen=True)
class BinaryOp(Node):
    op: str = ""
    left: Node = None
    right: Node = None


@dataclass(frozen=True)
class UnaryOp(Node):
    op: str = ""
    operand: Node = None


@dataclass(frozen=True)
class Call(Node):
    """Function call ``name(args)``; also array indexing in IDL syntax
    (``x(3)``), disambiguated at evaluation time."""

    name: str = ""
    args: tuple = ()


@dataclass(frozen=True)
class Index(Node):
    """Bracket indexing ``x[i]`` or slicing ``x[a:b]``."""

    target: Node = None
    start: Optional[Node] = None
    stop: Optional[Node] = None
    is_slice: bool = False


# -- statements -----------------------------------------------------------


@dataclass(frozen=True)
class Assign(Node):
    name: str = ""
    value: Node = None


@dataclass(frozen=True)
class IndexAssign(Node):
    name: str = ""
    index: Node = None
    value: Node = None


@dataclass(frozen=True)
class ProcCall(Node):
    """Procedure-style call: ``print, x, y`` or ``my_pro, a``."""

    name: str = ""
    args: tuple = ()


@dataclass(frozen=True)
class If(Node):
    condition: Node = None
    then_body: tuple = ()
    else_body: tuple = ()


@dataclass(frozen=True)
class For(Node):
    variable: str = ""
    start: Node = None
    stop: Node = None
    body: tuple = ()


@dataclass(frozen=True)
class While(Node):
    condition: Node = None
    body: tuple = ()


@dataclass(frozen=True)
class Return(Node):
    value: Optional[Node] = None


@dataclass(frozen=True)
class ProcedureDef(Node):
    name: str = ""
    params: tuple = ()
    body: tuple = ()
    is_function: bool = False
