"""The HEDC repository facade — the library's primary public API."""

from .hedc import Hedc, IngestReport

__all__ = ["Hedc", "IngestReport"]
