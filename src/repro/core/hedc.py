"""The HEDC repository facade: all three tiers wired together.

:class:`Hedc` is the public entry point a downstream user adopts: it
assembles the resource tier (metadata database + file archives), the
application-logic tier (DM + PL) and the presentation tier (web server),
and offers the high-level operations of paper §2.2 — ingest telemetry,
browse, analyze, share.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional, Sequence, Union

from ..dm import DataManager, DmRouter
from ..filestore import DiskArchive, StorageManager, TapeArchive
from ..metadb import Comparison, Database, Select
from ..obs import Observability
from ..pl import (
    AnalysisRequest,
    Frontend,
    GlobalDirectory,
    IdlServerManager,
    Phase,
    RoutineLibrary,
    UserRoutineStrategy,
)
from ..rhessi import (
    ObservationPlan,
    TelemetryGenerator,
    package_units,
    standard_day_plan,
)
from ..security import User
from ..synoptic import SynopticSearch, standard_archive_set
from ..viz import CatalogArray
from ..web import ThinClient, WebServer


@dataclass
class IngestReport:
    """Outcome of one telemetry ingest."""

    n_photons: int
    n_units: int
    n_events: int
    hle_ids: list[int] = field(default_factory=list)
    view_bytes: int = 0


class Hedc:
    """A complete HEDC deployment.

    >>> hedc = Hedc.create(tmp_path)           # doctest: +SKIP
    >>> hedc.ingest_observation(duration_s=600)
    >>> hedc.catalog_events()
    """

    def __init__(
        self,
        data_dir: Union[str, Path],
        n_idl_servers: int = 1,
        persistent: bool = False,
        with_tape: bool = False,
        obs: Optional[Observability] = None,
        shard_boundaries: Optional[Sequence[float]] = None,
        replicas_per_shard: int = 1,
    ):
        self.data_dir = Path(data_dir)
        # A private hub per deployment: every tier below shares it, so
        # one browse yields one span tree and one instrument panel.
        self.obs = obs if obs is not None else Observability(name="hedc")
        if shard_boundaries is not None:
            # Partition the catalog by observation time: the DM stack
            # above is unchanged, statements route through the shard
            # router transparently.  ``replicas_per_shard > 1`` nests a
            # log-shipped replica group inside every shard for read HA.
            from ..shard import ShardedDatabase

            database: Any = ShardedDatabase(
                boundaries=shard_boundaries,
                path=self.data_dir / "db" if persistent else None,
                name="hedc",
                obs=self.obs,
                replicas_per_shard=replicas_per_shard,
            )
        elif replicas_per_shard > 1:
            # Unsharded but replicated: one standalone replica group.
            from ..repl import ReplicaGroup

            database = ReplicaGroup(
                path=self.data_dir / "db" if persistent else None,
                name="hedc",
                n_replicas=replicas_per_shard - 1,
                obs=self.obs,
            )
        else:
            database = Database(
                self.data_dir / "db" if persistent else None, name="hedc",
                obs=self.obs,
            )
        storage = StorageManager(scratch_dir=self.data_dir / "scratch")
        main = DiskArchive("main", self.data_dir / "archive")
        storage.register(main)
        self.dm = DataManager(database, storage, node_name="dm0", obs=self.obs)
        self.dm.io.names.ensure_archive("main", str(main.root))
        if with_tape:
            tape = TapeArchive("tape", self.data_dir / "tape")
            storage.register(tape)
            self.dm.io.names.ensure_archive("tape", str(tape.root), kind="tape")
        self.directory = GlobalDirectory()
        self.routines = RoutineLibrary(self.dm)
        self.idl = IdlServerManager("server", n_servers=n_idl_servers,
                                    directory=self.directory,
                                    routine_library=self.routines,
                                    obs=self.obs)
        self.idl.start_all()
        self.frontend = Frontend(self.dm, self.idl, directory=self.directory,
                                 obs=self.obs)
        self.frontend.register_strategy(UserRoutineStrategy())
        self.web = WebServer(self.dm, frontend=self.frontend, obs=self.obs)
        self.router = DmRouter()
        self.router.add_node(self.dm)
        self.synoptic: Optional[SynopticSearch] = None
        self.standard_catalog_id = self._ensure_catalog(
            "standard", "events found at data load"
        )
        self.extended_catalog_id = self._ensure_catalog(
            "extended", "derived data products and user analyses"
        )

    def _ensure_catalog(self, name: str, description: str) -> int:
        """Reuse the system catalog when reopening a persistent repository."""
        existing = self.dm.io.execute(
            Select("catalogs", where=Comparison("name", "=", name))
        )
        for row in existing:
            if row["owner_id"] == self.dm.import_user.user_id:
                return row["catalog_id"]
        return self.dm.semantic.create_catalog(
            self.dm.import_user, name, description=description, public=True
        )

    # -- construction ---------------------------------------------------------

    @classmethod
    def create(cls, data_dir: Union[str, Path], **kwargs: Any) -> "Hedc":
        return cls(data_dir, **kwargs)

    # -- user management ---------------------------------------------------------

    def register_user(self, login: str, password: str, group: str = "scientist") -> User:
        return self.dm.users.create_user(login, password, group=group)

    def login(self, login: str, password: str) -> User:
        return self.dm.authenticate(login, password)

    # -- ingest -------------------------------------------------------------------

    def ingest_observation(
        self,
        plan: Optional[ObservationPlan] = None,
        duration_s: float = 600.0,
        seed: int = 7,
        unit_target_photons: int = 100_000,
    ) -> IngestReport:
        """Generate (or accept) telemetry and run the full load pipeline."""
        if plan is None:
            plan = standard_day_plan(duration=duration_s, seed=seed)
        photons = TelemetryGenerator(plan, seed=seed).generate()
        # A unique downlink prefix keeps unit ids distinct even when two
        # observation windows cover the same mission-time range.
        from ..metadb import Aggregate

        existing = self.dm.io.execute(
            Select("raw_units", aggregates=[Aggregate("count", "*", "n")])
        )[0]["n"]
        units = package_units(
            photons, self.data_dir / "incoming",
            unit_target_photons=unit_target_photons,
            prefix=f"hsi{existing:04d}",
        )
        report = IngestReport(n_photons=len(photons), n_units=len(units), n_events=0)
        for unit in units:
            load = self.dm.process.load_raw_unit(
                unit, "main", standard_catalog_id=self.standard_catalog_id
            )
            report.n_events += load.n_events
            report.hle_ids.extend(load.hle_ids)
            report.view_bytes += load.view_bytes
        return report

    # -- browse & search --------------------------------------------------------------

    def events(self, user: Optional[User] = None, kind: Optional[str] = None,
               limit: Optional[int] = None) -> list[dict]:
        where = Comparison("kind", "=", kind) if kind else None
        return self.dm.semantic.find_hles(
            user, where=where, order_by=[("start_time", "asc")], limit=limit
        )

    def catalog_events(self, catalog: str = "standard",
                       user: Optional[User] = None) -> list[dict]:
        catalog_id = (
            self.standard_catalog_id if catalog == "standard" else self.extended_catalog_id
        )
        return self.dm.semantic.catalog_hles(user, catalog_id)

    def catalog_array(self, dimensions: Sequence[str],
                      user: Optional[User] = None) -> CatalogArray:
        """The §6.3 multi-dimensional view over the visible events."""
        return CatalogArray(self.dm.semantic.find_hles(user), dimensions)

    # -- analysis ----------------------------------------------------------------------

    def analyze(
        self,
        user: User,
        hle_id: int,
        algorithm: str,
        parameters: Optional[dict[str, Any]] = None,
        estimate: bool = False,
        publish: bool = False,
    ) -> AnalysisRequest:
        """Run one analysis through the PL's four phases."""
        request = AnalysisRequest(user, hle_id, algorithm, dict(parameters or {}))
        self.frontend.run(request, estimate=estimate)
        if publish and request.phase is Phase.COMMITTED:
            self.dm.semantic.publish_analysis(user, request.ana_id)
            if not self._in_extended(hle_id):
                self.dm.semantic.add_to_catalog(
                    self.dm.import_user, self.extended_catalog_id, hle_id
                )
        return request

    def _in_extended(self, hle_id: int) -> bool:
        members = self.dm.semantic.catalog_hles(self.dm.import_user,
                                                self.extended_catalog_id)
        return any(member["hle_id"] == hle_id for member in members)

    # -- user-submitted routines (§3.3) --------------------------------------------------

    def submit_routine(self, user: User, name: str, source: str,
                       description: str = "", publish: bool = False):
        """Submit (and optionally publish + hot-load) an analysis routine."""
        routine = self.routines.submit(user, name, source, description=description)
        if publish:
            self.routines.publish(user, name)
            self.idl.broadcast_source(source)
        return routine

    # -- web client --------------------------------------------------------------------

    def thin_client(self, client_ip: str = "127.0.0.1") -> ThinClient:
        return ThinClient(self.web, client_ip=client_ip)

    # -- synoptic ----------------------------------------------------------------------

    def enable_synoptic(self, mission_end_s: float = 86_400.0) -> SynopticSearch:
        self.synoptic = standard_archive_set(mission_end=mission_end_s)
        return self.synoptic

    def synoptic_context(self, hle_id: int, margin_s: float = 600.0):
        """Context-dependent remote search around an event (§6.4)."""
        if self.synoptic is None:
            raise RuntimeError("call enable_synoptic() first")
        hle = self.dm.semantic.get_hle(None, hle_id)
        return self.synoptic.search(hle["start_time"] - margin_s,
                                    hle["end_time"] + margin_s)

    # -- scaling -----------------------------------------------------------------------

    def add_dm_node(self) -> DataManager:
        """Replicate the application logic onto another node (§7.3), all
        nodes sharing the resource tier."""
        node = DataManager(
            self.dm.io.default_database,
            self.dm.io.storage,
            node_name=f"dm{self.router.n_nodes}",
            install_schema=False,
            obs=self.obs,
        )
        self.router.add_node(node)
        return node

    def stats(self) -> dict:
        return {
            "dm": self.dm.stats(),
            "frontend": self.frontend.stats(),
            "idl": self.idl.stats(),
            "web": {
                "requests": self.web.requests_served,
                "bytes": self.web.bytes_sent,
            },
        }

    def telemetry_report(self) -> dict:
        """The obs instrument panel for this deployment (see
        :meth:`repro.dm.DataManager.telemetry_report`)."""
        return self.dm.telemetry_report()
