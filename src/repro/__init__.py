"""repro — a full reproduction of HEDC, the RHESSI Experimental Data
Center ("Scientific Data Repositories: Designing for a Moving Target",
SIGMOD 2003).

Quick start::

    from repro import Hedc
    hedc = Hedc.create("./hedc-data")
    hedc.ingest_observation(duration_s=600)
    user = hedc.register_user("alice", "secret")
    events = hedc.events()
    result = hedc.analyze(user, events[0]["hle_id"], "imaging")

Subpackages: ``core`` (facade), ``dm``/``pl`` (application logic tier),
``metadb``/``filestore``/``schema`` (resource tier), ``web``/
``streamcorder`` (presentation tier), ``rhessi``/``fits``/``analysis``/
``idl``/``wavelets``/``viz``/``synoptic`` (domain substrates),
``simkit``/``evalmodel`` (performance models for the paper's evaluation).
"""

from .core import Hedc, IngestReport

__version__ = "1.0.0"

__all__ = ["Hedc", "IngestReport", "__version__"]
