"""Progressive wavelet codec.

Encodes a signal as a byte stream ordered coarsest-first so a client can
decode a usable approximation from any prefix — the StreamCorder's
progressive analysis and visualization (paper §6.3) downloads coefficient
levels until the reconstruction is good enough for the analysis at hand.

The stream layout is::

    magic | filter | n_levels | lengths | quantizer step
    | approx coefficients | detail level (coarsest) | ... | (finest)

Coefficients are uniform-quantized to int32 and zlib-compressed per
section, so truncating at a section boundary always yields a decodable
stream.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .transform import WaveletPyramid, forward, inverse

_MAGIC = b"WVC1"
_FILTER_CODES = {"haar": 0, "cdf22": 1}
_FILTER_NAMES = {code: name for name, code in _FILTER_CODES.items()}


@dataclass(frozen=True)
class EncodedStream:
    """A fully encoded signal plus section boundaries for truncation."""

    payload: bytes
    section_offsets: tuple[int, ...]  # offset of each coefficient section

    def prefix(self, levels: int) -> bytes:
        """Byte prefix carrying the approx section plus ``levels`` coarsest
        detail sections."""
        # Sections: [approx, detail_coarsest, ..., detail_finest]
        index = min(1 + levels, len(self.section_offsets) - 1)
        return self.payload[: self.section_offsets[index]]

    @property
    def total_bytes(self) -> int:
        return len(self.payload)


def _quantize(values: np.ndarray, step: float) -> np.ndarray:
    return np.round(values / step).astype(np.int32)


def _dequantize(values: np.ndarray, step: float) -> np.ndarray:
    return values.astype(np.float64) * step


def _pack_section(values: np.ndarray, step: float) -> bytes:
    quantized = _quantize(values, step)
    compressed = zlib.compress(quantized.tobytes(), level=6)
    return struct.pack("<II", len(values), len(compressed)) + compressed


def _unpack_section(payload: bytes, offset: int, step: float) -> tuple[Optional[np.ndarray], int]:
    if offset + 8 > len(payload):
        return None, offset
    count, compressed_length = struct.unpack_from("<II", payload, offset)
    offset += 8
    if offset + compressed_length > len(payload):
        return None, offset
    raw = zlib.decompress(payload[offset:offset + compressed_length])
    values = np.frombuffer(raw, dtype=np.int32)
    if len(values) != count:
        return None, offset
    return _dequantize(values, step), offset + compressed_length


def encode(
    signal: np.ndarray,
    levels: Optional[int] = None,
    filter_name: str = "cdf22",
    quantizer_step: float = 0.5,
) -> EncodedStream:
    """Encode ``signal`` into a progressive stream."""
    if quantizer_step <= 0:
        raise ValueError("quantizer step must be positive")
    pyramid = forward(signal, levels=levels, filter_name=filter_name)
    header = _MAGIC + struct.pack(
        "<BBId",
        _FILTER_CODES[filter_name],
        pyramid.levels,
        len(signal),
        quantizer_step,
    )
    header += struct.pack(f"<{pyramid.levels}I", *pyramid.lengths)
    chunks = [header]
    offsets = [len(header)]
    chunks.append(_pack_section(pyramid.approx, quantizer_step))
    offsets.append(offsets[-1] + len(chunks[-1]))
    # Detail sections from coarsest to finest for progressive decode.
    for detail in reversed(pyramid.details):
        chunks.append(_pack_section(detail, quantizer_step))
        offsets.append(offsets[-1] + len(chunks[-1]))
    return EncodedStream(b"".join(chunks), tuple(offsets))


def decode(payload: bytes) -> np.ndarray:
    """Decode any valid prefix of an encoded stream.

    Missing (truncated) fine detail levels are treated as zero, so a
    prefix yields the corresponding smoothed approximation at full length.
    """
    if payload[:4] != _MAGIC:
        raise ValueError("not a wavelet stream")
    filter_code, n_levels, original_length, step = struct.unpack_from("<BBId", payload, 4)
    offset = 4 + struct.calcsize("<BBId")
    lengths = list(struct.unpack_from(f"<{n_levels}I", payload, offset))
    offset += 4 * n_levels
    filter_name = _FILTER_NAMES[filter_code]
    approx, offset = _unpack_section(payload, offset, step)
    if approx is None:
        raise ValueError("stream truncated before the approximation section")
    # Read as many detail sections (coarsest-first) as the prefix contains.
    details_coarse_first: list[np.ndarray] = []
    for _level in range(n_levels):
        detail, new_offset = _unpack_section(payload, offset, step)
        if detail is None:
            break
        details_coarse_first.append(detail)
        offset = new_offset
    # Reassemble finest-first detail list, zero-filling missing fine levels.
    details: list[np.ndarray] = []
    for level in range(n_levels):  # level 0 = finest
        coarse_index = n_levels - 1 - level
        if coarse_index < len(details_coarse_first):
            details.append(details_coarse_first[coarse_index])
        else:
            half = (lengths[level] + 1) // 2
            details.append(np.zeros(half))
    pyramid = WaveletPyramid(approx, details, lengths, filter_name)
    return inverse(pyramid, levels_used=len(details_coarse_first))


def reconstruction_error(original: np.ndarray, reconstructed: np.ndarray) -> float:
    """Normalised RMS error between original and reconstruction."""
    original = np.asarray(original, dtype=np.float64)
    scale = float(np.sqrt(np.mean(original ** 2))) or 1.0
    return float(np.sqrt(np.mean((original - reconstructed) ** 2))) / scale
