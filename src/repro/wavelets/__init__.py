"""Wavelet compression substrate for approximated analysis (paper §6.3)."""

from .codec import EncodedStream, decode, encode, reconstruction_error
from .transform import (
    SUPPORTED_FILTERS,
    WaveletPyramid,
    forward,
    forward2d,
    inverse,
    inverse2d,
)
from .views import Partition, RangePartitionedView

__all__ = [
    "EncodedStream",
    "Partition",
    "RangePartitionedView",
    "SUPPORTED_FILTERS",
    "WaveletPyramid",
    "decode",
    "encode",
    "forward",
    "forward2d",
    "inverse",
    "inverse2d",
    "reconstruction_error",
]
