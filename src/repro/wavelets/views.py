"""Range-partitioned wavelet-compressed views.

"The approach is based on ... preprocessing the data when it is loaded
into the system to construct wavelet compressed range partitioned views
over the raw data." (paper §3.4)

A :class:`RangePartitionedView` slices a long signal (e.g. the binned
count rate of a raw-data unit) into fixed-width partitions along its
domain and encodes each partition progressively.  Queries for a domain
range at a level of detail touch only the covering partitions and decode
only a byte prefix of each — the two savings that make interactive
exploration possible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .codec import EncodedStream, decode, encode


@dataclass(frozen=True)
class Partition:
    """One encoded slice of the domain."""

    index: int
    domain_start: float
    domain_end: float
    stream: EncodedStream


class RangePartitionedView:
    """A wavelet-compressed, range-partitioned view over a regular signal.

    ``values[i]`` is the signal at domain point
    ``domain_start + i * domain_step``.
    """

    def __init__(
        self,
        values: np.ndarray,
        domain_start: float,
        domain_step: float,
        partition_length: int = 1024,
        filter_name: str = "cdf22",
        quantizer_step: float = 0.5,
        levels: Optional[int] = None,
    ):
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise ValueError("view expects a 1-D signal")
        if partition_length < 4:
            raise ValueError("partition_length must be >= 4")
        if domain_step <= 0:
            raise ValueError("domain_step must be positive")
        self.domain_start = domain_start
        self.domain_step = domain_step
        self.partition_length = partition_length
        self.length = len(values)
        self.partitions: list[Partition] = []
        for index in range(0, len(values), partition_length):
            chunk = values[index:index + partition_length]
            stream = encode(
                chunk, levels=levels, filter_name=filter_name, quantizer_step=quantizer_step
            )
            self.partitions.append(
                Partition(
                    index=index // partition_length,
                    domain_start=domain_start + index * domain_step,
                    domain_end=domain_start + (index + len(chunk)) * domain_step,
                    stream=stream,
                )
            )

    @property
    def domain_end(self) -> float:
        return self.domain_start + self.length * self.domain_step

    @property
    def total_encoded_bytes(self) -> int:
        return sum(partition.stream.total_bytes for partition in self.partitions)

    def _covering(self, start: float, end: float) -> list[Partition]:
        return [
            partition
            for partition in self.partitions
            if partition.domain_end > start and partition.domain_start < end
        ]

    def query(
        self,
        start: float,
        end: float,
        detail_levels: Optional[int] = None,
    ) -> tuple[np.ndarray, np.ndarray, int]:
        """Approximate values over [start, end).

        Returns ``(domain_points, values, bytes_read)``.  ``detail_levels``
        limits how many detail sections are decoded per partition; ``None``
        decodes everything (lossless up to quantization).
        """
        if end <= start:
            raise ValueError("empty query range")
        points: list[np.ndarray] = []
        values: list[np.ndarray] = []
        bytes_read = 0
        for partition in self._covering(start, end):
            if detail_levels is None:
                payload = partition.stream.payload
            else:
                payload = partition.stream.prefix(detail_levels)
            bytes_read += len(payload)
            decoded = decode(payload)
            domain = partition.domain_start + np.arange(len(decoded)) * self.domain_step
            mask = (domain >= start) & (domain < end)
            points.append(domain[mask])
            values.append(decoded[mask])
        if not points:
            return np.empty(0), np.empty(0), 0
        return np.concatenate(points), np.concatenate(values), bytes_read
