"""Lifting-scheme wavelet transforms.

Two classic integer-friendly filters are implemented via lifting:

* Haar — trivially short, used for count data (density plots);
* CDF(2,2) (the 5/3 LeGall filter) — smoother reconstructions, used for
  lightcurves and spectrogram rows.

Both handle arbitrary (not just power-of-two) lengths by odd-sample
duplication at the boundary and support multi-level decomposition.  The
inverse reproduces the input to floating-point round-off.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

SUPPORTED_FILTERS = ("haar", "cdf22")


def _split(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split into even and odd samples, padding odd-length signals."""
    if len(signal) % 2:
        signal = np.concatenate([signal, signal[-1:]])
    return signal[0::2].copy(), signal[1::2].copy()


def _forward_haar(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    even, odd = _split(signal.astype(np.float64))
    detail = odd - even
    approx = even + detail / 2.0
    return approx, detail


def _inverse_haar(approx: np.ndarray, detail: np.ndarray, length: int) -> np.ndarray:
    even = approx - detail / 2.0
    odd = detail + even
    out = np.empty(len(even) * 2, dtype=np.float64)
    out[0::2] = even
    out[1::2] = odd
    return out[:length]


def _forward_cdf22(signal: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    even, odd = _split(signal.astype(np.float64))
    # Predict: odd -= (left even + right even) / 2, symmetric boundary.
    right = np.concatenate([even[1:], even[-1:]])
    detail = odd - (even + right) / 2.0
    # Update: even += (left detail + own detail) / 4.
    left_detail = np.concatenate([detail[:1], detail[:-1]])
    approx = even + (left_detail + detail) / 4.0
    return approx, detail


def _inverse_cdf22(approx: np.ndarray, detail: np.ndarray, length: int) -> np.ndarray:
    left_detail = np.concatenate([detail[:1], detail[:-1]])
    even = approx - (left_detail + detail) / 4.0
    right = np.concatenate([even[1:], even[-1:]])
    odd = detail + (even + right) / 2.0
    out = np.empty(len(even) * 2, dtype=np.float64)
    out[0::2] = even
    out[1::2] = odd
    return out[:length]


_FORWARD = {"haar": _forward_haar, "cdf22": _forward_cdf22}
_INVERSE = {"haar": _inverse_haar, "cdf22": _inverse_cdf22}


class WaveletPyramid:
    """A multi-level 1-D decomposition: coarsest approximation + details.

    ``details[0]`` is the finest level (needed last in progressive
    reconstruction), ``details[-1]`` the coarsest.
    """

    def __init__(
        self,
        approx: np.ndarray,
        details: list[np.ndarray],
        lengths: list[int],
        filter_name: str,
    ):
        self.approx = approx
        self.details = details
        self.lengths = lengths  # original length at each level, finest first
        self.filter_name = filter_name

    @property
    def levels(self) -> int:
        return len(self.details)

    def coefficient_count(self, levels_used: Optional[int] = None) -> int:
        """Coefficients needed to reconstruct with ``levels_used`` detail levels."""
        used = self.levels if levels_used is None else levels_used
        count = len(self.approx)
        for detail in self.details[self.levels - used:]:
            count += len(detail)
        return count


def forward(signal: np.ndarray, levels: Optional[int] = None, filter_name: str = "cdf22") -> WaveletPyramid:
    """Decompose ``signal`` into a :class:`WaveletPyramid`."""
    if filter_name not in SUPPORTED_FILTERS:
        raise ValueError(f"unsupported filter {filter_name!r}")
    signal = np.asarray(signal, dtype=np.float64)
    if signal.ndim != 1:
        raise ValueError("forward() expects a 1-D signal")
    if len(signal) == 0:
        raise ValueError("cannot transform an empty signal")
    max_levels = max(1, int(np.floor(np.log2(max(len(signal), 2)))))
    n_levels = max_levels if levels is None else min(levels, max_levels)
    details: list[np.ndarray] = []
    lengths: list[int] = []
    current = signal
    step = _FORWARD[filter_name]
    for _level in range(n_levels):
        if len(current) < 2:
            break
        lengths.append(len(current))
        current, detail = step(current)
        details.append(detail)
    return WaveletPyramid(current, details, lengths, filter_name)


def inverse(pyramid: WaveletPyramid, levels_used: Optional[int] = None) -> np.ndarray:
    """Reconstruct, optionally using only the ``levels_used`` coarsest
    detail levels (progressive / approximated reconstruction).

    With fewer levels the output has the *original length* but smoothed
    content — this is the approximated view fed to analysis routines
    (paper §6.3).
    """
    used = pyramid.levels if levels_used is None else max(0, min(levels_used, pyramid.levels))
    step = _INVERSE[pyramid.filter_name]
    current = pyramid.approx.copy()
    for level in range(pyramid.levels - 1, -1, -1):
        detail = pyramid.details[level]
        # Drop (zero) the finest `levels - used` detail levels.
        if level < pyramid.levels - used:
            detail = np.zeros_like(detail)
        current = step(current, detail, pyramid.lengths[level])
    return current


def forward2d(image: np.ndarray, levels: int = 1, filter_name: str = "cdf22") -> list:
    """Separable 2-D decomposition.

    Returns ``[LL, (LH, HL, HH) x levels]`` with the coarsest LL first and
    subband tuples ordered coarsest-to-finest.
    """
    if image.ndim != 2:
        raise ValueError("forward2d() expects a 2-D image")
    current = np.asarray(image, dtype=np.float64)
    step = _FORWARD[filter_name]
    subbands = []
    shapes = []
    for _level in range(levels):
        if min(current.shape) < 2:
            break
        shapes.append(current.shape)
        # Rows.
        approx_rows, detail_rows = [], []
        for row in current:
            approx, detail = step(row)
            approx_rows.append(approx)
            detail_rows.append(detail)
        low = np.array(approx_rows)
        high = np.array(detail_rows)
        # Columns.
        def column_pass(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            approx_cols, detail_cols = [], []
            for column in block.T:
                approx, detail = step(column)
                approx_cols.append(approx)
                detail_cols.append(detail)
            return np.array(approx_cols).T, np.array(detail_cols).T

        ll, lh = column_pass(low)
        hl, hh = column_pass(high)
        subbands.append((lh, hl, hh))
        current = ll
    return [current, shapes, subbands, filter_name]


def inverse2d(decomposition: list, levels_used: Optional[int] = None) -> np.ndarray:
    """Invert :func:`forward2d`, optionally dropping fine subbands."""
    ll, shapes, subbands, filter_name = decomposition
    total = len(subbands)
    used = total if levels_used is None else max(0, min(levels_used, total))
    step = _INVERSE[filter_name]
    current = ll.copy()
    for level in range(total - 1, -1, -1):
        lh, hl, hh = subbands[level]
        if level < total - used:
            lh = np.zeros_like(lh)
            hl = np.zeros_like(hl)
            hh = np.zeros_like(hh)
        rows, cols = shapes[level]
        half_cols = lh.shape[1]

        def column_unpass(approx_block, detail_block, out_rows):
            columns = []
            for approx, detail in zip(approx_block.T, detail_block.T):
                columns.append(step(approx, detail, out_rows))
            return np.array(columns).T

        low = column_unpass(current, lh, rows)
        high = column_unpass(hl, hh, rows)
        out = np.empty((rows, cols), dtype=np.float64)
        for row_index in range(rows):
            out[row_index] = step(low[row_index], high[row_index], cols)
        current = out
    return current
