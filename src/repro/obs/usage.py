"""Live usage analytics: the paper's §7 tables, rebuilt from telemetry.

The paper's central argument is that a repository survives a *moving
target* only if operators can see the workload move: §7.2 characterises
the live request mix, bytes served, per-tier time split and per-page
costs, and those numbers are what the :mod:`repro.evalmodel` simulators
were calibrated against.  This module reconstructs the same tables from
the live :class:`~repro.obs.metrics.MetricsRegistry` — and then *diffs*
them against the calibration constants, flagging the drift that means
the models (and the capacity plans built on them) need re-fitting.

Everything here is read-only over metric snapshots; it allocates a dict,
never blocks a request.
"""

from __future__ import annotations

from typing import Any, Optional

from .hub import Observability
from .metrics import Histogram

#: Measured/predicted ratio beyond which a calibration entry is flagged.
DEFAULT_DRIFT_TOLERANCE = 0.25


def _histogram_sum(registry, name: str) -> float:
    return sum(
        metric.sum for metric in registry.family(name)
        if isinstance(metric, Histogram)
    )


def request_mix(obs: Observability) -> dict[str, dict[str, Any]]:
    """Per-route request counts, shares and latency — §7.1's request mix.

    Built from the ``web.responses`` counters (per route × status) and
    the ``web.request_s`` per-route histograms.
    """
    registry = obs.registry
    counts: dict[str, float] = {}
    statuses: dict[str, dict[str, float]] = {}
    for metric in registry.family("web.responses"):
        route = metric.labels.get("route", "(unknown)")
        counts[route] = counts.get(route, 0) + metric.value
        by_status = statuses.setdefault(route, {})
        status = metric.labels.get("status", "?")
        by_status[status] = by_status.get(status, 0) + metric.value
    latencies: dict[str, Histogram] = {}
    for metric in registry.family("web.request_s"):
        if isinstance(metric, Histogram):
            latencies[metric.labels.get("route", "(unknown)")] = metric
    total = sum(counts.values())
    mix: dict[str, dict[str, Any]] = {}
    for route in sorted(counts, key=lambda r: -counts[r]):
        histogram = latencies.get(route)
        populated = histogram is not None and histogram.count > 0
        mix[route] = {
            "requests": int(counts[route]),
            "share": counts[route] / total if total else 0.0,
            "statuses": {k: int(v) for k, v in sorted(statuses[route].items())},
            "p50_s": histogram.quantile(0.50) if populated else 0.0,
            "p95_s": histogram.quantile(0.95) if populated else 0.0,
        }
    return mix


def bytes_served(obs: Observability) -> dict[str, float]:
    """Total and per-request bytes sent by the web tier (§7.2)."""
    registry = obs.registry
    total_bytes = registry.family_total("web.bytes_sent")
    total_requests = registry.family_total("web.requests")
    return {
        "bytes_sent": total_bytes,
        "requests": total_requests,
        "bytes_per_request": total_bytes / total_requests if total_requests else 0.0,
    }


def tier_time_split(obs: Observability) -> dict[str, Any]:
    """Where wall-clock time went, by tier — the §7.2 breakdown.

    Sums the per-tier latency histograms: total web-request time, the DM
    query slice inside it, and the processing slice (PL requests / IDL
    invocations).  The remainder is application logic (templates,
    sessions, result parsing).
    """
    registry = obs.registry
    web_s = _histogram_sum(registry, "web.request_s")
    # DB time is per-statement round trips plus the grouped page-fetch
    # round trips (PR-8 batching) — both are time spent at the database.
    db_s = (_histogram_sum(registry, "dm.query_s")
            + _histogram_sum(registry, "dm.batch_s"))
    pl_s = _histogram_sum(registry, "pl.request_s")
    idl_s = _histogram_sum(registry, "idl.invoke_s")
    app_s = max(0.0, web_s - db_s - pl_s)
    split = {
        "web_total_s": web_s,
        "db_s": db_s,
        "processing_s": pl_s,
        "idl_s": idl_s,
        "app_logic_s": app_s,
    }
    if web_s > 0:
        split["shares"] = {
            "db": db_s / web_s,
            "processing": pl_s / web_s,
            "app_logic": app_s / web_s,
        }
    return split


def page_characteristics(obs: Observability, dm=None) -> dict[str, Any]:
    """The §7.2 in-text page characteristics, from live counters:
    DM queries per HLE page, bytes per response, name-mapping lookups."""
    registry = obs.registry
    hle_pages = sum(
        metric.value for metric in registry.family("web.responses")
        if metric.labels.get("route") == "/hedc/hle"
        and metric.labels.get("status") == "200"
    )
    characteristics: dict[str, Any] = {
        "hle_pages": int(hle_pages),
        "name_mapping_lookups": registry.family_total("dm.name_mapping.lookups"),
    }
    served = bytes_served(obs)
    characteristics["bytes_per_request"] = served["bytes_per_request"]
    if dm is not None:
        queries = dm.io.stats.queries
        characteristics["dm_queries"] = queries
        round_trips = getattr(dm.io.stats, "round_trips", 0)
        characteristics["dm_round_trips"] = round_trips
        if hle_pages:
            characteristics["dm_queries_per_page"] = queries / hle_pages
            characteristics["dm_round_trips_per_page"] = round_trips / hle_pages
    return characteristics


def calibration_drift(
    obs: Observability,
    dm=None,
    tolerance: float = DEFAULT_DRIFT_TOLERANCE,
) -> list[dict[str, Any]]:
    """Diff live telemetry against the :mod:`repro.evalmodel` calibration
    constants; entries whose measured/predicted ratio strays past
    ``tolerance`` are flagged ``drifted`` — the §7 "moving target" signal
    that the models need re-fitting before the next capacity decision.
    """
    # Imported here: evalmodel is a leaf package and obs must stay
    # importable without it during partial installs.
    from ..evalmodel.calibration import (
        DB_QUERIES_PER_SECOND,
        HTML_RESPONSE_KB,
        PAGE_ROUND_TRIPS_BATCHED,
        QUERIES_PER_REQUEST,
    )

    entries: list[dict[str, Any]] = []

    def compare(metric: str, predicted: float, measured: Optional[float]) -> None:
        if measured is None or predicted <= 0:
            return
        ratio = measured / predicted
        entries.append({
            "metric": metric,
            "predicted": predicted,
            "measured": measured,
            "ratio": ratio,
            "drifted": abs(ratio - 1.0) > tolerance,
        })

    pages = page_characteristics(obs, dm=dm)
    # Logical queries per page is batching-invariant: the seven §7.2
    # statements ride in fewer round trips, but they are still issued
    # (and counted), so batched deployments don't falsely trip this.
    compare("dm_queries_per_page", float(QUERIES_PER_REQUEST),
            pages.get("dm_queries_per_page"))
    # Round trips per page is the batching contract itself: 3 with the
    # grouped fetch, the historical one-per-query otherwise.
    predicted_trips = (PAGE_ROUND_TRIPS_BATCHED
                       if getattr(dm, "batched_pages", False)
                       else QUERIES_PER_REQUEST)
    compare("dm_round_trips_per_page", float(predicted_trips),
            pages.get("dm_round_trips_per_page"))
    compare("html_bytes_per_request", HTML_RESPONSE_KB * 1024.0,
            pages["bytes_per_request"] or None)
    registry = obs.registry
    select_hists = [
        metric for metric in registry.family("metadb.query_s")
        if isinstance(metric, Histogram) and metric.labels.get("op") == "select"
        and metric.count
    ]
    if select_hists:
        total = sum(h.sum for h in select_hists)
        count = sum(h.count for h in select_hists)
        compare("db_query_service_s", 1.0 / DB_QUERIES_PER_SECOND,
                total / count if count else None)
    return entries


def usage_report(
    obs: Observability,
    dm=None,
    tolerance: float = DEFAULT_DRIFT_TOLERANCE,
) -> dict[str, Any]:
    """The full §7-style usage-analytics report, JSON-ready."""
    return {
        "request_mix": request_mix(obs),
        "bytes": bytes_served(obs),
        "tier_time_split": tier_time_split(obs),
        "page_characteristics": page_characteristics(obs, dm=dm),
        "calibration_drift": calibration_drift(obs, dm=dm, tolerance=tolerance),
    }
