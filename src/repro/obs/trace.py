"""Nested spans with context propagation.

One web request yields one span tree — ``web.handle → dm.query →
metadb.execute`` (and ``pl.run → idl.invoke`` when an analysis is
submitted) — which is exactly the per-request, per-tier breakdown the
paper's evaluation tables are built from.  The current span travels in a
:mod:`contextvars` variable, so nesting is automatic within a thread and
crosses threads whenever the work is run under a copied context
(``contextvars.copy_context().run(...)``, which the PL's asynchronous
paths do) or under :meth:`Tracer.attach`.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Iterator, Optional


class Span:
    """One timed operation, possibly with children."""

    __slots__ = (
        "name", "tags", "span_id", "trace_id", "parent_id", "started_at",
        "ended_at", "duration_s", "status", "error", "children", "thread_name",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        tags: Optional[dict[str, Any]] = None,
        parent: Optional["Span"] = None,
    ):
        self.name = name
        self.tags: dict[str, Any] = dict(tags or {})
        self.span_id = span_id
        self.parent_id = parent.span_id if parent is not None else None
        self.trace_id = parent.trace_id if parent is not None else span_id
        self.started_at = time.perf_counter()
        self.ended_at: Optional[float] = None
        self.duration_s: Optional[float] = None
        self.status = "ok"
        self.error: Optional[str] = None
        self.children: list[Span] = []
        self.thread_name = threading.current_thread().name

    def set_tag(self, key: str, value: Any) -> None:
        self.tags[key] = value

    def finish(self, error: Optional[BaseException] = None) -> None:
        self.ended_at = time.perf_counter()
        self.duration_s = self.ended_at - self.started_at
        if error is not None:
            self.status = "error"
            self.error = f"{type(error).__name__}: {error}"

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in list(self.children):
            yield from child.walk()

    def tree_names(self) -> list[str]:
        return [span.name for span in self.walk()]

    def find(self, name: str) -> list["Span"]:
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "tags": dict(self.tags),
            "duration_s": self.duration_s,
            "status": self.status,
            "error": self.error,
            "thread": self.thread_name,
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, children={len(self.children)})"


class _NullSpan:
    """The span handed out when tracing is disabled: absorbs everything."""

    __slots__ = ()

    def set_tag(self, key: str, value: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable, stateless no-op context manager."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN_CONTEXT = _NullSpanContext()


class Tracer:
    """Produces spans and keeps the most recent finished root trees."""

    def __init__(self, max_finished: int = 256, name: str = "tracer"):
        self.name = name
        self._ids = itertools.count(1)
        self._current: contextvars.ContextVar[Optional[Span]] = contextvars.ContextVar(
            f"obs-span-{name}", default=None
        )
        self._finished: deque[Span] = deque(maxlen=max_finished)
        self._lock = threading.Lock()

    # -- span lifecycle --------------------------------------------------------

    def current(self) -> Optional[Span]:
        return self._current.get()

    @contextmanager
    def span(self, name: str, **tags: Any) -> Iterator[Span]:
        parent = self._current.get()
        span = Span(name, next(self._ids), tags=tags, parent=parent)
        token = self._current.set(span)
        try:
            yield span
        except BaseException as exc:
            span.finish(error=exc)
            raise
        else:
            span.finish()
        finally:
            self._current.reset(token)
            if parent is not None:
                parent.children.append(span)
            else:
                with self._lock:
                    self._finished.append(span)

    @contextmanager
    def attach(self, span: Optional[Span]) -> Iterator[Optional[Span]]:
        """Adopt ``span`` as the current parent — manual cross-thread
        propagation when copying the whole context is not convenient."""
        token = self._current.set(span)
        try:
            yield span
        finally:
            self._current.reset(token)

    def wrap(self, fn, *args, **kwargs):
        """Bind ``fn(*args, **kwargs)`` to the *calling* thread's context
        so spans opened inside a worker thread nest under the caller."""
        ctx = contextvars.copy_context()

        def runner():
            return ctx.run(fn, *args, **kwargs)

        return runner

    # -- reading ---------------------------------------------------------------

    def finished_spans(self) -> list[Span]:
        """Finished root spans, oldest first."""
        with self._lock:
            return list(self._finished)

    def find(self, name: str) -> list[Span]:
        """Every finished span (at any depth) with this name."""
        found: list[Span] = []
        for root in self.finished_spans():
            found.extend(root.find(name))
        return found

    def reset(self) -> None:
        with self._lock:
            self._finished.clear()
