"""Pluggable exporters over the registry (and optionally the tracer).

Three targets, matching the three consumers the repo actually has:

* :class:`InMemoryExporter` — tests and the benchmark harness pull
  structured snapshots;
* :func:`to_line_protocol` / :class:`LineProtocolExporter` — an
  influx-style text dump, which is also what the ``/hedc/metrics``
  servlet serves;
* :func:`to_json_snapshot` / :class:`JsonExporter` — a JSON snapshot
  including recent span trees, for machine consumption.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from .metrics import Histogram, MetricsRegistry
from .trace import Tracer


def _escape(value: str) -> str:
    """Escape a measurement/tag key or value for line protocol.

    Backslashes must be doubled *first* (so a literal ``\\ `` round-trips),
    then the structural characters — space, comma, equals — and double
    quotes, which otherwise open an unterminated string field in strict
    parsers.  Newlines would split the series across lines, so they are
    flattened to escaped spaces.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace(" ", "\\ ")
        .replace("\n", "\\ ")
        .replace(",", "\\,")
        .replace("=", "\\=")
        .replace('"', '\\"')
    )


def _series_name(name: str, labels: dict[str, str]) -> str:
    if not labels:
        return _escape(name)
    tags = ",".join(f"{_escape(k)}={_escape(v)}" for k, v in sorted(labels.items()))
    return f"{_escape(name)},{tags}"


def to_line_protocol(registry: MetricsRegistry) -> str:
    """Render every metric as one line: ``name,label=v field=value ...``."""
    lines: list[str] = []
    for metric in registry.metrics():
        series = _series_name(metric.name, metric.labels)
        if isinstance(metric, Histogram):
            if metric.count == 0:
                # No observations: quantiles are NO_DATA, not 0.0 — emit
                # only the honest fields rather than NaN placeholders.
                fields = "count=0i,sum=0.000000000"
            else:
                fields = (
                    f"count={metric.count}i,sum={metric.sum:.9f},"
                    f"mean={metric.mean:.9f},p50={metric.quantile(0.5):.9f},"
                    f"p95={metric.quantile(0.95):.9f},p99={metric.quantile(0.99):.9f}"
                )
            if metric.min is not None:
                fields += f",min={metric.min:.9f},max={metric.max:.9f}"
        else:
            value = metric.value
            fields = f"value={value}i" if isinstance(value, int) else f"value={value}"
        lines.append(f"{series} {fields}")
    return "\n".join(lines) + ("\n" if lines else "")


def to_json_snapshot(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None, max_traces: int = 32
) -> dict[str, Any]:
    """A JSON-ready snapshot of every metric plus recent span trees."""
    snapshot: dict[str, Any] = {"metrics": registry.snapshot()}
    if tracer is not None:
        snapshot["traces"] = [
            span.to_dict() for span in tracer.finished_spans()[-max_traces:]
        ]
    return snapshot


class InMemoryExporter:
    """Collects structured snapshots — the test/benchmark exporter."""

    def __init__(self) -> None:
        self.snapshots: list[dict[str, Any]] = []

    def export(self, registry: MetricsRegistry, tracer: Optional[Tracer] = None) -> dict:
        snapshot = to_json_snapshot(registry, tracer)
        self.snapshots.append(snapshot)
        return snapshot

    @property
    def latest(self) -> Optional[dict[str, Any]]:
        return self.snapshots[-1] if self.snapshots else None


class LineProtocolExporter:
    """Renders line-protocol text, optionally appending to a file."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path

    def export(self, registry: MetricsRegistry) -> str:
        text = to_line_protocol(registry)
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(text)
        return text


class JsonExporter:
    """Renders a JSON snapshot string (metrics + recent traces)."""

    def __init__(self, indent: Optional[int] = None) -> None:
        self.indent = indent

    def export(self, registry: MetricsRegistry, tracer: Optional[Tracer] = None) -> str:
        return json.dumps(to_json_snapshot(registry, tracer), indent=self.indent)
