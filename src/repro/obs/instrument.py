"""Instrumentation hooks: a decorator and an explicit timer.

``@instrument("dm.query")`` is the declarative form; ``timed(obs, ...)``
is the explicit hook for call sites that need the elapsed time back
(the thin client's browse loop keeps reporting ``elapsed_s``).
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, TypeVar

from .hub import Observability, Timed, resolve

F = TypeVar("F", bound=Callable)


def instrument(
    name: Optional[str] = None,
    obs: Optional[Observability] = None,
    **labels: str,
) -> Callable[[F], F]:
    """Time every call as a histogram observation (and a span when the
    hub has tracing enabled).

    The hub is resolved per call: with ``obs=None`` the decorated
    function follows the process default, and instances carrying a
    ``self.obs`` hub report there instead.
    """

    def decorator(fn: F) -> F:
        metric_name = name or f"fn.{fn.__qualname__}"

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            hub = obs
            if hub is None and args:
                hub = getattr(args[0], "obs", None)
                if not isinstance(hub, Observability):
                    hub = None
            with resolve(hub).timed(metric_name, **labels):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorator


def timed(obs: Optional[Observability], name: str, **labels: str) -> Timed:
    """Explicit hook: ``with timed(obs, "client.browse_s") as t: ...``."""
    return resolve(obs).timed(name, **labels)
