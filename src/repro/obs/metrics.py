"""Counters, gauges and streaming histograms behind one registry.

The paper's evaluation (§7, Tables 1-3) is built on per-request timing
broken down by tier; HEDC's operators could follow the "moving target"
only because the middle tier was measurable.  :class:`MetricsRegistry`
is that instrument panel: a thread-safe, label-aware family of

* :class:`Counter` — monotonically increasing totals;
* :class:`Gauge` — last-value readings (pool sizes, cache sizes);
* :class:`Histogram` — streaming latency distributions with
  fixed-bucket quantile estimation (p50/p95/p99 without storing
  samples).

Metrics are identified by ``(name, labels)``; asking the registry for an
existing identity returns the same object, so instrumentation sites can
re-resolve metrics cheaply or hold on to them.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Optional, Sequence

LabelKey = tuple[str, tuple[tuple[str, str], ...]]


def _label_key(name: str, labels: dict[str, str]) -> LabelKey:
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


class NoData(float):
    """Typed "no observations" sentinel for quantile/windowed queries.

    An empty histogram used to answer ``quantile()`` with ``0.0`` — a
    value indistinguishable from a genuinely instant operation, which is
    exactly the wrong thing for an SLO evaluator or a dashboard to act
    on.  ``NO_DATA`` is a NaN-valued ``float`` subclass, so:

    * arithmetic propagates (NaN) instead of silently reading as zero;
    * it is *falsy* (``if p95:`` skips it) and never compares equal to
      any number, including itself — standard NaN semantics;
    * callers that care can test identity: ``value is NO_DATA``.

    JSON exports render it as ``null`` (see :meth:`Histogram.snapshot`).
    """

    _singleton: Optional["NoData"] = None

    def __new__(cls) -> "NoData":
        if cls._singleton is None:
            cls._singleton = float.__new__(cls, "nan")
        return cls._singleton

    def __bool__(self) -> bool:
        return False

    def __repr__(self) -> str:
        return "NO_DATA"


#: The shared no-data sentinel instance.
NO_DATA = NoData()


def default_latency_buckets() -> list[float]:
    """Geometric bucket bounds from 10 µs to ~84 s (factor √10 per 2)."""
    return [1e-5 * math.sqrt(10.0) ** i for i in range(14)]


class Metric:
    """Shared identity: a name plus a small, sorted label set."""

    kind = "metric"

    def __init__(self, name: str, labels: dict[str, str]):
        self.name = name
        self.labels = {str(k): str(v) for k, v in labels.items()}
        self._lock = threading.Lock()

    def snapshot(self) -> dict:
        raise NotImplementedError

    def reset(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self._value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "labels": dict(self.labels), "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(Metric):
    """A last-value reading that can move both ways."""

    kind = "gauge"

    def __init__(self, name: str, labels: dict[str, str]):
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "labels": dict(self.labels), "value": self._value}

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(Metric):
    """A streaming distribution over fixed bucket bounds.

    ``bounds`` are the *upper* edges of the inner buckets; observations
    above the last bound land in an overflow bucket.  Quantiles are
    estimated by linear interpolation inside the covering bucket, with
    the observed min/max tightening the outermost buckets — accurate to
    a bucket width, which is what an operator dashboard needs.

    **Exemplars** link buckets back to traces: an observation made with
    ``exemplar=(trace_id, span_id)`` claims its bucket's exemplar slot
    when it is the largest value seen there, so a latency spike on a
    dashboard resolves directly to the trace tree (and slow-log entry)
    that caused it.  Observations without an exemplar pay one ``is None``
    check.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: dict[str, str],
        bounds: Optional[Sequence[float]] = None,
    ):
        super().__init__(name, labels)
        self.bounds = sorted(bounds) if bounds else default_latency_buckets()
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self._counts = [0] * (len(self.bounds) + 1)  # +1 overflow
        # bucket index -> (value, trace_id, span_id) of the max observation
        self._exemplars: dict[int, tuple[float, int, int]] = {}
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(
        self, value: float, exemplar: Optional[tuple[int, int]] = None
    ) -> None:
        with self._lock:
            self.count += 1
            self.sum += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            index = self._bucket_index(value)
            self._counts[index] += 1
            if exemplar is not None:
                slot = self._exemplars.get(index)
                if slot is None or value >= slot[0]:
                    self._exemplars[index] = (value, exemplar[0], exemplar[1])

    def exemplars(self) -> list[dict]:
        """Per-bucket exemplars: bucket upper bound, max value seen with a
        trace attached, and the trace/span IDs to resolve it."""
        with self._lock:
            slots = sorted(self._exemplars.items())
        return [
            {
                "le": self.bounds[index] if index < len(self.bounds) else None,
                "value": value,
                "trace_id": trace_id,
                "span_id": span_id,
            }
            for index, (value, trace_id, span_id) in slots
        ]

    def bucket_counts(self) -> tuple[int, ...]:
        """Cumulative-free per-bucket counts (inner buckets + overflow),
        snapshotted under the lock — what the time-series collector
        samples to answer windowed-quantile queries later."""
        with self._lock:
            return tuple(self._counts)

    def _bucket_index(self, value: float) -> int:
        lo, hi = 0, len(self.bounds)
        while lo < hi:
            mid = (lo + hi) // 2
            if value <= self.bounds[mid]:
                hi = mid
            else:
                lo = mid + 1
        return lo

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (0 <= q <= 1) from the buckets.

        Returns :data:`NO_DATA` when the histogram is empty (fresh or
        just reset) — a typed sentinel, not a misleading ``0.0``."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        with self._lock:
            return self._quantile_unlocked(q)

    def snapshot(self) -> dict:
        with self._lock:
            empty = self.count == 0

            def _q(q: float):
                # JSON-friendly: null, never NaN, for an empty histogram.
                return None if empty else self._quantile_unlocked(q)

            snapshot = {
                "type": self.kind,
                "labels": dict(self.labels),
                "count": self.count,
                "sum": self.sum,
                "min": self.min,
                "max": self.max,
                "mean": None if empty else self.mean,
                "p50": _q(0.50),
                "p95": _q(0.95),
                "p99": _q(0.99),
            }
            if self._exemplars:
                snapshot["exemplars"] = [
                    {
                        "le": self.bounds[i] if i < len(self.bounds) else None,
                        "value": value,
                        "trace_id": trace_id,
                        "span_id": span_id,
                    }
                    for i, (value, trace_id, span_id) in sorted(self._exemplars.items())
                ]
            return snapshot

    def _quantile_unlocked(self, q: float) -> float:
        # snapshot() already holds the lock; re-implement without it.
        if self.count == 0:
            return NO_DATA
        target = q * self.count
        cumulative = 0.0
        for index, bucket_count in enumerate(self._counts):
            if bucket_count == 0:
                continue
            lower = self.bounds[index - 1] if index > 0 else self.min
            upper = self.bounds[index] if index < len(self.bounds) else self.max
            lower = self.min if self.min is not None and lower < self.min else lower
            upper = self.max if self.max is not None and upper > self.max else upper
            if cumulative + bucket_count >= target:
                fraction = (target - cumulative) / bucket_count
                return lower + fraction * (upper - lower)
            cumulative += bucket_count
        return self.max if self.max is not None else NO_DATA

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.bounds) + 1)
            self._exemplars.clear()
            self.count = 0
            self.sum = 0.0
            self.min = None
            self.max = None


class MetricsRegistry:
    """Thread-safe, get-or-create home for every metric family."""

    def __init__(self) -> None:
        self._metrics: dict[LabelKey, Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels: dict[str, str], **kwargs) -> Metric:
        key = _label_key(name, labels)
        metric = self._metrics.get(key)
        if metric is not None:
            if not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = cls(name, labels, **kwargs)
                self._metrics[key] = metric
            elif not isinstance(metric, cls):
                raise TypeError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: str
    ) -> Histogram:
        return self._get_or_create(Histogram, name, labels, bounds=bounds)

    # -- reading ---------------------------------------------------------------

    def get(self, name: str, **labels: str) -> Optional[Metric]:
        return self._metrics.get(_label_key(name, labels))

    def value(self, name: str, **labels: str) -> float:
        """Counter/gauge value, or 0 when the metric does not exist yet."""
        metric = self.get(name, **labels)
        return getattr(metric, "value", 0) if metric is not None else 0

    def family(self, name: str) -> list[Metric]:
        """Every metric sharing ``name``, across label sets."""
        with self._lock:
            return [m for m in self._metrics.values() if m.name == name]

    def family_total(self, name: str) -> float:
        """Sum of counter/gauge values across a family's label sets."""
        return sum(getattr(m, "value", 0) for m in self.family(name))

    def metrics(self) -> list[Metric]:
        with self._lock:
            return sorted(
                self._metrics.values(), key=lambda m: (m.name, sorted(m.labels.items()))
            )

    def names(self) -> list[str]:
        with self._lock:
            return sorted({m.name for m in self._metrics.values()})

    def snapshot(self) -> dict[str, list[dict]]:
        """A JSON-ready view: metric name -> per-label-set snapshots."""
        result: dict[str, list[dict]] = {}
        for metric in self.metrics():
            result.setdefault(metric.name, []).append(metric.snapshot())
        return result

    def reset(self) -> None:
        """Zero every metric (identities survive, handles stay valid)."""
        with self._lock:
            metrics: Iterable[Metric] = list(self._metrics.values())
        for metric in metrics:
            metric.reset()
