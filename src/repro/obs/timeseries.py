"""Retained telemetry: bounded ring-buffer time series over the registry.

The paper's §7 operations story is an archive team watching a *moving
target* over years; a point-in-time ``/hedc/metrics`` snapshot cannot
show movement.  This module keeps *history* — without ever touching the
hot path:

* :class:`TimeSeriesStore` — per-metric ring buffers in resolution/
  retention **tiers** (default 1 s × 5 min fine, 15 s × 1 h coarse), with
  ``delta()``, ``rate()`` and windowed-quantile queries that answer
  :data:`~repro.obs.metrics.NO_DATA` instead of fabricating zeros;
* :class:`TelemetryCollector` — a background thread that *reads* the
  :class:`~repro.obs.metrics.MetricsRegistry` every ``interval_s`` and
  appends the samples.  Instrumented code never writes history; the
  collector-on cost to a hot ``metadb`` execute is guarded <5% by
  ``benchmarks/test_timeseries_overhead.py``;
* :func:`sample_runtime` — process gauges (RSS, thread count, GC
  collections, uptime, open WAL handles) refreshed on every collector
  tick and by :func:`runtime_report`;
* :func:`sparkline` — unicode block rendering for ``/hedc/dashboard``.

Everything is injectable-clock friendly: tests drive
:meth:`TelemetryCollector.sample_once` with explicit timestamps and
never need a real thread.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Callable, Optional, Sequence

from .metrics import NO_DATA, Histogram

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hub import Observability

#: Default ring-buffer tiers: ``(resolution_s, retention_s)`` pairs,
#: finest first.  1 s samples for the last five minutes (incident
#: triage), 15 s samples for the last hour (trend spotting).
DEFAULT_TIERS: tuple[tuple[float, float], ...] = ((1.0, 300.0), (15.0, 3600.0))

_LabelsKey = tuple[tuple[str, str], ...]
_SeriesKey = tuple[str, _LabelsKey, str]

_PROCESS_STARTED = time.monotonic()


def _labels_key(labels: dict[str, str]) -> _LabelsKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Series:
    """One field's history across every retention tier.

    Each tier is a ``deque(maxlen=retention/resolution)`` of ``(t,
    value)`` points; a sample is appended to a tier only when at least
    one resolution step has passed since the tier's newest point, so the
    coarse tier holds a strided subsample of the fine one.
    """

    __slots__ = ("_tiers", "born")

    def __init__(self, tiers: Sequence[tuple[float, float]]):
        self._tiers: list[tuple[float, deque]] = [
            (resolution, deque(maxlen=max(2, int(retention / resolution))))
            for resolution, retention in tiers
        ]
        #: Timestamp of the very first sample — lets windowed deltas
        #: credit a counter born mid-window with its full value (counters
        #: start at zero, so everything it holds accrued since birth).
        self.born: Optional[float] = None

    def record(self, t: float, value: Any) -> None:
        if self.born is None:
            self.born = t
        for resolution, points in self._tiers:
            if not points or t - points[-1][0] >= resolution - 1e-9:
                points.append((t, value))

    def _pick_tier(self, window_s: Optional[float], now: float) -> deque:
        """The finest tier whose history reaches back to the window
        start (or to the series' birth, whichever is later)."""
        populated = [(res, pts) for res, pts in self._tiers if pts]
        if not populated:
            return deque()
        if window_s is None:
            return populated[0][1]
        start = now - window_s
        birth = min(points[0][0] for _resolution, points in populated)
        target = max(start, birth)
        for resolution, points in populated:
            if points[0][0] <= target + resolution:
                return points
        return populated[-1][1]

    def points(
        self, window_s: Optional[float] = None, now: Optional[float] = None
    ) -> list[tuple[float, Any]]:
        """Points inside the window (all retained points when ``None``),
        led by the last point *at or before* the window start — the
        baseline a delta measures growth from."""
        populated = [points for _resolution, points in self._tiers if points]
        if not populated:
            return []
        if now is None:
            now = max(points[-1][0] for points in populated)
        tier = self._pick_tier(window_s, now)
        if window_s is None:
            return list(tier)
        start = now - window_s
        result: list[tuple[float, Any]] = []
        anchor: Optional[tuple[float, Any]] = None
        for point in tier:
            if point[0] <= start + 1e-9:
                anchor = point
            elif point[0] <= now + 1e-9:
                result.append(point)
        if anchor is not None:
            result.insert(0, anchor)
        return result

    def latest(self) -> Any:
        for _resolution, points in self._tiers:
            if points:
                return points[-1][1]
        return NO_DATA


class TimeSeriesStore:
    """Keyed ring buffers: ``(metric name, labels, field) -> Series``.

    Readers get plain lists/floats; every query that lacks enough points
    to answer honestly returns :data:`NO_DATA`.
    """

    def __init__(self, tiers: Sequence[tuple[float, float]] = DEFAULT_TIERS):
        self.tiers = tuple(tiers)
        self._series: dict[_SeriesKey, Series] = {}
        #: Histogram bucket bounds per (name, labels) — recorded once so
        #: windowed quantiles can interpolate.
        self._bounds: dict[tuple[str, _LabelsKey], tuple[float, ...]] = {}
        self._lock = threading.Lock()

    # -- writing (collector only) ---------------------------------------------

    def record(
        self, name: str, labels: dict[str, str], field: str, t: float, value: Any
    ) -> None:
        key = (name, _labels_key(labels), field)
        series = self._series.get(key)
        if series is None:
            with self._lock:
                series = self._series.setdefault(key, Series(self.tiers))
        series.record(t, value)

    def record_bounds(
        self, name: str, labels: dict[str, str], bounds: Sequence[float]
    ) -> None:
        self._bounds.setdefault((name, _labels_key(labels)), tuple(bounds))

    # -- reading ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._series)

    def names(self) -> list[str]:
        with self._lock:
            return sorted({name for name, _labels, _field in self._series})

    def label_sets(self, name: str) -> list[dict[str, str]]:
        """Every label set a metric family has series for."""
        with self._lock:
            seen = {
                labels for n, labels, _field in self._series if n == name
            }
        return [dict(labels) for labels in sorted(seen)]

    def _get(self, name: str, labels: dict[str, str], field: str) -> Optional[Series]:
        return self._series.get((name, _labels_key(labels), field))

    def series(
        self,
        name: str,
        field: str = "value",
        window_s: Optional[float] = None,
        now: Optional[float] = None,
        **labels: str,
    ) -> list[tuple[float, Any]]:
        found = self._get(name, labels, field)
        return found.points(window_s, now) if found is not None else []

    def latest(self, name: str, field: str = "value", **labels: str) -> Any:
        found = self._get(name, labels, field)
        return found.latest() if found is not None else NO_DATA

    def delta(
        self,
        name: str,
        window_s: float,
        now: Optional[float] = None,
        field: str = "value",
        **labels: str,
    ) -> float:
        """Value change across the window — the counter increment.

        A series *born* inside the window contributes its full value
        (counters start at zero, so everything accrued since birth is
        in-window growth); otherwise two points are needed and the
        answer is anchored at the last sample before the window."""
        found = self._get(name, labels, field)
        if found is None:
            return NO_DATA
        points = found.points(window_s, now)
        if not points:
            return NO_DATA
        end_t, end_value = points[-1]
        reference = now if now is not None else end_t
        if found.born is not None and found.born >= reference - window_s:
            return end_value
        if len(points) < 2:
            return NO_DATA
        return end_value - points[0][1]

    def rate(
        self,
        name: str,
        window_s: float,
        now: Optional[float] = None,
        field: str = "value",
        **labels: str,
    ) -> float:
        """Per-second increase over the window (counters)."""
        points = self.series(name, field=field, window_s=window_s, now=now, **labels)
        if len(points) < 2:
            return NO_DATA
        dt = points[-1][0] - points[0][0]
        if dt <= 0:
            return NO_DATA
        return (points[-1][1] - points[0][1]) / dt

    def family_delta(
        self,
        name: str,
        window_s: float,
        now: Optional[float] = None,
        field: str = "value",
        where: Optional[Callable[[dict[str, str]], bool]] = None,
    ) -> float:
        """Sum of per-label-set deltas across a family, or
        :data:`NO_DATA` when no series could answer."""
        total = 0.0
        answered = False
        for labels in self.label_sets(name):
            if where is not None and not where(labels):
                continue
            change = self.delta(name, window_s, now=now, field=field, **labels)
            if change is NO_DATA:
                continue
            total += change
            answered = True
        return total if answered else NO_DATA

    def bucket_delta(
        self,
        name: str,
        window_s: float,
        now: Optional[float] = None,
        **labels: str,
    ) -> Optional[tuple[tuple[float, ...], list[int]]]:
        """Histogram bucket increments over the window:
        ``(bounds, per-bucket counts)``, or ``None`` without data.

        Like :meth:`delta`, a histogram born inside the window counts
        from all-zero buckets."""
        found = self._get(name, labels, "buckets")
        bounds = self._bounds.get((name, _labels_key(labels)))
        if found is None or bounds is None:
            return None
        points = found.points(window_s, now)
        if not points:
            return None
        end_t, last = points[-1]
        reference = now if now is not None else end_t
        if found.born is not None and found.born >= reference - window_s:
            first: Sequence[int] = (0,) * len(last)
        elif len(points) >= 2:
            first = points[0][1]
        else:
            return None
        return bounds, [max(0, b - a) for a, b in zip(first, last)]

    def window_quantile(
        self,
        name: str,
        q: float,
        window_s: float,
        now: Optional[float] = None,
        **labels: str,
    ) -> float:
        """The q-quantile of observations made *inside* the window,
        estimated from bucket-count deltas (linear interpolation inside
        the covering bucket, like :meth:`Histogram.quantile`)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        delta = self.bucket_delta(name, window_s, now=now, **labels)
        if delta is None:
            return NO_DATA
        bounds, counts = delta
        total = sum(counts)
        if total == 0:
            return NO_DATA
        target = q * total
        cumulative = 0.0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else bounds[-1]
            if cumulative + count >= target:
                fraction = (target - cumulative) / count
                return lower + fraction * (upper - lower)
            cumulative += count
        return bounds[-1]

    def window_under(
        self,
        name: str,
        threshold: float,
        window_s: float,
        now: Optional[float] = None,
        **labels: str,
    ) -> tuple[float, float]:
        """``(observations <= threshold, total observations)`` inside the
        window — the latency-SLO numerator/denominator.  The covering
        bucket contributes pro-rata (linear within the bucket)."""
        delta = self.bucket_delta(name, window_s, now=now, **labels)
        if delta is None:
            return NO_DATA, NO_DATA
        bounds, counts = delta
        total = float(sum(counts))
        good = 0.0
        for index, count in enumerate(counts):
            if count == 0:
                continue
            lower = bounds[index - 1] if index > 0 else 0.0
            upper = bounds[index] if index < len(bounds) else None
            if upper is not None and upper <= threshold:
                good += count
            elif lower < threshold and upper is not None:
                good += count * (threshold - lower) / (upper - lower)
            # overflow bucket (upper None): above every bound -> not good
        return good, total

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            self._bounds.clear()


# -- process runtime gauges ----------------------------------------------------

def _rss_bytes() -> Optional[int]:
    try:
        with open("/proc/self/statm", encoding="ascii") as handle:
            pages = int(handle.read().split()[1])
        return pages * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        try:
            import resource

            return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
        except Exception:
            return None


def sample_runtime(obs: "Observability") -> dict[str, Any]:
    """Refresh the ``process.*`` gauges and return their values.

    Called on every collector tick (so the TSDB retains RSS/thread/GC
    history) and synchronously by :func:`runtime_report` (so the panel is
    current even in deployments that never started a collector)."""
    report: dict[str, Any] = {}
    rss = _rss_bytes()
    if rss is not None:
        obs.set_gauge("process.rss_bytes", rss)
        report["rss_bytes"] = rss
    threads = threading.active_count()
    obs.set_gauge("process.threads", threads)
    report["threads"] = threads
    collections = {}
    for generation, stats in enumerate(gc.get_stats()):
        count = stats.get("collections", 0)
        obs.set_gauge("process.gc_collections", count, generation=str(generation))
        collections[generation] = count
    report["gc_collections"] = collections
    uptime_s = time.monotonic() - _PROCESS_STARTED
    obs.set_gauge("process.uptime_s", uptime_s)
    report["uptime_s"] = uptime_s
    try:
        # Lazy: repro.metadb imports repro.obs, never the reverse at
        # module scope.
        from ..metadb.wal import open_wal_handles
    except Exception:  # pragma: no cover - partial installs
        pass
    else:
        handles = open_wal_handles()
        obs.set_gauge("process.open_wal_handles", handles)
        report["open_wal_handles"] = handles
    return report


def runtime_report(obs: "Observability") -> dict[str, Any]:
    """A fresh sample of the process-runtime gauges, JSON-ready."""
    return sample_runtime(obs)


# -- the collector -------------------------------------------------------------

class TelemetryCollector:
    """Background sampler feeding the :class:`TimeSeriesStore`.

    One instance rides on every :class:`~repro.obs.hub.Observability`
    hub, thread-less until :meth:`start` — exactly like the sampling
    profiler.  Each tick it:

    1. runs registered *samplers* (runtime gauges, canary probes) so
       their gauges are current;
    2. walks the registry and appends counter/gauge values and histogram
       ``count``/``sum``/bucket snapshots to the store;
    3. asks the hub's :class:`~repro.obs.slo.SloManager` to re-evaluate
       burn rates against the fresh history.

    The hot path never writes history — the collector reads.  Tests call
    :meth:`sample_once` with explicit ``now`` timestamps instead of
    starting the thread.
    """

    def __init__(
        self,
        obs: "Observability",
        interval_s: float = 1.0,
        tiers: Sequence[tuple[float, float]] = DEFAULT_TIERS,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.obs = obs
        self.interval_s = interval_s
        self.clock = clock
        self.store = TimeSeriesStore(tiers)
        self.samples = 0
        self.last_sample_s = 0.0
        self._samplers: list[Callable[[float], None]] = [
            lambda _now: sample_runtime(self.obs)
        ]
        self._thread: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._sample_lock = threading.Lock()

    # -- samplers --------------------------------------------------------------

    def add_sampler(self, sampler: Callable[[float], None]) -> None:
        """Register ``sampler(now)`` to run at the top of every tick."""
        self._samplers.append(sampler)

    # -- sampling --------------------------------------------------------------

    def sample_once(self, now: Optional[float] = None) -> float:
        """Take one sample (thread-safe); returns the sample timestamp."""
        with self._sample_lock:
            if now is None:
                now = self.clock()
            started = time.perf_counter()
            for sampler in list(self._samplers):
                try:
                    sampler(now)
                except Exception:
                    self.obs.count("obs.collector.sampler_errors")
            store = self.store
            for metric in self.obs.registry.metrics():
                if isinstance(metric, Histogram):
                    store.record_bounds(metric.name, metric.labels, metric.bounds)
                    store.record(metric.name, metric.labels, "count", now,
                                 metric.count)
                    store.record(metric.name, metric.labels, "sum", now,
                                 metric.sum)
                    store.record(metric.name, metric.labels, "buckets", now,
                                 metric.bucket_counts())
                else:
                    store.record(metric.name, metric.labels, "value", now,
                                 metric.value)
            self.samples += 1
            self.last_sample_s = time.perf_counter() - started
            slo = getattr(self.obs, "slo", None)
            if slo is not None:
                slo.evaluate(now=now, store=store)
            return now

    # -- thread lifecycle ------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, interval_s: Optional[float] = None) -> "TelemetryCollector":
        """Start the background thread (idempotent).  Installs the
        calibration-seeded default SLOs if none were defined."""
        if interval_s is not None:
            self.interval_s = interval_s
        slo = getattr(self.obs, "slo", None)
        if slo is not None:
            slo.ensure_defaults()
        if self.running:
            return self
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._run, name=f"obs-collector-{self.obs.name}", daemon=True
        )
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop_event.is_set():
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - defensive
                self.obs.count("obs.collector.sample_errors")
            self._stop_event.wait(self.interval_s)

    def stop(self) -> None:
        self._stop_event.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    def reset(self) -> None:
        """Drop history and counters (the thread, if any, keeps running)."""
        self.store.reset()
        self.samples = 0
        self.last_sample_s = 0.0

    def report(self) -> dict[str, Any]:
        return {
            "running": self.running,
            "interval_s": self.interval_s,
            "samples": self.samples,
            "last_sample_s": self.last_sample_s,
            "series": len(self.store),
            "tiers": [
                {"resolution_s": resolution, "retention_s": retention}
                for resolution, retention in self.store.tiers
            ],
        }


# -- sparklines ----------------------------------------------------------------

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 32) -> str:
    """Render values as a unicode sparkline (empty input -> ``""``).

    NaN/:data:`NO_DATA` entries render as spaces; the series is resampled
    (last-value) down to ``width`` characters when longer."""
    cleaned = [float(v) for v in values]
    if not cleaned:
        return ""
    if len(cleaned) > width:
        stride = len(cleaned) / width
        cleaned = [cleaned[min(len(cleaned) - 1, int(i * stride))]
                   for i in range(width)]
    finite = [v for v in cleaned if v == v]
    if not finite:
        return " " * len(cleaned)
    low, high = min(finite), max(finite)
    span = high - low
    chars = []
    for value in cleaned:
        if value != value:  # NaN / NO_DATA
            chars.append(" ")
            continue
        if span <= 0:
            chars.append(_SPARK_BLOCKS[0])
            continue
        index = int((value - low) / span * (len(_SPARK_BLOCKS) - 1))
        chars.append(_SPARK_BLOCKS[index])
    return "".join(chars)
