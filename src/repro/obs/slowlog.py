"""Per-subsystem slow-operation capture with rich, per-tier detail.

A latency histogram says "p99 spiked"; the slow log says *which*
operation was slow and carries the evidence a human needs to act:

* ``metadb.execute`` entries attach the chosen :meth:`explain_plan` dict
  and the statement/predicate text;
* ``pl.run`` entries attach the algorithm and the canonical parameter
  fingerprint (the product-cache key);
* ``dm.name_mapping`` entries attach the item id and whether the
  construction came up empty (a miss — usually a stale location tuple).

Cost model: unconfigured subsystems pay **one dict lookup** per call
(:meth:`SlowLog.threshold_for` returns ``None`` and the call site takes
its normal fast path), so the slow log is default-off in the same sense
as tracing.  Configured subsystems pay one ``perf_counter`` pair, and
only actual slow ops pay for detail capture.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Optional


class SlowOp:
    """One captured slow operation."""

    __slots__ = ("name", "duration_s", "threshold_s", "t_monotonic",
                 "trace_id", "span_id", "detail")

    def __init__(
        self,
        name: str,
        duration_s: float,
        threshold_s: float,
        trace_id: Optional[int] = None,
        span_id: Optional[int] = None,
        detail: Optional[dict[str, Any]] = None,
    ):
        self.name = name
        self.duration_s = duration_s
        self.threshold_s = threshold_s
        self.t_monotonic = time.monotonic()
        self.trace_id = trace_id
        self.span_id = span_id
        self.detail: dict[str, Any] = detail or {}

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "duration_s": self.duration_s,
            "threshold_s": self.threshold_s,
            "t_monotonic": self.t_monotonic,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "detail": dict(self.detail),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SlowOp({self.name!r}, {self.duration_s * 1e3:.1f}ms)"


class SlowLog:
    """Thresholded capture of slow operations, bounded per process.

    Thresholds are keyed by subsystem name (``metadb.execute``,
    ``dm.name_mapping``, ``pl.run``, ``pl.invoke``, ``web.handle``).
    No thresholds configured → every call site short-circuits.
    """

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("slow log capacity must be >= 1")
        self._thresholds: dict[str, float] = {}
        self._records: deque[SlowOp] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.total_recorded = 0

    # -- configuration ---------------------------------------------------------

    def configure(self, name: str, threshold_s: Optional[float]) -> None:
        """Set (or with ``None`` remove) the slow threshold for ``name``."""
        if threshold_s is None:
            self._thresholds.pop(name, None)
            return
        if threshold_s < 0:
            raise ValueError("threshold must be >= 0")
        self._thresholds[name] = threshold_s

    def threshold_for(self, name: str) -> Optional[float]:
        """The configured threshold, or ``None`` — the hot-path check."""
        return self._thresholds.get(name)

    @property
    def active(self) -> bool:
        return bool(self._thresholds)

    def thresholds(self) -> dict[str, float]:
        return dict(self._thresholds)

    # -- recording -------------------------------------------------------------

    def record(
        self,
        name: str,
        duration_s: float,
        threshold_s: float,
        trace_id: Optional[int] = None,
        span_id: Optional[int] = None,
        **detail: Any,
    ) -> SlowOp:
        op = SlowOp(name, duration_s, threshold_s, trace_id=trace_id,
                    span_id=span_id, detail=detail or None)
        with self._lock:
            self._records.append(op)
            self.total_recorded += 1
        return op

    # -- reading ---------------------------------------------------------------

    def records(self, name: Optional[str] = None,
                limit: Optional[int] = None) -> list[SlowOp]:
        """Retained slow ops, oldest first, optionally filtered by name."""
        with self._lock:
            records = list(self._records)
        if name is not None:
            records = [record for record in records if record.name == name]
        if limit is not None:
            records = records[-limit:]
        return records

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def snapshot(self, limit: Optional[int] = None) -> list[dict[str, Any]]:
        return [record.to_dict() for record in self.records(limit=limit)]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
