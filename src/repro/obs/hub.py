"""The observability hub: one registry + one tracer + one switch.

Every component accepts an optional ``obs`` argument and defaults to the
process-wide hub, so ad-hoc assemblies share one instrument panel while
a full :class:`~repro.core.Hedc` deployment owns a private hub and
threads it through all three tiers.

Cost model: **metrics are always on** (a counter increment or histogram
observation is a lock plus an add — negligible next to a DM query),
while **tracing is off by default** — :meth:`Observability.span` returns
a reusable no-op context manager until :meth:`enable` is called, so the
default-off overhead on the request path stays unmeasurable.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Sequence

from .events import EventLog
from .health import HealthMonitor
from .metrics import Counter, Gauge, Histogram, MetricsRegistry
from .profile import SamplingProfiler
from .slo import SloManager
from .slowlog import SlowLog
from .timeseries import TelemetryCollector
from .trace import NULL_SPAN_CONTEXT, Span, Tracer


class Timed:
    """Context manager that always feeds a histogram and, when tracing
    is enabled, also opens a same-named span.  Exposes ``elapsed_s``."""

    __slots__ = ("_hub", "_name", "_labels", "_span_cm", "_started", "elapsed_s", "span")

    def __init__(self, hub: "Observability", name: str, labels: dict[str, str]):
        self._hub = hub
        self._name = name
        self._labels = labels
        self._span_cm = None
        self.elapsed_s: float = 0.0
        self.span = None

    def __enter__(self) -> "Timed":
        if self._hub.enabled:
            self._span_cm = self._hub.tracer.span(self._name, **self._labels)
            self.span = self._span_cm.__enter__()
        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed_s = time.perf_counter() - self._started
        histogram = self._hub.registry.histogram(self._name, **self._labels)
        span = self.span
        if span is not None:
            histogram.observe(self.elapsed_s,
                              exemplar=(span.trace_id, span.span_id))
        else:
            histogram.observe(self.elapsed_s)
        if self._span_cm is not None:
            return bool(self._span_cm.__exit__(exc_type, exc, tb))
        return False


class Observability:
    """A registry, a tracer, and the enabled switch binding them.

    The deep-diagnostics layer rides on the same hub: a bounded
    :class:`~repro.obs.events.EventLog` (always available — emissions
    only happen at rare state transitions), a
    :class:`~repro.obs.slowlog.SlowLog` (off until a threshold is
    configured) and a :class:`~repro.obs.profile.SamplingProfiler` (off
    until started; owns no thread while stopped).
    """

    def __init__(self, enabled: bool = False, max_finished_spans: int = 256,
                 name: str = "obs"):
        self.name = name
        self.enabled = enabled
        self.registry = MetricsRegistry()
        self.tracer = Tracer(max_finished=max_finished_spans, name=name)
        self.events = EventLog()
        self.slowlog = SlowLog()
        self.profiler = SamplingProfiler()
        # Retained telemetry (PR-10): SLO evaluation and the health
        # rollup ride the collector; all three own no thread until
        # ``collector.start()``.
        self.slo = SloManager(self)
        self.health = HealthMonitor(self)
        self.collector = TelemetryCollector(self)

    # -- switch ----------------------------------------------------------------

    def enable(self) -> "Observability":
        self.enabled = True
        return self

    def disable(self) -> "Observability":
        self.enabled = False
        return self

    def reset(self) -> None:
        self.registry.reset()
        self.tracer.reset()
        self.events.clear()
        self.slowlog.clear()
        self.profiler.reset()
        self.collector.reset()
        self.slo.reset()

    # -- metric shortcuts (always on) ------------------------------------------

    def counter(self, name: str, **labels: str) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None,
                  **labels: str) -> Histogram:
        return self.registry.histogram(name, bounds=bounds, **labels)

    def count(self, name: str, amount: float = 1, **labels: str) -> None:
        self.registry.counter(name, **labels).inc(amount)

    def observe(self, name: str, value: float, **labels: str) -> None:
        """Feed a histogram; when tracing is on and a span is current the
        observation carries an exemplar linking bucket → trace."""
        histogram = self.registry.histogram(name, **labels)
        if self.enabled:
            span = self.tracer.current()
            if span is not None:
                histogram.observe(value, exemplar=(span.trace_id, span.span_id))
                return
        histogram.observe(value)

    def set_gauge(self, name: str, value: float, **labels: str) -> None:
        self.registry.gauge(name, **labels).set(value)

    # -- tracing (gated by ``enabled``) ----------------------------------------

    def span(self, name: str, **tags: Any):
        """A span context manager, or a shared no-op when disabled."""
        if not self.enabled:
            return NULL_SPAN_CONTEXT
        return self.tracer.span(name, **tags)

    def current_span(self) -> Optional[Span]:
        return self.tracer.current() if self.enabled else None

    def timed(self, name: str, **labels: str) -> Timed:
        """Histogram timing (always) plus a span (when enabled)."""
        return Timed(self, name, labels)

    # -- diagnostics -----------------------------------------------------------

    def event(self, severity: str, component: str, kind: str,
              message: str = "", **fields: Any):
        """Emit a structured event, correlated to the current trace/span
        when tracing is enabled."""
        trace_id = span_id = None
        if self.enabled:
            span = self.tracer.current()
            if span is not None:
                trace_id, span_id = span.trace_id, span.span_id
        return self.events.emit(severity, component, kind, message,
                                trace_id=trace_id, span_id=span_id, **fields)

    def slow_op(self, name: str, duration_s: float, threshold_s: float,
                **detail: Any):
        """Record a slow operation, correlated like :meth:`event`."""
        trace_id = span_id = None
        if self.enabled:
            span = self.tracer.current()
            if span is not None:
                trace_id, span_id = span.trace_id, span.span_id
        return self.slowlog.record(name, duration_s, threshold_s,
                                   trace_id=trace_id, span_id=span_id, **detail)


#: The process-wide default hub; components fall back to it when no hub
#: is passed explicitly.  Disabled (no tracing) by default.
DEFAULT = Observability(name="default")


def get_default() -> Observability:
    return DEFAULT


def resolve(obs: Optional[Observability]) -> Observability:
    """The hub to use: the explicit one, or the process default."""
    return obs if obs is not None else DEFAULT


def enable() -> Observability:
    """Switch the process-default hub's tracing on."""
    return DEFAULT.enable()


def disable() -> Observability:
    return DEFAULT.disable()
