"""Declarative SLOs, error budgets and multi-window burn-rate alerts.

The ROADMAP's >1M-user projection is a promise; this module is the
ledger.  Each :class:`Slo` names an objective over a measurable signal —
per-priority-class availability and latency seeded from the
:mod:`repro.evalmodel` calibration, or any bad/total counter ratio — and
the :class:`SloManager` re-evaluates every objective on each collector
tick against the retained telemetry in the
:class:`~repro.obs.timeseries.TimeSeriesStore`.

Alerting follows the multi-window burn-rate recipe: the **fast** window
(minutes) catches cliffs quickly, the **slow** window (tens of minutes)
catches slow leaks without paging on blips.  ``burn`` is the rate at
which the error budget is being spent relative to plan — ``bad_fraction /
(1 - objective)`` — so burn 1.0 spends exactly the budget over the SLO
period and burn 14 exhausts a 30-day budget in ~2 days.  Alerts have
**hysteresis**: once firing, an alert clears only after the burn stays
below ``clear_burn_threshold`` for ``clear_after_s`` — and a window with
:data:`~repro.obs.metrics.NO_DATA` never clears anything (absence of
evidence is not recovery).  Transitions fire structured events into the
PR-5 event log with an attributed cause from the health rollup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Optional

from .metrics import NO_DATA

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hub import Observability
    from .timeseries import TimeSeriesStore

#: Default multi-window geometry (seconds) and burn thresholds — scaled
#: to the default 1 s × 5 min / 15 s × 1 h retention tiers.
DEFAULT_FAST_WINDOW_S = 60.0
DEFAULT_SLOW_WINDOW_S = 600.0
DEFAULT_FAST_BURN = 14.0
DEFAULT_SLOW_BURN = 6.0


@dataclass(frozen=True)
class Slo:
    """One declarative objective.

    ``kind`` selects the measurement source:

    * ``"availability"`` — non-5xx fraction of ``web.responses`` for the
      routes in ``route_class`` (classified like the admission
      controller classifies them);
    * ``"latency"`` — fraction of ``web.request_s`` observations at or
      under ``threshold_s`` for the routes in ``route_class``, from
      windowed bucket-count deltas;
    * ``"ratio"`` — generic ``1 - bad/total`` over any two counter
      families (e.g. ``metadb.shard.degraded`` / ``metadb.shard.route``
      for data-tier read completeness).
    """

    name: str
    kind: str  # "availability" | "latency" | "ratio"
    objective: float  # e.g. 0.99 -> 1% error budget
    description: str = ""
    #: Priority class for availability/latency kinds ("browse", ...).
    route_class: Optional[str] = None
    #: Latency threshold for the "latency" kind.
    threshold_s: Optional[float] = None
    #: Counter families for the "ratio" kind.
    bad_family: Optional[str] = None
    total_family: Optional[str] = None
    fast_window_s: float = DEFAULT_FAST_WINDOW_S
    slow_window_s: float = DEFAULT_SLOW_WINDOW_S
    fast_burn_threshold: float = DEFAULT_FAST_BURN
    slow_burn_threshold: float = DEFAULT_SLOW_BURN
    #: Hysteresis: a firing alert clears only after the burn stays below
    #: this for ``clear_after_s`` seconds of evaluations.
    clear_burn_threshold: float = 1.0
    clear_after_s: float = 30.0
    #: Windows with fewer events than this cannot fire (tiny-sample
    #: burns are noise, not incidents).
    min_events: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind not in ("availability", "latency", "ratio"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and self.threshold_s is None:
            raise ValueError("latency SLOs need threshold_s")
        if self.kind == "ratio" and not (self.bad_family and self.total_family):
            raise ValueError("ratio SLOs need bad_family and total_family")
        if self.kind in ("availability", "latency") and self.route_class is None:
            raise ValueError(f"{self.kind} SLOs need route_class")

    @property
    def budget_fraction(self) -> float:
        return 1.0 - self.objective


def default_slos() -> list[Slo]:
    """The calibration-seeded objectives: availability and latency per
    priority class, with latency thresholds derived from the §7.2
    measured DB service time."""
    # Lazy: evalmodel is a leaf package; obs must import without it.
    from ..evalmodel.calibration import (
        SLO_AVAILABILITY,
        SLO_LATENCY_OBJECTIVE,
        SLO_LATENCY_S,
    )

    slos: list[Slo] = []
    for cls, objective in SLO_AVAILABILITY.items():
        slos.append(Slo(
            name=f"{cls}-availability",
            kind="availability",
            objective=objective,
            route_class=cls,
            description=f"non-5xx fraction for {cls}-class routes",
        ))
    for cls, threshold_s in SLO_LATENCY_S.items():
        slos.append(Slo(
            name=f"{cls}-latency",
            kind="latency",
            objective=SLO_LATENCY_OBJECTIVE,
            route_class=cls,
            threshold_s=threshold_s,
            description=(
                f"{cls}-class requests under {threshold_s * 1000:.0f} ms"
            ),
        ))
    return slos


@dataclass
class Alert:
    """Mutable per-(SLO, window) alert state with hysteresis."""

    slo: str
    window: str  # "fast" | "slow"
    state: str = "ok"  # "ok" | "firing"
    since: Optional[float] = None
    burn: float = field(default_factory=lambda: NO_DATA)
    cause: str = ""
    #: When the burn first dipped below the clear threshold (hysteresis
    #: anchor); reset whenever it climbs back or the window goes NO_DATA.
    below_since: Optional[float] = None
    fired: int = 0
    cleared: int = 0

    def to_dict(self) -> dict[str, Any]:
        burn = self.burn
        return {
            "slo": self.slo,
            "window": self.window,
            "state": self.state,
            "since": self.since,
            "burn": None if burn is NO_DATA else burn,
            "cause": self.cause,
            "fired": self.fired,
            "cleared": self.cleared,
        }


def _route_class(route: str) -> str:
    from ..web.scheduler import classify_route

    return classify_route(route)


class SloManager:
    """Evaluates every defined :class:`Slo` against retained telemetry.

    Driven by :meth:`~repro.obs.timeseries.TelemetryCollector.sample_once`
    after each sample; tests can call :meth:`evaluate` directly with a
    synthetic clock.  ``cause_resolver`` (wired by the web server to the
    health rollup) turns a firing alert into an attributed cause string.
    """

    def __init__(self, obs: "Observability"):
        self.obs = obs
        self.slos: dict[str, Slo] = {}
        self._alerts: dict[tuple[str, str], Alert] = {}
        self._last: dict[str, dict[str, Any]] = {}
        self.cause_resolver: Optional[Callable[[Slo, str], str]] = None
        self.evaluations = 0

    # -- definitions -----------------------------------------------------------

    def define(self, slo: Slo) -> Slo:
        self.slos[slo.name] = slo
        for window in ("fast", "slow"):
            self._alerts.setdefault((slo.name, window), Alert(slo.name, window))
        return slo

    def ensure_defaults(self) -> None:
        """Install the calibration-seeded SLOs unless some were already
        defined (explicit definitions win wholesale)."""
        if not self.slos:
            for slo in default_slos():
                self.define(slo)

    def reset(self) -> None:
        self.slos.clear()
        self._alerts.clear()
        self._last.clear()
        self.evaluations = 0

    # -- measurement -----------------------------------------------------------

    def _measure(
        self, slo: Slo, store: "TimeSeriesStore", window_s: float,
        now: Optional[float],
    ) -> tuple[float, float]:
        """``(bad, total)`` events inside the window, or ``(NO_DATA,
        NO_DATA)`` when the telemetry cannot answer."""
        if slo.kind == "ratio":
            bad = store.family_delta(slo.bad_family, window_s, now=now)
            total = store.family_delta(slo.total_family, window_s, now=now)
            if total is NO_DATA:
                return NO_DATA, NO_DATA
            return (0.0 if bad is NO_DATA else bad), total
        if slo.kind == "availability":
            bad = total = 0.0
            answered = False
            for labels in store.label_sets("web.responses"):
                route = labels.get("route", "")
                if _route_class(route) != slo.route_class:
                    continue
                delta = store.delta("web.responses", window_s, now=now, **labels)
                if delta is NO_DATA:
                    continue
                answered = True
                total += delta
                try:
                    status = int(labels.get("status", "0"))
                except ValueError:
                    status = 0
                if status >= 500:
                    bad += delta
            return (bad, total) if answered else (NO_DATA, NO_DATA)
        # latency: good/total from histogram bucket deltas.
        good = total = 0.0
        answered = False
        for labels in store.label_sets("web.request_s"):
            if _route_class(labels.get("route", "")) != slo.route_class:
                continue
            under, seen = store.window_under(
                "web.request_s", slo.threshold_s, window_s, now=now, **labels
            )
            if seen is NO_DATA:
                continue
            answered = True
            good += under
            total += seen
        if not answered:
            return NO_DATA, NO_DATA
        return total - good, total

    @staticmethod
    def _burn(slo: Slo, bad: float, total: float) -> float:
        if total is NO_DATA or bad is NO_DATA or total <= 0:
            return NO_DATA
        return (bad / total) / slo.budget_fraction

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, now: float, store: "TimeSeriesStore") -> None:
        self.evaluations += 1
        for slo in list(self.slos.values()):
            fast_bad, fast_total = self._measure(slo, store, slo.fast_window_s, now)
            slow_bad, slow_total = self._measure(slo, store, slo.slow_window_s, now)
            fast_burn = self._burn(slo, fast_bad, fast_total)
            slow_burn = self._burn(slo, slow_bad, slow_total)
            # Error budget over the full retained horizon (the longest
            # tier) — "how much of the budget is already gone".
            horizon = max(retention for _res, retention in store.tiers)
            budget_bad, budget_total = self._measure(slo, store, horizon, now)
            budget_used = self._burn(slo, budget_bad, budget_total)
            self._last[slo.name] = {
                "fast": {"bad": fast_bad, "total": fast_total, "burn": fast_burn},
                "slow": {"bad": slow_bad, "total": slow_total, "burn": slow_burn},
                "budget_used_fraction": budget_used,
            }
            self._advance(slo, "fast", fast_burn, slo.fast_burn_threshold,
                          fast_total, now)
            self._advance(slo, "slow", slow_burn, slo.slow_burn_threshold,
                          slow_total, now)

    def _advance(
        self, slo: Slo, window: str, burn: float, threshold: float,
        total: float, now: float,
    ) -> None:
        alert = self._alerts[(slo.name, window)]
        alert.burn = burn
        if alert.state == "ok":
            if (burn is not NO_DATA and burn >= threshold
                    and total is not NO_DATA and total >= slo.min_events):
                alert.state = "firing"
                alert.since = now
                alert.below_since = None
                alert.fired += 1
                alert.cause = self._resolve_cause(slo, window)
                self.obs.count("obs.slo.alerts_fired", slo=slo.name, window=window)
                self.obs.event(
                    "error", "obs", "slo.alert_fired",
                    f"{slo.name} {window}-window burn {burn:.1f}x "
                    f"(threshold {threshold:.1f}x)",
                    slo=slo.name, window=window, burn=burn,
                    threshold=threshold, cause=alert.cause,
                )
            return
        # firing: hysteresis — NO_DATA never clears, and the burn must
        # stay below the clear threshold for clear_after_s.
        if burn is NO_DATA or burn >= slo.clear_burn_threshold:
            alert.below_since = None
            return
        if alert.below_since is None:
            alert.below_since = now
        if now - alert.below_since >= slo.clear_after_s:
            alert.state = "ok"
            alert.cleared += 1
            self.obs.count("obs.slo.alerts_cleared", slo=slo.name, window=window)
            self.obs.event(
                "info", "obs", "slo.alert_cleared",
                f"{slo.name} {window}-window burn back under "
                f"{slo.clear_burn_threshold:.1f}x",
                slo=slo.name, window=window, burn=burn, cause=alert.cause,
            )
            alert.since = None
            alert.below_since = None
            alert.cause = ""

    def _resolve_cause(self, slo: Slo, window: str) -> str:
        if self.cause_resolver is None:
            return ""
        try:
            return self.cause_resolver(slo, window) or ""
        except Exception:
            return ""

    # -- reporting -------------------------------------------------------------

    def active_alerts(self) -> list[dict[str, Any]]:
        return [
            alert.to_dict()
            for alert in self._alerts.values()
            if alert.state == "firing"
        ]

    def alerts(self) -> list[dict[str, Any]]:
        return [alert.to_dict() for alert in
                sorted(self._alerts.values(), key=lambda a: (a.slo, a.window))]

    def report(self) -> dict[str, Any]:
        def _clean(value: Any) -> Any:
            return None if value is NO_DATA else value

        slos: dict[str, Any] = {}
        for name, slo in sorted(self.slos.items()):
            last = self._last.get(name, {})
            slos[name] = {
                "kind": slo.kind,
                "objective": slo.objective,
                "description": slo.description,
                "route_class": slo.route_class,
                "threshold_s": slo.threshold_s,
                "fast": {k: _clean(v) for k, v in
                         last.get("fast", {"burn": None}).items()},
                "slow": {k: _clean(v) for k, v in
                         last.get("slow", {"burn": None}).items()},
                "budget_used_fraction": _clean(last.get("budget_used_fraction")),
                "alerts": {
                    window: self._alerts[(name, window)].to_dict()
                    for window in ("fast", "slow")
                },
            }
        return {
            "evaluations": self.evaluations,
            "slos": slos,
            "active_alerts": self.active_alerts(),
        }
