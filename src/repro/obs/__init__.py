"""repro.obs — tracing and metrics for the whole repository.

The paper's operators could only reason about the "moving target"
because the middle tier was measurable (§7); this package makes every
tier of the reproduction measurable the same way:

* :class:`MetricsRegistry` with :class:`Counter`/:class:`Gauge`/
  :class:`Histogram` (streaming p50/p95/p99);
* :class:`Tracer` producing nested per-request span trees with
  contextvars propagation across threads;
* exporters (in-memory, line protocol, JSON snapshot);
* the :func:`instrument` decorator and :class:`Observability` hub that
  components thread through the tiers (``web`` → ``dm`` → ``metadb``,
  ``pl`` → ``idl``, ``streamcorder``).

Tracing is off by default (``Observability.enabled``); metrics always
collect, cheaply.  ``/hedc/metrics`` renders a deployment's registry and
:meth:`repro.dm.DataManager.telemetry_report` summarises it.
"""

from .events import SEVERITIES, Event, EventLog
from .health import DEGRADED, GREEN, RED, CanaryProbe, HealthMonitor
from .export import (
    InMemoryExporter,
    JsonExporter,
    LineProtocolExporter,
    to_json_snapshot,
    to_line_protocol,
)
from .hub import (
    DEFAULT,
    Observability,
    Timed,
    disable,
    enable,
    get_default,
    resolve,
)
from .instrument import instrument, timed
from .metrics import (
    NO_DATA,
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    NoData,
    default_latency_buckets,
)
from .profile import SamplingProfiler, critical_path, span_self_times, trace_profile
from .slo import Slo, SloManager, default_slos
from .slowlog import SlowLog, SlowOp
from .timeseries import (
    DEFAULT_TIERS,
    TelemetryCollector,
    TimeSeriesStore,
    runtime_report,
    sample_runtime,
    sparkline,
)
from .trace import NULL_SPAN, NULL_SPAN_CONTEXT, Span, Tracer
from .usage import (
    calibration_drift,
    page_characteristics,
    request_mix,
    tier_time_split,
    usage_report,
)

__all__ = [
    "CanaryProbe",
    "Counter",
    "DEFAULT",
    "DEFAULT_TIERS",
    "DEGRADED",
    "GREEN",
    "HealthMonitor",
    "NO_DATA",
    "NoData",
    "RED",
    "Slo",
    "SloManager",
    "TelemetryCollector",
    "TimeSeriesStore",
    "default_slos",
    "runtime_report",
    "sample_runtime",
    "sparkline",
    "Event",
    "EventLog",
    "SEVERITIES",
    "SamplingProfiler",
    "SlowLog",
    "SlowOp",
    "calibration_drift",
    "critical_path",
    "page_characteristics",
    "request_mix",
    "span_self_times",
    "tier_time_split",
    "trace_profile",
    "usage_report",
    "Gauge",
    "Histogram",
    "InMemoryExporter",
    "JsonExporter",
    "LineProtocolExporter",
    "Metric",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_SPAN_CONTEXT",
    "Observability",
    "Span",
    "Timed",
    "Tracer",
    "default_latency_buckets",
    "disable",
    "enable",
    "get_default",
    "instrument",
    "resolve",
    "timed",
    "to_json_snapshot",
    "to_line_protocol",
]
