"""Per-subsystem health rollup and the synthetic canary probe.

The dashboard's first line answers the only question an on-call operator
actually has: *is the archive healthy, and if not, why?*  The rollup
folds in what the system already knows about itself — breaker window
states, replica copy states and lag, shard ``PartialResult`` ranges,
admission-queue depth and shed rate, WAL recoveries — into one
``green``/``degraded``/``red`` verdict per subsystem, each with
**attributed causes** ("metadb shard 1 down (breaker open)"), never a
bare color.  The same causes feed the SLO alerts: when a burn-rate alert
fires, :meth:`HealthMonitor.attributed_cause` names the most-suspect
subsystem in the alert event.

The :class:`CanaryProbe` closes the telemetry blind spot the paper's
operators knew well: an idle archive and a dead archive serve the same
zero requests.  A tiny periodic request through web→DM→metadb keeps one
heartbeat series alive, so "no traffic" and "down" stop looking alike.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .hub import Observability

GREEN, DEGRADED, RED = "green", "degraded", "red"
_RANK = {GREEN: 0, DEGRADED: 1, RED: 2}

#: Admission-queue fill fraction at which serving turns degraded.
QUEUE_PRESSURE_FRACTION = 0.8
#: Queued requests per worker beyond which the backlog itself is a
#: cause, even in a deep queue far from its capacity limit.
QUEUE_BACKLOG_PER_WORKER = 4
#: Replica lag (entries) beyond which a copy is called out even while
#: the group still reports it ``in_sync``/``lagging``.
REPLICA_LAG_ATTENTION = 8


def _worst(a: str, b: str) -> str:
    return a if _RANK[a] >= _RANK[b] else b


class Subsystem:
    """Accumulates one subsystem's verdict and its reasons."""

    def __init__(self, name: str):
        self.name = name
        self.status = GREEN
        self.causes: list[str] = []
        self.detail: dict[str, Any] = {}

    def flag(self, status: str, cause: str) -> None:
        self.status = _worst(self.status, status)
        self.causes.append(cause)

    def to_dict(self) -> dict[str, Any]:
        body: dict[str, Any] = {"status": self.status, "causes": list(self.causes)}
        if self.detail:
            body["detail"] = self.detail
        return body


class HealthMonitor:
    """Rolls subsystem reports up into one attributed verdict.

    Sources are zero-arg callables returning the reports the servlets
    already build (``shard_report``/``repl_report``/``serving_report``)
    — wired by whoever owns them (:class:`~repro.web.server.WebServer`
    registers its own), so the obs package never imports the tiers it
    observes.
    """

    def __init__(self, obs: "Observability"):
        self.obs = obs
        self.sources: dict[str, Callable[[], Optional[dict[str, Any]]]] = {}

    def add_source(
        self, name: str, provider: Callable[[], Optional[dict[str, Any]]]
    ) -> None:
        """Register a report provider: ``"shard"``, ``"repl"`` or
        ``"serving"`` (unknown names are carried into the report
        verbatim as extra subsystems)."""
        self.sources[name] = provider

    def _pull(self, name: str) -> Optional[dict[str, Any]]:
        provider = self.sources.get(name)
        if provider is None:
            return None
        try:
            return provider()
        except Exception:
            return None

    # -- subsystem checks ------------------------------------------------------

    def _check_resilience(self) -> Subsystem:
        sub = Subsystem("resilience")
        # Lazy: repro.resil imports repro.obs; never the reverse at
        # module scope.
        from ..resil import breaker_report

        breakers = breaker_report(self.obs)
        open_names = []
        for name, snap in breakers.items():
            if snap["state"] == "open":
                open_names.append(name)
                sub.flag(DEGRADED, f"breaker {name} open")
            elif snap["state"] == "half_open":
                sub.flag(DEGRADED, f"breaker {name} half-open (probing)")
        sub.detail = {"breakers": len(breakers), "open": open_names}
        return sub

    def _check_metadb(self) -> Subsystem:
        sub = Subsystem("metadb")
        shard = self._pull("shard")
        repl = self._pull("repl")
        if shard is not None:
            down = []
            for entry in shard.get("shards", []):
                shard_id = entry.get("shard_id")
                if entry.get("breaker") == "open":
                    down.append(shard_id)
                    low, high = entry.get("low"), entry.get("high")
                    span = (f"[{'-inf' if low is None else low}, "
                            f"{'+inf' if high is None else high})")
                    sub.flag(RED, f"metadb shard {shard_id} down "
                                  f"(breaker open, range {span})")
                self._check_replicas(sub, (entry.get("replicas") or {}),
                                     where=f"shard {shard_id}")
            degraded_reads = shard.get("degraded_reads", 0)
            if degraded_reads and down:
                sub.flag(DEGRADED,
                         f"{degraded_reads} reads served as PartialResult")
            sub.detail = {"n_shards": shard.get("n_shards"),
                          "shards_down": down,
                          "degraded_reads": degraded_reads}
        if repl is not None and "replicas" in repl:
            self._check_replicas(sub, repl, where="group")
        return sub

    def _check_replicas(self, sub: Subsystem, repl: dict[str, Any],
                        where: str) -> None:
        for copy in repl.get("replicas", []):
            state = copy.get("state")
            name = copy.get("name")
            if state == "dead":
                sub.flag(DEGRADED, f"replica {name} ({where}) dead")
            elif state == "rejoining":
                sub.flag(DEGRADED, f"replica {name} ({where}) rejoining")
            elif copy.get("lag", 0) >= REPLICA_LAG_ATTENTION:
                sub.flag(DEGRADED,
                         f"replica {name} ({where}) lagging "
                         f"{copy['lag']} entries")

    def _check_serving(self, store=None, now: Optional[float] = None) -> Subsystem:
        sub = Subsystem("serving")
        serving = self._pull("serving")
        if serving is None:
            return sub
        queue = serving.get("queue")
        if queue:
            depth = sum(queue.get("depth", {}).values())
            capacity = queue.get("max_queue_depth", 0)
            sub.detail["queue_depth"] = depth
            sub.detail["max_queue_depth"] = capacity
            if capacity and depth >= capacity * QUEUE_PRESSURE_FRACTION:
                sub.flag(DEGRADED,
                         f"admission queue at {depth}/{capacity}")
            else:
                workers = serving.get("n_workers") or 1
                backlog_at = max(8, QUEUE_BACKLOG_PER_WORKER * workers)
                if depth >= backlog_at:
                    sub.flag(DEGRADED,
                             f"admission backlog: {depth} requests queued "
                             f"for {workers} workers")
            if store is not None:
                shed = store.family_delta("web.shed", 60.0, now=now)
                if shed and shed > 0:
                    sub.flag(DEGRADED,
                             f"shed {int(shed)} requests in the last 60s")
                    sub.detail["shed_60s"] = int(shed)
        for route, caps in (serving.get("routes") or {}).items():
            if caps.get("limit") and caps.get("in_use", 0) >= caps["limit"]:
                sub.flag(DEGRADED, f"route {route} bulkhead saturated "
                                   f"({caps['in_use']}/{caps['limit']})")
        return sub

    def _check_wal(self) -> Subsystem:
        sub = Subsystem("wal")
        torn = len(self.obs.events.find("wal.torn_tail"))
        recovered = len(self.obs.events.find("wal.recovered"))
        sub.detail = {"torn_tails": torn, "recoveries": recovered}
        if torn:
            sub.flag(DEGRADED, f"{torn} torn WAL tail(s) truncated on recovery")
        handles = self.obs.registry.value("process.open_wal_handles")
        if handles:
            sub.detail["open_handles"] = int(handles)
        return sub

    def _check_canary(self) -> Subsystem:
        sub = Subsystem("canary")
        registry = self.obs.registry
        probes = registry.family_total("obs.canary.probes")
        if not probes:
            sub.detail = {"probes": 0, "enabled": False}
            return sub
        failures = registry.family_total("obs.canary.failures")
        ok = registry.value("obs.canary.ok")
        sub.detail = {"probes": int(probes), "failures": int(failures),
                      "enabled": True}
        if not ok:
            sub.flag(RED, "canary probe failing — web→DM→metadb path down")
        return sub

    # -- rollup ----------------------------------------------------------------

    def report(self, store=None, now: Optional[float] = None) -> dict[str, Any]:
        """The full rollup: overall status, per-subsystem verdicts, and
        the flat ordered cause list (red causes first)."""
        subsystems = [
            self._check_canary(),
            self._check_metadb(),
            self._check_serving(store=store, now=now),
            self._check_resilience(),
            self._check_wal(),
        ]
        overall = GREEN
        for sub in subsystems:
            overall = _worst(overall, sub.status)
        return {
            "status": overall,
            "subsystems": {sub.name: sub.to_dict() for sub in subsystems},
            "causes": self.causes(subsystems),
        }

    def causes(self, subsystems: Optional[list[Subsystem]] = None) -> list[str]:
        """Attributed causes across all subsystems, worst first."""
        if subsystems is None:
            subsystems = [
                self._check_canary(),
                self._check_metadb(),
                self._check_serving(),
                self._check_resilience(),
                self._check_wal(),
            ]
        ranked: list[tuple[int, str]] = []
        for sub in subsystems:
            for cause in sub.causes:
                ranked.append((-_RANK[sub.status], f"{sub.name}: {cause}"))
        return [cause for _rank, cause in sorted(ranked, key=lambda r: r[0])]

    def attributed_cause(self, slo=None, window: str = "") -> str:
        """The most-suspect cause for a firing alert (worst-first); used
        as the :class:`~repro.obs.slo.SloManager` ``cause_resolver``."""
        causes = self.causes()
        if causes:
            return causes[0]
        return "no attributed cause (all subsystems green)"


class CanaryProbe:
    """A synthetic heartbeat request through web→DM→metadb.

    Registered as a collector sampler; fires at most once per
    ``interval_s`` of collector time.  Uses the server's non-blocking
    ``submit()`` with a bounded wait so a saturated worker pool can never
    wedge the collector thread — a probe that cannot get a worker within
    ``timeout_s`` *is* a failed probe.
    """

    def __init__(self, server, path: str = "/hedc/catalogs",
                 interval_s: float = 5.0, timeout_s: float = 2.0):
        self.server = server
        self.obs = server.obs
        self.path = path
        self.interval_s = interval_s
        self.timeout_s = timeout_s
        self.last_probe_at: Optional[float] = None
        self.last_error: str = ""

    def __call__(self, now: float) -> None:
        if (self.last_probe_at is not None
                and now - self.last_probe_at < self.interval_s):
            return
        self.last_probe_at = now
        self.probe()

    def probe(self) -> bool:
        from ..web.http import HttpRequest, HttpResponse

        obs = self.obs
        obs.count("obs.canary.probes")
        try:
            with obs.timed("obs.canary.latency_s") as timer:
                task = self.server.submit(HttpRequest.get(self.path))
                response = task.result(self.timeout_s)
                if response is None:
                    task.resolve(HttpResponse.error(
                        504, "canary timed out waiting for a worker"))
                    response = task.response
            ok = response.status < 500
            self.last_error = "" if ok else f"status {response.status}"
        except Exception as exc:
            ok = False
            self.last_error = f"{type(exc).__name__}: {exc}"
            timer = None
        if ok:
            obs.set_gauge("obs.canary.ok", 1)
        else:
            obs.set_gauge("obs.canary.ok", 0)
            obs.count("obs.canary.failures")
            obs.event("warn", "obs", "canary.failed",
                      f"canary {self.path} failed: {self.last_error}",
                      path=self.path, error=self.last_error)
        return ok
