"""Sampling profiler and trace-tree time analysis.

Two complementary views of *where time goes*:

* :class:`SamplingProfiler` — a wall-clock sampling profiler over
  ``sys._current_frames()``: a daemon thread wakes at a configurable
  rate, records every other thread's Python stack, and aggregates into
  the collapsed-stack format flamegraph tools consume
  (``frame;frame;frame count`` per line).  Default off; when off it owns
  no thread and costs nothing.
* :func:`span_self_times` / :func:`critical_path` — per-span *self* time
  (duration minus children) and the longest root-to-leaf chain computed
  from the trace trees :class:`~repro.obs.trace.Tracer` already keeps,
  which is the per-request analogue of a flamegraph.
"""

from __future__ import annotations

import sys
import threading
from collections import Counter
from pathlib import Path
from typing import Any, Optional

from .trace import Span


def _frame_label(frame) -> str:
    code = frame.f_code
    return f"{Path(code.co_filename).name}:{code.co_name}"


class SamplingProfiler:
    """Aggregating ``sys._current_frames()`` sampler (default off)."""

    def __init__(self, hz: float = 97.0, max_stacks: int = 10_000,
                 max_depth: int = 128):
        if hz <= 0:
            raise ValueError("sampling rate must be positive")
        self.hz = hz
        self.max_stacks = max_stacks
        self.max_depth = max_depth
        self.samples = 0
        self._stacks: Counter[tuple[str, ...]] = Counter()
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, hz: Optional[float] = None) -> "SamplingProfiler":
        """Begin sampling; a second start while running is a no-op."""
        if self.running:
            return self
        if hz is not None:
            if hz <= 0:
                raise ValueError("sampling rate must be positive")
            self.hz = hz
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._sample_loop, name="obs-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> int:
        """Stop sampling; returns the total samples collected."""
        thread = self._thread
        if thread is None:
            return self.samples
        self._stop.set()
        thread.join(timeout=2.0)
        self._thread = None
        return self.samples

    def reset(self) -> None:
        with self._lock:
            self._stacks.clear()
            self.samples = 0

    # -- sampling --------------------------------------------------------------

    def _sample_loop(self) -> None:
        interval = 1.0 / self.hz
        own_id = threading.get_ident()
        while not self._stop.wait(interval):
            self._take_sample(own_id)

    def _take_sample(self, own_id: int) -> None:
        frames = sys._current_frames()
        with self._lock:
            self.samples += 1
            for thread_id, frame in frames.items():
                if thread_id == own_id:
                    continue
                stack: list[str] = []
                depth = 0
                while frame is not None and depth < self.max_depth:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                stack.reverse()
                key = tuple(stack)
                if key in self._stacks or len(self._stacks) < self.max_stacks:
                    self._stacks[key] += 1

    # -- reading ---------------------------------------------------------------

    def stacks(self) -> dict[tuple[str, ...], int]:
        with self._lock:
            return dict(self._stacks)

    def collapsed(self, limit: Optional[int] = None) -> str:
        """Collapsed-stack flamegraph text: ``a;b;c <count>`` per line,
        heaviest stacks first."""
        with self._lock:
            items = self._stacks.most_common(limit)
        lines = [f"{';'.join(stack)} {count}" for stack, count in items]
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self, limit: int = 25) -> dict[str, Any]:
        with self._lock:
            n_stacks = len(self._stacks)
            top = self._stacks.most_common(limit)
        return {
            "running": self.running,
            "hz": self.hz,
            "samples": self.samples,
            "distinct_stacks": n_stacks,
            "top_stacks": [
                {"stack": list(stack), "count": count} for stack, count in top
            ],
        }


# -- trace-tree time analysis ----------------------------------------------------


def span_self_times(root: Span) -> list[dict[str, Any]]:
    """Per-span self time (duration minus direct children) over a tree,
    heaviest self time first — "which tier actually burned the time"."""
    rows: list[dict[str, Any]] = []
    for span in root.walk():
        duration = span.duration_s or 0.0
        children = sum(child.duration_s or 0.0 for child in span.children)
        rows.append({
            "name": span.name,
            "span_id": span.span_id,
            "trace_id": span.trace_id,
            "duration_s": duration,
            "self_s": max(0.0, duration - children),
        })
    rows.sort(key=lambda row: row["self_s"], reverse=True)
    return rows


def critical_path(root: Span) -> list[Span]:
    """The root-to-leaf chain following the longest child at each level —
    the spans that bound the request's wall-clock time."""
    path = [root]
    node = root
    while node.children:
        node = max(node.children, key=lambda child: child.duration_s or 0.0)
        path.append(node)
    return path


def trace_profile(root: Span) -> dict[str, Any]:
    """Self times plus the critical path for one trace tree, JSON-ready."""
    return {
        "trace_id": root.trace_id,
        "root": root.name,
        "duration_s": root.duration_s,
        "self_times": span_self_times(root),
        "critical_path": [
            {"name": span.name, "span_id": span.span_id,
             "duration_s": span.duration_s}
            for span in critical_path(root)
        ],
    }
