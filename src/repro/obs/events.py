"""A bounded, thread-safe structured event log.

Metrics answer "how much / how fast"; traces answer "where did this
request go"; the event log answers "*what happened* to the system" — the
discrete control-plane transitions an operator greps for first when a
deployment misbehaves: breaker trips, fault-injection firings, WAL
recoveries, IDL interpreter crashes and restarts, cache-epoch bumps.

Design constraints, in order:

* **bounded** — a fixed-capacity ring buffer (:class:`collections.deque`
  with ``maxlen``), so a flapping breaker can never exhaust memory;
* **cheap** — one lock plus an append per emission, and emissions only
  happen at rare state transitions, never on the per-request hot path;
* **correlated** — every event captures the current trace/span IDs when
  tracing is enabled, so a breaker trip links straight to the request
  tree that caused it;
* **exportable** — :meth:`EventLog.to_jsonl` renders JSON lines for
  offline grep/jq, and :meth:`EventLog.snapshot` feeds ``/hedc/debug``.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Optional

#: Ordered severities; filtering with ``min_severity`` uses this ranking.
SEVERITIES = ("debug", "info", "warn", "error")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}


class Event:
    """One structured occurrence: what, where, when, and correlation."""

    __slots__ = (
        "seq", "t_monotonic", "severity", "component", "kind", "message",
        "fields", "trace_id", "span_id",
    )

    def __init__(
        self,
        seq: int,
        severity: str,
        component: str,
        kind: str,
        message: str = "",
        fields: Optional[dict[str, Any]] = None,
        trace_id: Optional[int] = None,
        span_id: Optional[int] = None,
    ):
        self.seq = seq
        self.t_monotonic = time.monotonic()
        self.severity = severity
        self.component = component
        self.kind = kind
        self.message = message
        self.fields: dict[str, Any] = fields or {}
        self.trace_id = trace_id
        self.span_id = span_id

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t_monotonic": self.t_monotonic,
            "severity": self.severity,
            "component": self.component,
            "kind": self.kind,
            "message": self.message,
            "fields": dict(self.fields),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Event(#{self.seq} {self.severity} {self.component}."
                f"{self.kind}: {self.message!r})")


class EventLog:
    """Fixed-capacity ring buffer of :class:`Event` records."""

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ValueError("event log capacity must be >= 1")
        self.capacity = capacity
        self.enabled = True
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self.total_emitted = 0

    # -- writing ---------------------------------------------------------------

    def emit(
        self,
        severity: str,
        component: str,
        kind: str,
        message: str = "",
        trace_id: Optional[int] = None,
        span_id: Optional[int] = None,
        **fields: Any,
    ) -> Optional[Event]:
        """Append one event; returns it (or ``None`` when disabled)."""
        if not self.enabled:
            return None
        if severity not in _SEVERITY_RANK:
            raise ValueError(f"unknown severity {severity!r} (use one of {SEVERITIES})")
        event = Event(
            next(self._seq), severity, component, kind, message,
            fields=fields or None, trace_id=trace_id, span_id=span_id,
        )
        with self._lock:
            self._events.append(event)
            self.total_emitted += 1
        return event

    # -- reading ---------------------------------------------------------------

    def records(
        self,
        component: Optional[str] = None,
        kind: Optional[str] = None,
        min_severity: Optional[str] = None,
        limit: Optional[int] = None,
    ) -> list[Event]:
        """Retained events, oldest first, optionally filtered."""
        with self._lock:
            events = list(self._events)
        if component is not None:
            events = [e for e in events if e.component == component]
        if kind is not None:
            events = [e for e in events if e.kind == kind]
        if min_severity is not None:
            floor = _SEVERITY_RANK[min_severity]
            events = [e for e in events if _SEVERITY_RANK[e.severity] >= floor]
        if limit is not None:
            events = events[-limit:]
        return events

    def find(self, kind: str) -> list[Event]:
        return self.records(kind=kind)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def snapshot(self, limit: Optional[int] = None) -> list[dict[str, Any]]:
        """JSON-ready dicts of the retained events (oldest first)."""
        return [event.to_dict() for event in self.records(limit=limit)]

    def to_jsonl(self) -> str:
        """JSON-lines export — one event per line, grep/jq friendly."""
        lines = [json.dumps(record, default=repr) for record in self.snapshot()]
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
