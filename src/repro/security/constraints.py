"""Visibility and constraint enforcement (paper §5.3, §5.5).

Three constraint families guard every DM process:

* privacy — only public data may be read/processed by non-owners;
* access — queries may be allowed while edits are denied per user group;
* integrity — application rules like "tuples belonging to an entity may
  not be deleted if data dependencies exist" (enforced in the DM's
  semantic layer with these helpers).

"The system typically appends the user id to all queries so that only
public tuples or tuples owned by that user are returned" — that is
:func:`visibility_predicate`.
"""

from __future__ import annotations

from typing import Optional

from ..metadb import And, Comparison, Or, Predicate
from .auth import AuthError, User


class ConstraintViolation(Exception):
    """A privacy, access or integrity constraint was violated."""


#: Domain tables that carry ownership columns.
OWNED_TABLES = ("hle", "ana", "catalogs")


def visibility_predicate(user: Optional[User]) -> Predicate:
    """Predicate appended to queries over owned tables.

    Anonymous callers see only public tuples; owners additionally see
    their own; admins ("super-users", §6.1) see everything — represented
    by a tautology the planner can drop.
    """
    public = Comparison("public", "=", True)
    if user is None:
        return public
    if user.is_admin:
        return Or([public, Comparison("public", "=", False)])
    return Or([public, Comparison("owner_id", "=", user.user_id)])


def scoped_where(user: Optional[User], where: Optional[Predicate]) -> Predicate:
    """Combine a caller's WHERE with the visibility predicate."""
    visibility = visibility_predicate(user)
    if where is None:
        return visibility
    return And([where, visibility])


def check_can_read(user: Optional[User], row: dict) -> None:
    """Privacy constraint on a single fetched tuple."""
    if row.get("public"):
        return
    if user is not None and (user.is_admin or row.get("owner_id") == user.user_id):
        return
    raise ConstraintViolation("tuple is private")


def check_can_edit(user: Optional[User], row: dict) -> None:
    """Access constraint: "only the owner may change or delete private
    data" (§5.5)."""
    if user is None:
        raise ConstraintViolation("anonymous users cannot edit")
    if user.is_admin or row.get("owner_id") == user.user_id:
        return
    raise ConstraintViolation(f"user {user.login!r} does not own this tuple")


def check_right(user: Optional[User], right: str) -> None:
    """Require an account right ('browse' is granted to everyone)."""
    if right == "browse":
        return
    if user is None:
        raise AuthError(f"right {right!r} requires an account")
    if not user.has_right(right):
        raise AuthError(f"user {user.login!r} lacks right {right!r}")


def check_no_dependencies(dependent_count: int, what: str) -> None:
    """Integrity constraint: refuse deletion while dependencies exist."""
    if dependent_count > 0:
        raise ConstraintViolation(
            f"cannot delete {what}: {dependent_count} dependent tuple(s) exist"
        )
