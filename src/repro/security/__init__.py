"""Users, authentication and constraint enforcement (paper §5.3, §5.5)."""

from .auth import (
    GROUP_RIGHTS,
    IMPORT_LOGIN,
    RIGHTS,
    AuthError,
    User,
    UserManager,
    hash_password,
    verify_password,
)
from .constraints import (
    OWNED_TABLES,
    ConstraintViolation,
    check_can_edit,
    check_can_read,
    check_no_dependencies,
    check_right,
    scoped_where,
    visibility_predicate,
)

__all__ = [
    "AuthError",
    "ConstraintViolation",
    "GROUP_RIGHTS",
    "IMPORT_LOGIN",
    "OWNED_TABLES",
    "RIGHTS",
    "User",
    "UserManager",
    "check_can_edit",
    "check_can_read",
    "check_no_dependencies",
    "check_right",
    "hash_password",
    "scoped_where",
    "verify_password",
    "visibility_predicate",
]
