"""Accounts and authentication.

"HEDC requires an account to access its more advanced features.  Non
authorized users may only browse public data." (paper §5.5)  Passwords
are salted-PBKDF2 hashed; rights are a comma-separated set stored on the
user profile in ``admin_users``.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Optional

from ..metadb import Comparison, Database, Insert, Select, Update

RIGHTS = ("browse", "download", "analyze", "upload", "admin")

#: Group → default rights, per the user spectrum of paper §1 (casual
#: non-specialist through advanced mirror-everything users).
GROUP_RIGHTS = {
    "guest": ("browse",),
    "user": ("browse", "download"),
    "scientist": ("browse", "download", "analyze", "upload"),
    "admin": RIGHTS,
}

_PBKDF2_ITERATIONS = 20_000


class AuthError(Exception):
    """Authentication or authorization failure."""


def hash_password(password: str, salt: Optional[bytes] = None) -> str:
    """Salted PBKDF2-SHA256; returns ``salt_hex$digest_hex``."""
    if salt is None:
        salt = os.urandom(16)
    digest = hashlib.pbkdf2_hmac("sha256", password.encode("utf-8"), salt, _PBKDF2_ITERATIONS)
    return f"{salt.hex()}${digest.hex()}"


def verify_password(password: str, stored: str) -> bool:
    """Check a password against a stored ``salt$digest`` hash."""
    try:
        salt_hex, _digest = stored.split("$", 1)
    except ValueError:
        return False
    return hash_password(password, bytes.fromhex(salt_hex)) == stored


@dataclass(frozen=True)
class User:
    """An authenticated principal."""

    user_id: int
    login: str
    group: str
    rights: frozenset[str]

    def has_right(self, right: str) -> bool:
        return right in self.rights or "admin" in self.rights

    @property
    def is_admin(self) -> bool:
        return "admin" in self.rights


#: The "import user" that owns catalog tuples before they are made public
#: (paper §5.5).
IMPORT_LOGIN = "import"


class UserManager:
    """Account management over the ``admin_users`` table."""

    def __init__(self, database: Database):
        self._db = database

    def create_user(
        self,
        login: str,
        password: str,
        group: str = "user",
        rights: Optional[tuple[str, ...]] = None,
    ) -> User:
        if group not in GROUP_RIGHTS:
            raise AuthError(f"unknown group {group!r}")
        chosen = rights if rights is not None else GROUP_RIGHTS[group]
        for right in chosen:
            if right not in RIGHTS:
                raise AuthError(f"unknown right {right!r}")
        user_id = self._db.allocate_id("admin_users", "user_id")
        self._db.execute(
            Insert(
                "admin_users",
                {
                    "user_id": user_id,
                    "login": login,
                    "password_hash": hash_password(password),
                    "user_group": group,
                    "rights": ",".join(chosen),
                },
            )
        )
        return User(user_id, login, group, frozenset(chosen))

    def ensure_import_user(self) -> User:
        """The system account that loads catalogs (idempotent)."""
        existing = self.find(IMPORT_LOGIN)
        if existing is not None:
            return existing
        return self.create_user(IMPORT_LOGIN, os.urandom(12).hex(), group="admin")

    def find(self, login: str) -> Optional[User]:
        rows = self._db.execute(
            Select("admin_users", where=Comparison("login", "=", login))
        )
        if not rows:
            return None
        return self._to_user(rows[0])

    def get(self, user_id: int) -> Optional[User]:
        rows = self._db.execute(
            Select("admin_users", where=Comparison("user_id", "=", user_id))
        )
        return self._to_user(rows[0]) if rows else None

    def authenticate(self, login: str, password: str) -> User:
        """One DBMS query plus one update, as measured in §7.2."""
        rows = self._db.execute(
            Select("admin_users", where=Comparison("login", "=", login))
        )
        if not rows:
            raise AuthError(f"unknown login {login!r}")
        row = rows[0]
        if row["status"] != "active":
            raise AuthError(f"account {login!r} is {row['status']}")
        if not verify_password(password, row["password_hash"]):
            raise AuthError("bad password")
        self._db.execute(
            Update(
                "admin_users",
                {"last_login_at": time.time()},
                Comparison("user_id", "=", row["user_id"]),
            )
        )
        return self._to_user(row)

    def deactivate(self, user_id: int) -> None:
        self._db.execute(
            Update("admin_users", {"status": "disabled"}, Comparison("user_id", "=", user_id))
        )

    @staticmethod
    def _to_user(row: dict) -> User:
        return User(
            row["user_id"],
            row["login"],
            row["user_group"],
            frozenset(right for right in row["rights"].split(",") if right),
        )
