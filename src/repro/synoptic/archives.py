"""Simulated remote synoptic archives (paper §6.4).

The synoptic search crawls "several remote archives in parallel" — SOHO
and friends — with best-effort semantics.  Each simulated archive holds
observation records and answers time-range queries with a configurable
latency and failure probability, which is what the crawler must tolerate.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class SynopticRecord:
    """One remote observation record."""

    archive: str
    instrument: str
    observation_time: float
    duration_s: float
    wavelength: str
    url: str


class RemoteArchiveDown(Exception):
    """The simulated archive refused the query."""


class SynopticArchive:
    """One remote archive: records, latency, and unreliability."""

    def __init__(
        self,
        name: str,
        latency_s: float = 0.0,
        failure_rate: float = 0.0,
        seed: int = 0,
    ):
        self.name = name
        self.latency_s = latency_s
        self.failure_rate = failure_rate
        self._records: list[SynopticRecord] = []
        self._rng = random.Random(seed)
        self.queries_served = 0
        self.queries_failed = 0

    def add_record(self, instrument: str, observation_time: float,
                   duration_s: float = 60.0, wavelength: str = "visible") -> SynopticRecord:
        record = SynopticRecord(
            archive=self.name,
            instrument=instrument,
            observation_time=observation_time,
            duration_s=duration_s,
            wavelength=wavelength,
            url=f"https://{self.name}.example/obs/{len(self._records):06d}",
        )
        self._records.append(record)
        return record

    def populate(self, instrument: str, start: float, end: float, cadence_s: float,
                 wavelength: str = "visible") -> int:
        """Fill the archive with a regular observation cadence."""
        count = 0
        t = start
        while t < end:
            self.add_record(instrument, t, duration_s=cadence_s, wavelength=wavelength)
            t += cadence_s
            count += 1
        return count

    def query(self, start: float, end: float) -> list[SynopticRecord]:
        """Observations overlapping [start, end); may be slow or fail."""
        if self.latency_s > 0:
            time.sleep(self.latency_s)
        if self._rng.random() < self.failure_rate:
            self.queries_failed += 1
            raise RemoteArchiveDown(f"{self.name} timed out")
        self.queries_served += 1
        return [
            record
            for record in self._records
            if record.observation_time < end
            and record.observation_time + record.duration_s > start
        ]

    def __len__(self) -> int:
        return len(self._records)
