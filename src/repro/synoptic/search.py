"""The synoptic search crawler (paper §6.4).

"First, online requests are issued to several remote archives in
parallel.  Then the results are collected, grouped and displayed to the
user ... The service is best effort (if a query to a remote archive times
out, no results are available); query results are not cached, and there
is no data synchronization between HEDC and the remote archives."
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from .archives import RemoteArchiveDown, SynopticArchive, SynopticRecord


@dataclass
class SearchOutcome:
    """Grouped results plus per-archive status."""

    records_by_instrument: dict[str, list[SynopticRecord]] = field(default_factory=dict)
    archives_answered: list[str] = field(default_factory=list)
    archives_failed: list[str] = field(default_factory=list)

    @property
    def total_records(self) -> int:
        return sum(len(records) for records in self.records_by_instrument.values())


class SynopticSearch:
    """Parallel best-effort crawler over registered remote archives."""

    def __init__(self, timeout_s: float = 2.0):
        self._archives: list[SynopticArchive] = []
        self.timeout_s = timeout_s

    def register(self, archive: SynopticArchive) -> None:
        self._archives.append(archive)

    @property
    def n_archives(self) -> int:
        return len(self._archives)

    def search(self, start: float, end: float) -> SearchOutcome:
        """Query every archive in parallel; collect and group by instrument.

        Currently "the only search criterion is the observation time"
        (§6.4) — the context-dependent query callers build is a time
        window around what they are viewing.
        """
        outcome = SearchOutcome()
        results: dict[str, Optional[list[SynopticRecord]]] = {}
        lock = threading.Lock()

        def query_one(archive: SynopticArchive) -> None:
            try:
                records = archive.query(start, end)
            except RemoteArchiveDown:
                records = None
            with lock:
                results[archive.name] = records

        threads = [
            threading.Thread(target=query_one, args=(archive,), daemon=True)
            for archive in self._archives
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=self.timeout_s)
        for archive in self._archives:
            records = results.get(archive.name)
            if records is None:
                # Timed out or failed: best effort, no results from it.
                outcome.archives_failed.append(archive.name)
                continue
            outcome.archives_answered.append(archive.name)
            for record in records:
                outcome.records_by_instrument.setdefault(record.instrument, []).append(record)
        for records in outcome.records_by_instrument.values():
            records.sort(key=lambda record: record.observation_time)
        return outcome


def standard_archive_set(mission_start: float = 0.0, mission_end: float = 86_400.0,
                         seed: int = 0) -> SynopticSearch:
    """Six popular remote archives, as in the HEDC configuration (§6.4)."""
    search = SynopticSearch()
    specifications = [
        ("soho", "EIT", 600.0, "195A", 0.01),
        ("soho", "LASCO", 900.0, "white-light", 0.01),
        ("phoenix2", "spectrometer", 300.0, "radio", 0.02),
        ("gong", "magnetogram", 1200.0, "6768A", 0.02),
        ("bbso", "h-alpha", 450.0, "6563A", 0.05),
        ("kanzelhoehe", "full-disk", 700.0, "white-light", 0.05),
    ]
    for index, (site, instrument, cadence, wavelength, failure_rate) in enumerate(
        specifications
    ):
        archive = SynopticArchive(f"{site}-{instrument}".lower(),
                                  failure_rate=failure_rate, seed=seed + index)
        archive.populate(instrument, mission_start, mission_end, cadence,
                         wavelength=wavelength)
        search.register(archive)
    return search
