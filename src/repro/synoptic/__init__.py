"""Synoptic search over simulated remote archives (paper §6.4)."""

from .archives import RemoteArchiveDown, SynopticArchive, SynopticRecord
from .search import SearchOutcome, SynopticSearch, standard_archive_set

__all__ = [
    "RemoteArchiveDown",
    "SearchOutcome",
    "SynopticArchive",
    "SynopticRecord",
    "SynopticSearch",
    "standard_archive_set",
]
