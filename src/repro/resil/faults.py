"""Named, seeded, probabilistic fault injection points.

The paper's middle tier promises interactions that "are self-recovering
and tolerate failure and restart" (§5.1).  Proving that requires faults,
and faults sprinkled through test subclasses (``_CorruptingArchive`` and
friends) are neither reusable nor reproducible.  A :class:`FaultInjector`
makes chaos a library feature: production code calls :func:`fire` at a
named injection point, which is a near-free no-op until a scenario
configures that point with a probability, an error, a stall, or payload
corruption — all driven by one seeded RNG so a chaos run replays
identically.

Injection points wired through the tiers:

=========================  ====================================================
``metadb.statement``       :meth:`Database.execute` raises before execution
``metadb.pool.acquire``    :meth:`ConnectionPool.acquire` stalls (``delay_s``)
``metadb.wal.fsync``       :meth:`Journal._fsync` raises (failed fsync)
``metadb.replica.<name>``  a :class:`ReplicatedDatabase` copy is partitioned
``metadb.shard.<id>.statement``  every router-dispatched statement to one
                           shard of a :class:`ShardedDatabase` raises —
                           kills that time range's shard mid-scatter
``metadb.shard.<id>.wal.fsync``  one shard's journal fsync fails (fires
                           alongside the global ``metadb.wal.fsync``)
``repl.ship``              a :class:`~repro.repl.LogShipper` batch is lost
                           in flight before the follower applies it
``repl.ack``               the follower applied a shipped batch but the
                           ack is lost; the re-ship is deduplicated by LSN
``repl.replica.<name>.crash``  one replica-group copy crashes: fires on
                           every ship apply and read routed to that copy
``filestore.store``        :meth:`Archive.store` raises (write I/O error)
``filestore.read``         :meth:`Archive.retrieve` raises (read I/O error)
``filestore.corrupt``      :meth:`Archive.retrieve` flips a payload byte
``idl.crash``              :meth:`IdlServer.invoke` crashes the interpreter
``idl.hang``               :meth:`IdlServer.invoke` stalls past its timeout
``web.connection_drop``    :meth:`WebServer.handle` drops the connection
=========================  ====================================================
"""

from __future__ import annotations

import contextlib
import random
import threading
import time
from dataclasses import dataclass
from typing import Iterator, Optional, Union

from ..obs import Observability, resolve as resolve_obs


class InjectedFault(Exception):
    """A deliberately injected failure (transient by definition)."""


class ConnectionDropped(InjectedFault):
    """The simulated network dropped the client's connection."""


ErrorSpec = Union[BaseException, type, None]


@dataclass
class FaultPoint:
    """One configured injection point."""

    name: str
    rate: float = 1.0
    error: ErrorSpec = InjectedFault
    delay_s: float = 0.0
    corrupt: bool = False
    times: Optional[int] = None  # fire at most this many times, then disarm
    evaluated: int = 0
    fired: int = 0

    def build_error(self) -> Optional[BaseException]:
        if self.error is None:
            return None
        if isinstance(self.error, BaseException):
            return self.error
        return self.error(f"injected fault at {self.name!r}")


@dataclass
class _Decision:
    fired: bool
    delay_s: float = 0.0
    error: Optional[BaseException] = None
    corrupt: bool = False


class FaultInjector:
    """A registry of injection points sharing one seeded RNG.

    Unconfigured points never touch the RNG, so adding instrumentation to
    a new call site does not perturb existing seeded scenarios.
    """

    def __init__(self, seed: int = 0, obs: Optional[Observability] = None,
                 sleep=time.sleep):
        self.seed = seed
        self.obs = resolve_obs(obs)
        self._sleep = sleep
        self._rng = random.Random(seed)
        self._points: dict[str, FaultPoint] = {}
        self._lock = threading.Lock()

    # -- configuration -------------------------------------------------------

    def inject(
        self,
        name: str,
        rate: float = 1.0,
        error: ErrorSpec = InjectedFault,
        delay_s: float = 0.0,
        corrupt: bool = False,
        times: Optional[int] = None,
    ) -> FaultPoint:
        """Arm an injection point.  ``rate`` is the per-call probability;
        ``error`` an exception class/instance (or None for stall/corrupt
        only); ``times`` bounds the total number of firings."""
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        point = FaultPoint(name=name, rate=rate, error=error, delay_s=delay_s,
                           corrupt=corrupt, times=times)
        with self._lock:
            self._points[name] = point
        return point

    def clear(self, name: Optional[str] = None) -> None:
        with self._lock:
            if name is None:
                self._points.clear()
            else:
                self._points.pop(name, None)

    def reseed(self, seed: int) -> None:
        with self._lock:
            self.seed = seed
            self._rng = random.Random(seed)

    @property
    def active(self) -> bool:
        return bool(self._points)

    def point(self, name: str) -> Optional[FaultPoint]:
        return self._points.get(name)

    def stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                name: {"evaluated": p.evaluated, "fired": p.fired}
                for name, p in self._points.items()
            }

    def report(self) -> dict[str, dict]:
        """Full armed-point detail for the operator's instrument panel:
        configuration plus firing counts, per injection point."""
        with self._lock:
            points = list(self._points.values())
        report: dict[str, dict] = {}
        for point in points:
            error = point.error
            report[point.name] = {
                "rate": point.rate,
                "delay_s": point.delay_s,
                "corrupt": point.corrupt,
                "times": point.times,
                "evaluated": point.evaluated,
                "fired": point.fired,
                "error": (
                    None if error is None
                    else error.__name__ if isinstance(error, type)
                    else type(error).__name__
                ),
            }
        return report

    # -- firing --------------------------------------------------------------

    def _decide(self, name: str) -> _Decision:
        point = self._points.get(name)
        if point is None:
            return _Decision(False)
        with self._lock:
            point.evaluated += 1
            if point.times is not None and point.fired >= point.times:
                return _Decision(False)
            if point.rate < 1.0 and self._rng.random() >= point.rate:
                return _Decision(False)
            point.fired += 1
        self.obs.count("resil.faults.injected", point=name)
        self.obs.event("warn", "resil", "fault.fired",
                       f"injection point {name!r} fired",
                       point=name, delay_s=point.delay_s,
                       corrupt=point.corrupt)
        return _Decision(True, point.delay_s, point.build_error(), point.corrupt)

    def fire(self, name: str) -> None:
        """Evaluate an injection point: maybe stall, maybe raise."""
        if not self._points:
            return
        decision = self._decide(name)
        if not decision.fired:
            return
        if decision.delay_s > 0:
            self._sleep(decision.delay_s)
        if decision.error is not None:
            raise decision.error

    def corrupt_payload(self, name: str, payload: bytes) -> bytes:
        """Maybe flip one byte of ``payload`` (a flaky disk or link)."""
        if not self._points or not payload:
            return payload
        decision = self._decide(name)
        if not decision.fired:
            return payload
        with self._lock:
            index = self._rng.randrange(len(payload))
        return payload[:index] + bytes([payload[index] ^ 0xFF]) + payload[index + 1:]


#: The process-wide injector every wired call site resolves by default.
#: It starts with no points armed, so :func:`fire` costs one dict
#: truthiness check on production paths.
DEFAULT_INJECTOR = FaultInjector()
_default = DEFAULT_INJECTOR


def get_default_injector() -> FaultInjector:
    return _default


def set_default_injector(injector: FaultInjector) -> FaultInjector:
    global _default
    previous = _default
    _default = injector
    return previous


@contextlib.contextmanager
def use_injector(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Temporarily install ``injector`` as the process default."""
    previous = set_default_injector(injector)
    try:
        yield injector
    finally:
        set_default_injector(previous)


def resolve_faults(injector: Optional[FaultInjector]) -> FaultInjector:
    return injector if injector is not None else _default


def fire(name: str) -> None:
    """Fire a named point on the default injector (hot-path helper)."""
    injector = _default
    if injector._points:
        injector.fire(name)


def maybe_corrupt(name: str, payload: bytes) -> bytes:
    injector = _default
    if injector._points:
        return injector.corrupt_payload(name, payload)
    return payload
