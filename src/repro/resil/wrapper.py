"""``resilient()`` — compose the policies around any callable.

Composition order, outermost first:

1. **deadline** — fail fast when the ambient budget is already blown
   (nothing else should even be attempted);
2. **bulkhead** — admit or shed before consuming any downstream
   capacity;
3. **retry** — each attempt goes through
4. **breaker** — which records the outcome, so repeated failures trip
   the circuit and later attempts/callers are rejected promptly.

Every layer is optional; with no policies configured the wrapper is a
counter increment plus one contextvar read, which is what keeps the hot
``metadb`` execute path within its <5% overhead budget (see
``benchmarks/test_resil_overhead.py``).
"""

from __future__ import annotations

import functools
from typing import Callable, Optional, TypeVar

from ..obs import Observability, resolve as resolve_obs
from .breaker import CircuitBreaker
from .bulkhead import Bulkhead
from .deadline import Deadline
from .policies import RetryPolicy

F = TypeVar("F", bound=Callable)


def resilient(
    fn: Optional[Callable] = None,
    *,
    name: Optional[str] = None,
    retry: Optional[RetryPolicy] = None,
    breaker: Optional[CircuitBreaker] = None,
    bulkhead: Optional[Bulkhead] = None,
    deadline: bool = True,
    obs: Optional[Observability] = None,
):
    """Decorator/wrapper applying deadline → bulkhead → retry → breaker.

    Usable bare (``@resilient``), configured
    (``@resilient(retry=..., breaker=...)``), or as a plain wrapper
    (``safe = resilient(db.execute, retry=policy)``).
    """

    def decorate(func: Callable) -> Callable:
        label = name or getattr(func, "__qualname__", getattr(func, "__name__", "fn"))
        hub = resolve_obs(obs)
        calls = hub.counter("resil.calls", op=label)
        check_deadline = Deadline.check_current if deadline else None

        if breaker is not None:
            def attempt(*args, **kwargs):
                return breaker.call(func, *args, **kwargs)
        else:
            attempt = func

        if retry is not None:
            def guarded(*args, **kwargs):
                return retry.call(attempt, *args, **kwargs)
        else:
            guarded = attempt

        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            calls.inc()
            if check_deadline is not None:
                check_deadline(label)
            if bulkhead is None:
                return guarded(*args, **kwargs)
            with bulkhead:
                return guarded(*args, **kwargs)

        wrapper.policies = {  # type: ignore[attr-defined]
            "retry": retry,
            "breaker": breaker,
            "bulkhead": bulkhead,
            "deadline": deadline,
        }
        return wrapper

    if fn is not None:
        return decorate(fn)
    return decorate
