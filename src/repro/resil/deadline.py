"""Request time budgets that flow web → DM → metadb/PL.

A :class:`Deadline` is a contextvars-propagated budget: the web tier (or
any entry point) opens one for the whole interaction, and every layer
below can ask "is there time left?" without plumbing a parameter through
the stack.  A request that has already blown its budget fails fast with
:class:`DeadlineExceeded` instead of queueing deeper into the system, and
the PL uses the remaining fraction to fall back to cheaper approximation
levels (§6.3) before failing at all.

Because propagation rides on ``contextvars``, the existing
``contextvars.copy_context()`` hand-offs (async IDL invocations, frontend
worker threads) carry deadlines across threads for free.
"""

from __future__ import annotations

import contextvars
import time
from typing import Optional

_CURRENT: contextvars.ContextVar[Optional["Deadline"]] = contextvars.ContextVar(
    "repro.resil.deadline", default=None
)


class DeadlineExceeded(Exception):
    """The request's time budget is spent."""


class Deadline:
    """A monotonic time budget, installable as the ambient deadline."""

    __slots__ = ("budget_s", "_clock", "_expires_at", "_token")

    def __init__(self, budget_s: float, clock=time.monotonic):
        if budget_s <= 0:
            raise ValueError("deadline budget must be positive")
        self.budget_s = budget_s
        self._clock = clock
        self._expires_at = clock() + budget_s
        self._token: Optional[contextvars.Token] = None

    # -- queries -------------------------------------------------------------

    def remaining(self) -> float:
        return self._expires_at - self._clock()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0

    def fraction_remaining(self) -> float:
        return max(0.0, self.remaining() / self.budget_s)

    def check(self, what: str = "") -> None:
        """Raise :class:`DeadlineExceeded` when the budget is spent."""
        remaining = self.remaining()
        if remaining <= 0:
            suffix = f" in {what}" if what else ""
            raise DeadlineExceeded(
                f"budget of {self.budget_s:.3f}s overrun by "
                f"{-remaining:.3f}s{suffix}"
            )

    # -- context installation --------------------------------------------------

    def __enter__(self) -> "Deadline":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None

    # -- ambient access --------------------------------------------------------

    @staticmethod
    def current() -> Optional["Deadline"]:
        return _CURRENT.get()

    @staticmethod
    def check_current(what: str = "") -> None:
        """Fail fast if the ambient deadline (if any) is blown."""
        deadline = _CURRENT.get()
        if deadline is not None:
            deadline.check(what)

    @staticmethod
    def remaining_or(default: float) -> float:
        """The ambient deadline's remaining time, or ``default``."""
        deadline = _CURRENT.get()
        return default if deadline is None else deadline.remaining()
