"""Circuit breakers: stop hammering a failing dependency.

Classic three-state machine over a sliding outcome window:

* **closed** — calls flow; outcomes are recorded.  When at least
  ``min_calls`` of the last ``window`` outcomes exist and the failure
  rate reaches ``failure_rate``, the breaker trips **open**.
* **open** — calls are rejected immediately with :class:`BreakerOpen`
  (callers shed load / fail over instead of queueing on a dead
  dependency).  After ``cooldown_s`` the breaker moves to half-open.
* **half-open** — up to ``half_open_probes`` trial calls are admitted;
  one success closes the breaker, one failure re-opens it for another
  cooldown.

State is exported to ``repro.obs`` as a gauge (0 closed, 1 open, 2
half-open) plus a ``resil.breaker.trips`` counter.
"""

from __future__ import annotations

import enum
import threading
import time
import weakref
from collections import deque
from typing import Callable, Optional, TypeVar

from ..obs import Observability, resolve as resolve_obs

T = TypeVar("T")

#: Weak registry of live breakers, for the operator's instrument panel
#: (``/hedc/metrics?format=json`` and ``telemetry_report()``); filtered
#: by obs hub so side-by-side deployments report only their own.
_breakers: "weakref.WeakSet[CircuitBreaker]" = weakref.WeakSet()


def breaker_report(obs: Optional[Observability] = None) -> dict[str, dict]:
    """Per-breaker state snapshots (window reduced to counts), keyed by
    breaker name.  With ``obs`` given, only that hub's breakers report."""
    report: dict[str, dict] = {}
    for breaker in list(_breakers):
        if obs is not None and breaker.obs is not obs:
            continue
        snapshot = breaker.snapshot()
        window = snapshot.pop("window")
        snapshot["window"] = {
            "calls": len(window),
            "failures": sum(1 for ok in window if not ok),
            "capacity": breaker.window,
        }
        report[breaker.name] = snapshot
    return report


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


_STATE_GAUGE = {BreakerState.CLOSED: 0, BreakerState.OPEN: 1, BreakerState.HALF_OPEN: 2}


class BreakerOpen(Exception):
    """The call was rejected because the circuit is open."""

    def __init__(self, name: str, retry_after_s: float):
        super().__init__(
            f"circuit {name!r} is open; retry in {max(0.0, retry_after_s):.2f}s"
        )
        self.name = name
        self.retry_after_s = max(0.0, retry_after_s)


class CircuitBreaker:
    """Closed/open/half-open breaker over a sliding failure window."""

    def __init__(
        self,
        name: str = "breaker",
        window: int = 20,
        min_calls: int = 5,
        failure_rate: float = 0.5,
        cooldown_s: float = 5.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        obs: Optional[Observability] = None,
    ):
        if window < 1 or min_calls < 1:
            raise ValueError("window and min_calls must be >= 1")
        if not 0.0 < failure_rate <= 1.0:
            raise ValueError("failure_rate must be within (0, 1]")
        self.name = name
        self.window = window
        self.min_calls = min_calls
        self.failure_rate = failure_rate
        self.cooldown_s = cooldown_s
        self.half_open_probes = half_open_probes
        self.obs = resolve_obs(obs)
        self._clock = clock
        self._lock = threading.Lock()
        self._outcomes: deque[bool] = deque(maxlen=window)
        self._state = BreakerState.CLOSED
        self._opened_at: Optional[float] = None
        self._probes_in_flight = 0
        self.trips = 0
        self._state_gauge = self.obs.gauge("resil.breaker.state", breaker=name)
        self._trip_counter = self.obs.counter("resil.breaker.trips", breaker=name)
        self._reject_counter = self.obs.counter("resil.breaker.rejections",
                                                breaker=name)
        _breakers.add(self)

    # -- state machine (all transitions hold the lock) --------------------------

    def _set_state(self, state: BreakerState) -> None:
        previous = self._state
        self._state = state
        self._state_gauge.set(_STATE_GAUGE[state])
        if previous is not state:
            self.obs.event(
                "warn" if state is BreakerState.OPEN else "info",
                "resil", "breaker.transition",
                f"breaker {self.name!r}: {previous.value} -> {state.value}",
                breaker=self.name, from_state=previous.value,
                to_state=state.value,
            )

    def _trip(self) -> None:
        self._set_state(BreakerState.OPEN)
        self._opened_at = self._clock()
        self._probes_in_flight = 0
        self._outcomes.clear()
        self.trips += 1
        self._trip_counter.inc()

    def _close(self) -> None:
        self._set_state(BreakerState.CLOSED)
        self._opened_at = None
        self._probes_in_flight = 0
        self._outcomes.clear()

    def _maybe_half_open(self) -> None:
        if (
            self._state is BreakerState.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._set_state(BreakerState.HALF_OPEN)
            self._probes_in_flight = 0

    # -- public API -------------------------------------------------------------

    @property
    def state(self) -> BreakerState:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def retry_after_s(self) -> float:
        """Seconds until the breaker would admit a probe again."""
        with self._lock:
            if self._state is not BreakerState.OPEN or self._opened_at is None:
                return 0.0
            return max(0.0, self.cooldown_s - (self._clock() - self._opened_at))

    def allow(self) -> bool:
        """True when a call may proceed right now (counts half-open probes)."""
        # Lock-free fast path: CLOSED is the steady state, and the only
        # transition out of it happens inside record_failure, so a racy
        # read here at worst admits one extra call while the breaker
        # trips.  This keeps the hot metadb execute path within its <5%
        # overhead budget (benchmarks/test_resil_overhead.py).
        if self._state is BreakerState.CLOSED:
            return True
        with self._lock:
            self._maybe_half_open()
            if self._state is BreakerState.CLOSED:
                return True
            if self._state is BreakerState.OPEN:
                self._reject_counter.inc()
                return False
            if self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            self._reject_counter.inc()
            return False

    def check(self) -> None:
        """Raise :class:`BreakerOpen` unless a call may proceed."""
        if not self.allow():
            raise BreakerOpen(self.name, self.retry_after_s())

    def record_success(self) -> None:
        # Same lock-free CLOSED fast path as allow(); deque.append is
        # atomic under the GIL.
        if self._state is BreakerState.CLOSED:
            self._outcomes.append(True)
            return
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._close()
            elif self._state is BreakerState.CLOSED:
                self._outcomes.append(True)

    def record_failure(self) -> None:
        with self._lock:
            if self._state is BreakerState.HALF_OPEN:
                self._trip()
                return
            if self._state is not BreakerState.CLOSED:
                return
            self._outcomes.append(False)
            if len(self._outcomes) >= self.min_calls:
                failures = sum(1 for ok in self._outcomes if not ok)
                if failures / len(self._outcomes) >= self.failure_rate:
                    self._trip()

    def call(self, fn: Callable[..., T], *args, **kwargs) -> T:
        """Run ``fn`` through the breaker, recording the outcome."""
        self.check()
        try:
            result = fn(*args, **kwargs)
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result

    def reset(self) -> None:
        with self._lock:
            self._close()

    def snapshot(self) -> dict:
        with self._lock:
            self._maybe_half_open()
            return {
                "name": self.name,
                "state": self._state.value,
                "trips": self.trips,
                "window": list(self._outcomes),
                "retry_after_s": (
                    max(0.0, self.cooldown_s - (self._clock() - self._opened_at))
                    if self._state is BreakerState.OPEN and self._opened_at is not None
                    else 0.0
                ),
            }
