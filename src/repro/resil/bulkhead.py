"""Bulkheads: semaphore-based concurrency caps.

The paper's frontend already bounds the number of in-flight analysis
requests ("no more than 20 requests in the system at any given time",
§7.1); a :class:`Bulkhead` generalises that idea so any component can cap
the concurrency it admits and shed the excess immediately (or after a
bounded wait) instead of queueing without limit.
"""

from __future__ import annotations

import threading
from typing import Callable, Optional, TypeVar

from ..obs import Observability, resolve as resolve_obs

T = TypeVar("T")


class BulkheadFull(Exception):
    """The compartment is at capacity; the call was shed."""

    def __init__(self, name: str, limit: int):
        super().__init__(f"bulkhead {name!r} is full ({limit} concurrent calls)")
        self.name = name
        self.limit = limit
        self.retry_after_s = 1.0


class Bulkhead:
    """A named concurrency compartment."""

    def __init__(
        self,
        name: str = "bulkhead",
        max_concurrent: int = 8,
        max_wait_s: float = 0.0,
        obs: Optional[Observability] = None,
    ):
        if max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        self.name = name
        self.max_concurrent = max_concurrent
        self.max_wait_s = max_wait_s
        self.obs = resolve_obs(obs)
        self._semaphore = threading.BoundedSemaphore(max_concurrent)
        self._in_use = 0
        self._lock = threading.Lock()
        self._in_use_gauge = self.obs.gauge("resil.bulkhead.in_use", bulkhead=name)
        self._shed_counter = self.obs.counter("resil.bulkhead.shed", bulkhead=name)

    @property
    def in_use(self) -> int:
        with self._lock:
            return self._in_use

    def acquire(self) -> None:
        if self.max_wait_s > 0:
            acquired = self._semaphore.acquire(timeout=self.max_wait_s)
        else:
            acquired = self._semaphore.acquire(blocking=False)
        if not acquired:
            self._shed_counter.inc()
            raise BulkheadFull(self.name, self.max_concurrent)
        with self._lock:
            self._in_use += 1
            self._in_use_gauge.set(self._in_use)

    def release(self) -> None:
        with self._lock:
            self._in_use -= 1
            self._in_use_gauge.set(self._in_use)
        self._semaphore.release()

    def __enter__(self) -> "Bulkhead":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def call(self, fn: Callable[..., T], *args, **kwargs) -> T:
        with self:
            return fn(*args, **kwargs)
