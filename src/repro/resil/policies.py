"""Retry policies: exponential backoff, seeded jitter, error classes.

One declarative policy object replaces per-call-site retry loops.  The
backoff schedule is **deterministic**: jitter for attempt *n* is drawn
from ``random.Random((seed, n))``, so two policies built with the same
parameters produce identical schedules — chaos runs replay exactly and
tests can assert the schedule instead of mocking time.

Exception classification is explicit: ``fatal`` types always propagate,
``retryable`` types are retried while attempts remain, anything else
propagates immediately (an :class:`IntegrityError` is not going to
succeed on the third try).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from ..obs import Observability, resolve as resolve_obs
from .deadline import Deadline, DeadlineExceeded
from .faults import InjectedFault

T = TypeVar("T")

#: Errors that are transient by nature anywhere in this codebase: injected
#: chaos, timeouts, and OS-level I/O hiccups.  Callers extend this with
#: their layer's own transient types (``LockTimeout``, ``ChecksumError``).
TRANSIENT_ERRORS: Tuple[Type[BaseException], ...] = (
    InjectedFault,
    TimeoutError,
    ConnectionError,
    OSError,
)

class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter."""

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.01,
        multiplier: float = 2.0,
        max_delay_s: float = 1.0,
        jitter: float = 0.1,
        seed: int = 0,
        retryable: Tuple[Type[BaseException], ...] = TRANSIENT_ERRORS,
        fatal: Tuple[Type[BaseException], ...] = (DeadlineExceeded,),
        sleep: Callable[[float], None] = time.sleep,
        name: str = "retry",
        obs: Optional[Observability] = None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.seed = seed
        self.retryable = retryable
        self.fatal = fatal
        self.name = name
        self.obs = resolve_obs(obs)
        self._sleep = sleep
        self._retry_counter = self.obs.counter("resil.retries", policy=name)
        self._exhausted_counter = self.obs.counter("resil.retries_exhausted",
                                                   policy=name)

    def replace(self, **overrides) -> "RetryPolicy":
        """A copy of this policy with some parameters overridden."""
        kwargs = dict(
            max_attempts=self.max_attempts,
            base_delay_s=self.base_delay_s,
            multiplier=self.multiplier,
            max_delay_s=self.max_delay_s,
            jitter=self.jitter,
            seed=self.seed,
            retryable=self.retryable,
            fatal=self.fatal,
            sleep=self._sleep,
            name=self.name,
            obs=self.obs,
        )
        kwargs.update(overrides)
        return RetryPolicy(**kwargs)

    # -- classification --------------------------------------------------------

    def classify(self, exc: BaseException) -> bool:
        """True when ``exc`` is worth another attempt."""
        if isinstance(exc, self.fatal):
            return False
        return isinstance(exc, self.retryable)

    # -- schedule --------------------------------------------------------------

    def backoff_s(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based), jittered
        deterministically from ``(seed, attempt)``."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** (attempt - 1))
        if self.jitter and delay > 0:
            unit = random.Random(f"{self.seed}:{attempt}").uniform(-1.0, 1.0)
            delay *= 1.0 + self.jitter * unit
        return max(0.0, delay)

    def schedule(self) -> list[float]:
        """The full backoff schedule (one delay per possible retry)."""
        return [self.backoff_s(attempt) for attempt in range(1, self.max_attempts)]

    # -- execution ---------------------------------------------------------------

    def call(self, fn: Callable[..., T], *args, **kwargs) -> T:
        """Run ``fn`` under this policy; re-raises the final failure."""
        attempt = 1
        while True:
            try:
                return fn(*args, **kwargs)
            except Exception as exc:
                if not self.classify(exc):
                    raise
                if attempt >= self.max_attempts:
                    self._exhausted_counter.inc()
                    raise
                # Never sleep past the ambient deadline: fail fast instead.
                delay = self.backoff_s(attempt)
                deadline = Deadline.current()
                if deadline is not None and deadline.remaining() <= delay:
                    raise
                self._retry_counter.inc()
                if delay > 0:
                    self._sleep(delay)
                attempt += 1

    def wrap(self, fn: Callable[..., T]) -> Callable[..., T]:
        """A callable running ``fn`` under this policy."""
        def wrapper(*args, **kwargs):
            return self.call(fn, *args, **kwargs)

        wrapper.__name__ = getattr(fn, "__name__", "wrapped")
        return wrapper
